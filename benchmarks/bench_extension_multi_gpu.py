"""Extension: scale-up with multiple co-processors (Sec. 6.3).

"It is common to use multiple GPUs in a single machine, which can
handle larger databases and more parallel users. ... Our Data-Driven
strategy can support multiple co-processors by performing horizontal
partitioning.  However, the basic problems and their solutions stay
the same."

The placement manager partitions the hot columns across the devices
(replicating the small dimension structures) and data-driven chopping
routes each operator to the device holding its inputs.
"""

from benchmarks.common import regenerate
from repro.harness import experiments as E


def test_extension_multi_gpu(benchmark):
    result = regenerate(
        benchmark, E.multi_gpu_scaling,
        gpu_counts=(1, 2, 4), users=10, repetitions=2,
    )
    series = result.series("gpus", "seconds", "strategy")
    ddc = dict(series["data_driven_chopping"])
    # more devices hold more of the SF-30 working set: clear speedup
    assert ddc[4] < ddc[1] * 0.8
    # the basic problems stay: even 4 devices do not reach the
    # all-cached optimum (the working set still exceeds their caches)
    aborts = dict(result.series("gpus", "aborts", "strategy")[
        "data_driven_chopping"
    ])
    assert all(a >= 0 for a in aborts.values())
