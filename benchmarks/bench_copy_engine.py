"""Copy-engine benchmark: transfer/compute overlap pays for itself.

Exercises ``repro.hardware.copy_engine`` end to end and gates the
tentpole guarantees:

* **overlap speedup** — on a transfer-bound sweep (cold cache, two
  co-processors, parallel users: the Fig. 6/15 shape where the bus is
  the bottleneck) the asynchronous copy engine beats the serialized
  single-channel bus by at least ``MIN_SPEEDUP``;
* **result identity** — enabling the engine (duplex channels,
  coalescing, prefetch) changes scheduling, never answers: the query
  result tables are byte-identical to the baseline run and both are
  cross-checked against the reference evaluator (``validate=True``);
* **determinism under faults** — with the engine on and PCIe faults
  injected, the same seed twice yields the identical fault schedule
  digest, makespan, and results;
* **zero overhead when disabled** — with ``copy_engine=False`` the
  engine is never constructed, its counters stay zero, and varying the
  engine-only knobs (chunk size, coalescing, prefetch depth) cannot
  change a single simulated timing or result byte.

The exit code is nonzero iff any gate fails.  Writes ``BENCH_PR4.json``.

Run standalone:  PYTHONPATH=src python benchmarks/bench_copy_engine.py
Or under pytest: PYTHONPATH=src python -m pytest benchmarks/bench_copy_engine.py

``REPRO_FAST=1`` shrinks the sweep (CI smoke mode).
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.faults import FaultConfig  # noqa: E402
from repro.hardware import SystemConfig  # noqa: E402
from repro.hardware.calibration import GIB, MIB  # noqa: E402
from repro.harness import experiments as E  # noqa: E402
from repro.harness.runner import run_workload  # noqa: E402
from repro.workloads import ssb  # noqa: E402

FAST = os.environ.get("REPRO_FAST", "").strip() not in ("", "0")

OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_PR4.json"
)

SIZES = {
    "scale_factor": 5 if FAST else 10,
    "users": (4,) if FAST else (4, 8),
    "repetitions": 1 if FAST else 2,
    "gpu_count": 2,
}

SEED = 7

#: the overlap gate: engine makespan must beat the serialized bus by
#: at least this factor on the transfer-bound sweep
MIN_SPEEDUP = 1.3

BASE_CONFIG = SystemConfig(
    gpu_count=SIZES["gpu_count"],
    gpu_memory_bytes=int(4 * GIB),
    gpu_cache_bytes=int(1.5 * GIB),
)


def _run(config, users, faults=None, validate=False):
    """One cold-cache SSB run; returns (WorkloadResult, results digest)."""
    database = E.ssb_database(SIZES["scale_factor"])
    run = run_workload(
        database, ssb.workload(database), "runtime",
        config=config, users=users, repetitions=SIZES["repetitions"],
        warm_cache=False, collect_results=True, validate=validate,
        faults=faults,
    )
    return run, _digest_results(run.results)


def _digest_results(results) -> str:
    payload = repr(sorted(
        (name, tuple(table.row_tuples())) for name, table in results.items()
    ))
    return hashlib.sha256(payload.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Gate 1: overlap speedup on the transfer-bound sweep
# ---------------------------------------------------------------------------

def gate_overlap_speedup():
    rows = []
    worst = float("inf")
    for users in SIZES["users"]:
        base, _ = _run(BASE_CONFIG, users)
        eng, _ = _run(BASE_CONFIG.with_copy_engine(True), users)
        speedup = base.seconds / eng.seconds if eng.seconds else float("inf")
        worst = min(worst, speedup)
        m = eng.metrics
        rows.append({
            "users": users,
            "baseline_seconds": base.seconds,
            "engine_seconds": eng.seconds,
            "speedup": speedup,
            "overlap_ratio": m.overlap_ratio,
            "queue_seconds": m.transfer_queue_seconds,
            "coalesced_transfers": m.coalesced_transfers,
            "prefetch_transfers": m.prefetch_transfers,
            "prefetch_hits": m.prefetch_hits,
        })
    return {
        "rows": rows,
        "min_speedup_required": MIN_SPEEDUP,
        "worst_speedup": worst,
        "identical": worst >= MIN_SPEEDUP,
    }


# ---------------------------------------------------------------------------
# Gate 2: byte-identical results — baseline vs engine vs reference
# ---------------------------------------------------------------------------

def gate_result_identity():
    users = SIZES["users"][0]
    base, base_digest = _run(BASE_CONFIG, users, validate=True)
    eng, eng_digest = _run(BASE_CONFIG.with_copy_engine(True), users,
                           validate=True)
    identical = base_digest == eng_digest
    return {
        "users": users,
        "results_digest": base_digest,
        "validated_against_reference": True,
        "identical": identical,
    }, base_digest


# ---------------------------------------------------------------------------
# Gate 3: determinism — engine + injected PCIe faults, same seed twice
# ---------------------------------------------------------------------------

def gate_determinism(rate: float = 0.05):
    config = BASE_CONFIG.with_copy_engine(True)
    spec = FaultConfig.uniform(rate, seed=SEED)
    users = SIZES["users"][0]
    first, first_digest = _run(config, users, faults=spec, validate=True)
    second, second_digest = _run(config, users, faults=spec)
    identical = (first.fault_digest == second.fault_digest
                 and first.faults_injected == second.faults_injected
                 and first.seconds == second.seconds
                 and first_digest == second_digest)
    return {
        "rate": rate,
        "faults_injected": first.faults_injected,
        "schedule_digest": first.fault_digest,
        "schedules_identical": first.fault_digest == second.fault_digest,
        "timings_identical": first.seconds == second.seconds,
        "results_identical": first_digest == second_digest,
        "identical": identical,
    }


# ---------------------------------------------------------------------------
# Gate 4: disabled engine costs nothing and knobs are inert
# ---------------------------------------------------------------------------

def gate_zero_overhead(reference_digest: str):
    from repro.metrics import MetricsCollector
    from repro.hardware import HardwareSystem
    from repro.sim import Environment

    users = SIZES["users"][0]
    plain, plain_digest = _run(BASE_CONFIG, users)
    knobs, knobs_digest = _run(
        BASE_CONFIG.with_copy_engine(
            False, copy_chunk_bytes=int(MIB), copy_coalescing=False,
            prefetch_depth=0,
        ),
        users,
    )
    m = plain.metrics
    counters_zero = (m.coalesced_transfers == 0
                     and m.prefetch_transfers == 0
                     and m.prefetch_hits == 0
                     and m.overlapped_transfer_seconds == 0.0)
    engine_absent = (
        HardwareSystem(Environment(), BASE_CONFIG,
                       MetricsCollector()).copy_engine is None
    )
    identical = (plain.seconds == knobs.seconds
                 and plain_digest == knobs_digest
                 and plain_digest == reference_digest
                 and counters_zero and engine_absent)
    return {
        "plain_seconds": plain.seconds,
        "inert_knob_seconds": knobs.seconds,
        "timings_identical": plain.seconds == knobs.seconds,
        "results_identical": plain_digest == knobs_digest,
        "engine_absent_when_disabled": engine_absent,
        "engine_counters_zero": counters_zero,
        "identical": identical,
    }


# ---------------------------------------------------------------------------


def main() -> int:
    print("copy-engine benchmark: SF {}, {} GPUs, users {}{}".format(
        SIZES["scale_factor"], SIZES["gpu_count"], SIZES["users"],
        ", REPRO_FAST" if FAST else ""))
    report = {
        "benchmark": "copy_engine",
        "fast_mode": FAST,
        "seed": SEED,
        "gates": {},
    }

    overlap = gate_overlap_speedup()
    report["gates"]["overlap_speedup"] = overlap
    print("overlap speedup: identical={} (worst {:.3f}x, need {:.2f}x)"
          .format(overlap["identical"], overlap["worst_speedup"],
                  MIN_SPEEDUP))
    for row in overlap["rows"]:
        print("  users {:>2} -> {:.4f}s bus vs {:.4f}s engine "
              "({:.3f}x, overlap {:.2f}, coalesced {}, "
              "prefetch hits {})".format(
                  row["users"], row["baseline_seconds"],
                  row["engine_seconds"], row["speedup"],
                  row["overlap_ratio"], row["coalesced_transfers"],
                  row["prefetch_hits"]))

    identity, reference_digest = gate_result_identity()
    report["gates"]["result_identity"] = identity
    print("result identity: identical={identical} "
          "(digest {results_digest:.12s}..., validated)".format(**identity))

    determinism = gate_determinism()
    report["gates"]["determinism"] = determinism
    print("determinism:     identical={identical} "
          "({faults_injected} faults, digest {schedule_digest:.12s}...)"
          .format(**determinism))

    zero = gate_zero_overhead(reference_digest)
    report["gates"]["zero_overhead"] = zero
    print("zero overhead:   identical={identical} "
          "({plain_seconds:.4f}s plain vs {inert_knob_seconds:.4f}s "
          "inert knobs, engine_absent={engine_absent_when_disabled})"
          .format(**zero))

    report["all_gates_pass"] = all(
        gate["identical"] for gate in report["gates"].values()
    )
    with open(OUTPUT, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote {}".format(os.path.normpath(OUTPUT)))
    return 0 if report["all_gates_pass"] else 1


def test_copy_engine_gates():
    """Pytest entry point: every copy-engine gate holds; the report is
    written."""
    assert main() == 0


if __name__ == "__main__":
    sys.exit(main())
