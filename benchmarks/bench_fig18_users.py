"""Figure 18: full-workload execution time vs. #users (SF 10).

Paper claim: the dynamic fault reaction of Chopping improves
performance; Data-Driven Chopping beats a naive GPU execution by
~1.4-1.7x under parallel load.
"""

from benchmarks.common import regenerate
from repro.harness import experiments as E


def test_fig18a_ssb_users(benchmark):
    result = regenerate(
        benchmark, E.figure18, benchmark="ssb", users=(1, 5, 10, 20),
        repetitions=3,
    )
    series = result.series("users", "seconds", "strategy")
    gpu = dict(series["gpu_only"])
    ddc = dict(series["data_driven_chopping"])
    assert ddc[20] < gpu[20]


def test_fig18b_tpch_users(benchmark):
    result = regenerate(
        benchmark, E.figure18, benchmark="tpch", users=(1, 5, 10, 20),
        repetitions=3,
    )
    series = result.series("users", "seconds", "strategy")
    gpu = dict(series["gpu_only"])
    ddc = dict(series["data_driven_chopping"])
    assert ddc[20] <= gpu[20]
