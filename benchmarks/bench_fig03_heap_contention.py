"""Figure 3: parallel selection workload vs. #users (operator-driven).

Paper claim: performance degrades once more than ~7 users run in
parallel — their accumulated 3.25x-input footprints exceed the ~5 GB
device heap.
"""

from benchmarks.common import regenerate, shape_checks
from repro.harness import experiments as E


def test_fig03_heap_contention(benchmark):
    result = regenerate(
        benchmark, E.figure03,
        users=(1, 2, 4, 6, 7, 8, 10, 14, 20), total_queries=100,
    )
    gpu = dict(result.series("users", "seconds", "strategy")["gpu_only"])
    if shape_checks():
        assert gpu[20] > gpu[4] * 1.5
