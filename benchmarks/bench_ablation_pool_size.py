"""Ablation: the width of the chopping worker pool.

DESIGN.md calls out the thread-pool width as the knob trading GPU
utilisation against abort probability: too many workers re-introduce
heap contention, one worker under-uses the device.
"""

from repro.harness import experiments as E
from repro.harness.runner import run_workload
from repro.harness.tables import ExperimentResult
from repro.workloads import micro


def sweep_pool_sizes(gpu_workers_list=(1, 2, 4, 8, 16), users=20,
                     total_queries=100):
    database = E.ssb_database(10)
    queries = micro.parallel_selection_workload(database)
    result = ExperimentResult("Ablation: chopping GPU worker pool width")
    for gpu_workers in gpu_workers_list:
        run = run_workload(
            database, queries, "chopping", config=E.MICRO_CONFIG,
            users=users, repetitions=total_queries,
            gpu_workers=gpu_workers,
        )
        result.add(
            gpu_workers=gpu_workers,
            seconds=run.seconds,
            aborts=run.metrics.aborts,
            wasted_seconds=run.metrics.wasted_seconds,
        )
    return result


def test_ablation_pool_size(benchmark):
    result = benchmark.pedantic(sweep_pool_sizes, rounds=1, iterations=1)
    print()
    result.print()
    by_width = {row["gpu_workers"]: row for row in result.rows}
    # a small pool avoids aborts entirely
    assert by_width[2]["aborts"] == 0
    # a very wide pool re-introduces contention (aborts appear)
    assert by_width[16]["aborts"] > 0
