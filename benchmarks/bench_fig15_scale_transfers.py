"""Figure 15: CPU->GPU transfer time vs. scale factor.

Paper claim: GPU-only is dominated by transfers; Data-Driven (Chopping)
saves the most IO.
"""

from benchmarks.common import regenerate
from repro.harness import experiments as E


def test_fig15a_ssb_scale_transfers(benchmark):
    result = regenerate(
        benchmark, E.figure15, benchmark="ssb",
        scale_factors=(5, 15, 30), repetitions=2,
    )
    series = result.series("scale_factor", "h2d_seconds", "strategy")
    gpu = dict(series["gpu_only"])
    ddc = dict(series["data_driven_chopping"])
    assert gpu[30] > 10 * max(ddc[30], 1e-9)


def test_fig15b_tpch_scale_transfers(benchmark):
    result = regenerate(
        benchmark, E.figure15, benchmark="tpch",
        scale_factors=(5, 15, 30), repetitions=2,
    )
    series = result.series("scale_factor", "h2d_seconds", "strategy")
    gpu = dict(series["gpu_only"])
    ddc = dict(series["data_driven_chopping"])
    assert gpu[30] > ddc[30]
