"""Shared helpers for the per-figure benchmarks.

Every benchmark regenerates one table/figure of the paper: it runs the
corresponding harness driver once under pytest-benchmark (measuring the
harness wall time) and prints the resulting series — the rows a plot of
the figure would be drawn from.
"""

from __future__ import annotations


def regenerate(bench_fixture, driver, **kwargs):
    """Run a figure driver once under the benchmark fixture and print
    the resulting table.

    ``kwargs`` are forwarded to the driver (they may legitimately
    contain a ``benchmark=`` workload-name argument, hence the fixture
    comes first under a different name).
    """
    result = bench_fixture.pedantic(
        lambda: driver(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    result.print()
    return result
