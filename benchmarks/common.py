"""Shared helpers for the per-figure benchmarks.

Every benchmark regenerates one table/figure of the paper: it runs the
corresponding harness driver once under pytest-benchmark (measuring the
harness wall time) and prints the resulting series — the rows a plot of
the figure would be drawn from.

Setting ``REPRO_FAST=1`` shrinks the work twice over: the drivers clip
their own sweep grids (see :mod:`repro.harness.experiments`), and
:func:`regenerate` caps the repetition-style kwargs benchmarks pass in.
"""

from __future__ import annotations

#: kwarg -> cap applied under REPRO_FAST (repetition-style knobs only;
#: sweep axes are clipped by the drivers themselves).
_FAST_CAPS = {
    "repetitions": 1,
    "total_queries": 30,
    "users": 4,
}


def _shrink_kwargs(kwargs):
    from repro.harness.experiments import fast_mode

    if not fast_mode():
        return kwargs
    shrunk = dict(kwargs)
    for name, cap in _FAST_CAPS.items():
        value = shrunk.get(name)
        if isinstance(value, (int, float)) and value > cap:
            shrunk[name] = cap
    return shrunk


def shape_checks() -> bool:
    """Whether paper-shape assertions apply: they are claims about the
    full measurement grids, so ``REPRO_FAST`` smoke runs (clipped
    grids, single repetition) skip them."""
    from repro.harness.experiments import fast_mode

    return not fast_mode()


def regenerate(bench_fixture, driver, **kwargs):
    """Run a figure driver once under the benchmark fixture and print
    the resulting table.

    ``kwargs`` are forwarded to the driver (they may legitimately
    contain a ``benchmark=`` workload-name argument, hence the fixture
    comes first under a different name).
    """
    kwargs = _shrink_kwargs(kwargs)
    result = bench_fixture.pedantic(
        lambda: driver(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    result.print()
    return result
