"""Fused morsel execution: speedup, scaling, identity, zero overhead.

Exercises ``repro.engine.morsel`` and the shared-memory
:class:`~repro.harness.parallel.MorselPool` end to end and gates the
tentpole guarantees:

* **fused speedup** — the SSB batch on the fused morsel path beats the
  operator-at-a-time engine (kernels on, plan cache off so every run
  re-executes) by at least ``FUSED_TARGET``;
* **parallel speedup** — a pre-started pool of fused workers over
  shared-memory columns beats the sequential baseline by at least
  ``PARALLEL_TARGET`` at ``jobs=2`` (pool start-up, the shm export,
  and per-worker plan builds happen outside the timed region and are
  reported as ``setup_seconds``);
* **byte identity** — every SSB and TPC-H query returns exactly the
  same rows with morsels on and off, across morsel sizes from 1000
  rows to one morsel spanning the whole fact table;
* **zero overhead when disabled** — with ``morsels=False`` the fused
  path is never consulted: its counters stay zero, and varying the
  inert ``morsel_rows`` knob cannot change a simulated timing or a
  result byte.

The exit code is nonzero iff any gate fails.  Writes ``BENCH_PR6.json``.

Run standalone:  PYTHONPATH=src python benchmarks/bench_morsels.py
Or under pytest: PYTHONPATH=src python -m pytest benchmarks/bench_morsels.py

``REPRO_FAST=1`` shrinks sizes and relaxes the speedup targets (CI
smoke machines are small and noisy; the committed full-mode report is
what the trajectory gate enforces).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.engine import kernels, morsel, plan_cache  # noqa: E402
from repro.engine.execution.functional import execute_functional  # noqa: E402
from repro.workloads import ssb, tpch  # noqa: E402

FAST = os.environ.get("REPRO_FAST", "").strip() not in ("", "0")

OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_PR6.json"
)

SIZES = {
    "reps": 2 if FAST else 5,
    "data_scale": 0.02 if FAST else 0.1,
    "identity_scale": 0.01 if FAST else 0.02,
    "jobs": 2,
}

#: fused sequential SSB batch vs the operator-at-a-time engine
FUSED_TARGET = 1.3 if FAST else 3.0
#: morsel pool at jobs=2 vs the sequential baseline.  Smoke machines
#: (1 vCPU, shared) only gate against catastrophic regression; the
#: full-mode target is the real bar.
PARALLEL_TARGET = 0.2 if FAST else 1.5

#: identity sweep: tiny morsels (many partials), the default, and one
#: morsel covering the entire fact table (degenerate single range)
MORSEL_SIZES = (1000, morsel.DEFAULT_MORSEL_ROWS, 1_000_000_000)


def _best(fn, reps):
    best = None
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None or elapsed < best else best
    return best, result


def _digest(rows) -> str:
    return hashlib.sha256(repr(rows).encode()).hexdigest()


def _batch(database, queries):
    return {
        query.name: execute_functional(
            query.instantiate(), database).payload.row_tuples()
        for query in queries
    }


# ---------------------------------------------------------------------------
# Gates 1 + 2: fused sequential speedup and pool scaling
# ---------------------------------------------------------------------------

def bench_speedups():
    from repro.harness.parallel import MorselPool
    from repro.storage import shm

    database = ssb.generate(scale_factor=1.0,
                            data_scale=SIZES["data_scale"], seed=42)
    queries = ssb.workload(database)

    _batch(database, queries)  # warm the kernel caches
    base_seconds, base_rows = _best(
        lambda: _batch(database, queries), SIZES["reps"])
    digests = {name: _digest(rows) for name, rows in base_rows.items()}

    morsel.reset_stats()
    with morsel.active():
        _batch(database, queries)  # warm the fused-path caches
        fused_seconds, fused_rows = _best(
            lambda: _batch(database, queries), SIZES["reps"])
    stats = morsel.snapshot_stats()
    fused_digests = {name: _digest(rows)
                     for name, rows in fused_rows.items()}

    fused_gate = {
        "queries": len(queries),
        "fact_rows": database.table("lineorder").actual_rows,
        "baseline_seconds": round(base_seconds, 6),
        "fused_seconds": round(fused_seconds, 6),
        "speedup": round(base_seconds / fused_seconds, 4),
        "target": FUSED_TARGET,
        "declined_queries": stats["declined_queries"],
        "identical": (fused_digests == digests
                      and base_seconds / fused_seconds >= FUSED_TARGET),
    }

    if ("fork" not in multiprocessing.get_all_start_methods()
            or not shm.available()):
        parallel_gate = {
            "jobs": 1,
            "speedup": 1.0,
            "target": PARALLEL_TARGET,
            "identical": True,
            "note": "fork/shm unavailable; parallel gate skipped",
        }
        return fused_gate, parallel_gate, stats

    setup_start = time.perf_counter()
    pool = MorselPool(database, queries, workload="ssb",
                      jobs=SIZES["jobs"])
    try:
        pool.warm()
        pool.run_queries()  # build per-worker pipelines outside timing
        setup_seconds = time.perf_counter() - setup_start
        pool_seconds, pool_results = _best(
            pool.run_queries, SIZES["reps"])
        fallbacks = pool.fallbacks
    finally:
        pool.close()
        shm.invalidate(database)
    pool_digests = {
        name: _digest(result.payload.row_tuples())
        for name, result in pool_results.items()
    }
    parallel_gate = {
        "jobs": SIZES["jobs"],
        "sequential_seconds": round(base_seconds, 6),
        "parallel_seconds": round(pool_seconds, 6),
        "setup_seconds": round(setup_seconds, 6),
        "speedup": round(base_seconds / pool_seconds, 4),
        "target": PARALLEL_TARGET,
        "fallbacks": fallbacks,
        "identical": (pool_digests == digests and fallbacks == 0
                      and base_seconds / pool_seconds >= PARALLEL_TARGET),
    }
    return fused_gate, parallel_gate, stats


# ---------------------------------------------------------------------------
# Gate 3: byte identity across morsel sizes, SSB and TPC-H
# ---------------------------------------------------------------------------

def gate_identity():
    checked = 0
    diverged = []
    for module, seed in ((ssb, 123), (tpch, 321)):
        database = module.generate(scale_factor=1.0,
                                   data_scale=SIZES["identity_scale"],
                                   seed=seed)
        queries = module.workload(database)
        reference = _batch(database, queries)
        for rows_per_morsel in MORSEL_SIZES:
            with morsel.active(rows_per_morsel):
                fused = _batch(database, queries)
            for name in reference:
                checked += 1
                if fused[name] != reference[name]:
                    diverged.append("{}:{}@{}".format(
                        module.__name__, name, rows_per_morsel))
    return {
        "comparisons": checked,
        "morsel_sizes": list(MORSEL_SIZES),
        "diverged": diverged,
        "identical": not diverged,
    }


# ---------------------------------------------------------------------------
# Gate 4: disabled path costs nothing and its knob is inert
# ---------------------------------------------------------------------------

def gate_zero_overhead():
    from repro.harness import experiments as E
    from repro.harness.runner import run_workload
    from repro.hardware import SystemConfig

    # Engine level: with morsels off, the fused path is never consulted.
    database = ssb.generate(scale_factor=1.0,
                            data_scale=SIZES["identity_scale"], seed=99)
    queries = ssb.workload(database)
    morsel.reset_stats()
    _batch(database, queries)
    counters = morsel.snapshot_stats()
    counters_zero = not any(counters.values())

    # Simulation level: morsel_rows is inert while morsels=False.
    sim_db = E.ssb_database(1)
    runs = []
    for config in (SystemConfig(),
                   SystemConfig().with_morsels(False, morsel_rows=4096)):
        plan_cache.invalidate(sim_db)
        run = run_workload(sim_db, ssb.workload(sim_db), "runtime",
                           config=config, collect_results=True)
        runs.append((run.seconds, _digest(sorted(
            (name, tuple(table.row_tuples()))
            for name, table in run.results.items()
        ))))
    (plain_seconds, plain_digest), (knob_seconds, knob_digest) = runs
    return {
        "engine_counters_zero": counters_zero,
        "disabled_by_default": not morsel.enabled(),
        "plain_seconds": plain_seconds,
        "inert_knob_seconds": knob_seconds,
        "timings_identical": plain_seconds == knob_seconds,
        "results_identical": plain_digest == knob_digest,
        "identical": (counters_zero and not morsel.enabled()
                      and plain_seconds == knob_seconds
                      and plain_digest == knob_digest),
    }


# ---------------------------------------------------------------------------


def main() -> int:
    print("morsel benchmark: jobs={}, cpus={}{}".format(
        SIZES["jobs"], os.cpu_count(), ", REPRO_FAST" if FAST else ""))
    plan_cache.enable(False)  # every run must re-execute
    kernels.enable(True)
    try:
        report = {
            "benchmark": "fused_morsels",
            "cpu_count": os.cpu_count(),
            "fast_mode": FAST,
            "morsel_rows": morsel.morsel_rows(),
            "gates": {},
        }

        fused, parallel, stats = bench_speedups()
        report["gates"]["fused_speedup"] = fused
        print("fused ssb batch: {speedup:.2f}x vs operator-at-a-time "
              "(target {target}x, declines {declined_queries})"
              .format(**fused))
        report["gates"]["parallel_speedup"] = parallel
        print("morsel pool:     {speedup:.2f}x at jobs={jobs} "
              "(target {target}x)".format(**parallel))

        report["gates"]["byte_identity"] = gate_identity()
        print("byte identity:   {comparisons} comparisons across "
              "morsel sizes {morsel_sizes}, identical={identical}"
              .format(**report["gates"]["byte_identity"]))

        report["gates"]["zero_overhead"] = gate_zero_overhead()
        print("zero overhead:   identical={identical} "
              "(counters_zero={engine_counters_zero}, "
              "{plain_seconds:.4f}s plain vs {inert_knob_seconds:.4f}s "
              "inert knob)".format(**report["gates"]["zero_overhead"]))

        report["morsel_stats"] = stats
    finally:
        plan_cache.enable(True)
        kernels.enable(True)
        morsel.enable(False)
        morsel.set_morsel_rows(None)
        kernels.invalidate()

    report["all_gates_pass"] = all(
        gate["identical"] for gate in report["gates"].values()
    )
    with open(OUTPUT, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote {}".format(os.path.normpath(OUTPUT)))
    return 0 if report["all_gates_pass"] else 1


def test_morsel_gates():
    """Pytest entry point: every fused-morsel gate holds; the report is
    written."""
    assert main() == 0


if __name__ == "__main__":
    sys.exit(main())
