"""Kernel acceleration: cached join indexes, zone maps, lazy selection.

Benchmarks the ``repro.engine.kernels`` layer against the seed engine
paths:

* per-kernel micro timings — a repeated join (cold kernel cache vs
  warm), a zone-map-pruned scan on a sorted column, and the B.2
  selection-operator chain with mask combination;
* end-to-end SSB and TPC-H query batches with the kernels off vs on
  (plan cache disabled so every run re-executes), sequential and over
  a shared-memory :class:`~repro.harness.parallel.MorselPool` of
  ``REPRO_JOBS`` fused workers;
* a divergence gate — every SSB/TPC-H query on a small database is
  checked against the naive reference evaluator with the kernels
  engaged (small zone-map blocks so pruning actually runs).

Every timed comparison asserts byte-identical result tables; the exit
code is nonzero iff any identity or reference check fails (speedups
are recorded, not gated — CI machines are noisy).  Writes
``BENCH_PR2.json``.

Run standalone:  PYTHONPATH=src python benchmarks/bench_kernels.py
Or under pytest: PYTHONPATH=src python -m pytest benchmarks/bench_kernels.py

``REPRO_FAST=1`` shrinks sizes (CI smoke mode); ``REPRO_JOBS``
overrides the worker count (default: min(4, cpu count)).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import sys
import time

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.engine import (  # noqa: E402
    Planner,
    execute_reference,
    kernels,
    plan_cache,
)
from repro.engine.execution.functional import execute_functional  # noqa: E402
from repro.engine.expressions import (  # noqa: E402
    And,
    ColumnRef,
    Comparison,
    Literal,
)
from repro.engine.operators import (  # noqa: E402
    HashJoin,
    Materialize,
    PhysicalPlan,
    ScanSelect,
)
from repro.sql import bind  # noqa: E402
from repro.storage import ColumnType, Database  # noqa: E402
from repro.workloads import micro, ssb, tpch  # noqa: E402

FAST = os.environ.get("REPRO_FAST", "").strip() not in ("", "0")

#: Actual-array sizing: small enough for CI smoke runs, large enough in
#: full mode that the kernel wins dominate fixed per-query overhead.
SIZES = {
    "reps": 2 if FAST else 5,
    "ssb_data_scale": 0.02 if FAST else 0.1,
    "tpch_data_scale": 0.02 if FAST else 0.1,
    "join_build_rows": 120_000 if FAST else 1_200_000,
    "join_probe_rows": 20_000 if FAST else 150_000,
    "zone_rows": 300_000 if FAST else 2_000_000,
}

OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_PR2.json"
)

JOIN_TARGET = 1.5       # repeated-join micro, cached vs cold
SSB_TARGET = 1.2        # end-to-end SSB batch, kernels on vs off
PARALLEL_TARGET = 1.0   # morsel-pool SSB vs sequential: never slower


def _default_jobs() -> int:
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if raw:
        return max(int(raw), 1)
    return max(min(4, os.cpu_count() or 1), 2)


def _best(fn, reps):
    """Best-of-``reps`` wall time; returns (seconds, last result)."""
    best = None
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None or elapsed < best else best
    return best, result


def _digest(rows) -> str:
    return hashlib.sha256(repr(rows).encode()).hexdigest()


# ---------------------------------------------------------------------------
# Micro: repeated join, cold kernel cache vs warm
# ---------------------------------------------------------------------------

def _join_db() -> Database:
    db = Database("joinbench")
    rng = np.random.default_rng(7)
    n_build = SIZES["join_build_rows"]
    n_probe = SIZES["join_probe_rows"]
    # Non-dense keys (odd, shuffled) so the sorted-index path — the one
    # whose argsort the cache amortises — is exercised, not the
    # dense-arange shortcut.
    keys = np.random.default_rng(11).permutation(
        np.arange(n_build, dtype=np.int32) * 2 + 1
    )
    build = db.create_table("parts", nominal_rows=n_build)
    build.add_column("pkey", ColumnType.INT32, keys)
    build.add_column("pval", ColumnType.INT32,
                     rng.integers(0, 1000, n_build).astype(np.int32))
    probe = db.create_table("orders", nominal_rows=n_probe)
    probe.add_column("fkey", ColumnType.INT32, rng.choice(keys, n_probe))
    probe.add_column("value", ColumnType.INT32,
                     rng.integers(0, 1000, n_probe).astype(np.int32))
    return db


def _join_plan() -> PhysicalPlan:
    probe = ScanSelect("orders")
    build = ScanSelect("parts")
    join = HashJoin(probe, build, ColumnRef("orders", "fkey"),
                    ColumnRef("parts", "pkey"))
    root = Materialize(join, [
        ("value", ColumnRef("orders", "value")),
        ("pval", ColumnRef("parts", "pval")),
    ])
    return PhysicalPlan(root, name="join_micro")


def bench_join_repeated():
    db = _join_db()

    def run():
        # Fresh plan per run: plan templates memoise their own result.
        return execute_functional(_join_plan(), db).payload.row_tuples()

    def run_cold():
        kernels.invalidate(db)
        return run()

    cold_seconds, cold_rows = _best(run_cold, SIZES["reps"])
    run()  # prime the join index
    warm_seconds, warm_rows = _best(run, SIZES["reps"])
    return {
        "build_rows": SIZES["join_build_rows"],
        "probe_rows": SIZES["join_probe_rows"],
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "speedup": round(cold_seconds / warm_seconds, 4),
        "target": JOIN_TARGET,
        "identical": cold_rows == warm_rows,
    }


# ---------------------------------------------------------------------------
# Micro: zone-map-pruned scan on a sorted column
# ---------------------------------------------------------------------------

def _zone_db() -> Database:
    db = Database("zonebench")
    n = SIZES["zone_rows"]
    events = db.create_table("events", nominal_rows=n)
    events.add_column("ts", ColumnType.INT32,
                      (np.arange(n, dtype=np.int64) // 3).astype(np.int32))
    events.add_column("v", ColumnType.INT32,
                      np.random.default_rng(3).integers(
                          0, 100, n).astype(np.int32))
    return db


def _zone_plan(lo: int, hi: int) -> PhysicalPlan:
    ts = ColumnRef("events", "ts")
    scan = ScanSelect("events", And([
        Comparison(">=", ts, Literal(lo)),
        Comparison("<=", ts, Literal(hi)),
    ]))
    root = Materialize(scan, [("v", ColumnRef("events", "v"))])
    return PhysicalPlan(root, name="zone_micro")


def bench_zone_map_scan():
    db = _zone_db()
    mid = SIZES["zone_rows"] // 6
    lo, hi = mid, mid + 1000

    def run():
        return execute_functional(_zone_plan(lo, hi), db).payload.row_tuples()

    kernels.enable(False)
    full_seconds, full_rows = _best(run, SIZES["reps"])
    kernels.enable(True)
    kernels.invalidate(db)
    kernels.reset_stats()
    run()  # prime the zone map
    skipped = kernels.stats["blocks_skipped"]
    pruned_seconds, pruned_rows = _best(run, SIZES["reps"])
    return {
        "rows": SIZES["zone_rows"],
        "full_seconds": round(full_seconds, 6),
        "pruned_seconds": round(pruned_seconds, 6),
        "speedup": round(full_seconds / pruned_seconds, 4),
        "blocks_skipped_per_scan": skipped,
        "identical": full_rows == pruned_rows,
    }


# ---------------------------------------------------------------------------
# Micro: the B.2 selection-operator chain (mask AND vs tid gather)
# ---------------------------------------------------------------------------

def bench_selection_chain(db: Database):
    def run():
        plan = micro.build_parallel_selection_plan(db)
        return execute_functional(plan, db).payload.row_tuples()

    kernels.enable(False)
    seed_seconds, seed_rows = _best(run, SIZES["reps"])
    kernels.enable(True)
    masked_seconds, masked_rows = _best(run, SIZES["reps"])
    return {
        "rows": db.table("lineorder").actual_rows,
        "seed_seconds": round(seed_seconds, 6),
        "masked_seconds": round(masked_seconds, 6),
        "speedup": round(seed_seconds / masked_seconds, 4),
        "identical": seed_rows == masked_rows,
    }


# ---------------------------------------------------------------------------
# End to end: SSB / TPC-H batches, kernels off vs on
# ---------------------------------------------------------------------------

def _bind_all(db: Database, queries):
    return {name: bind(sql, db, name=name) for name, sql in queries.items()}


def _run_batch(db: Database, specs):
    out = {}
    for name, spec in specs.items():
        plan = Planner(db).plan(spec)
        out[name] = execute_functional(plan, db).payload.row_tuples()
    return out


def bench_end_to_end(label: str, db: Database, specs):
    def run():
        return _run_batch(db, specs)

    kernels.enable(False)
    off_seconds, off_rows = _best(run, SIZES["reps"])
    kernels.enable(True)
    kernels.invalidate(db)
    run()  # warm the kernel caches
    on_seconds, on_rows = _best(run, SIZES["reps"])
    entry = {
        "queries": len(specs),
        "fact_rows": max(t.actual_rows for t in db.tables),
        "off_seconds": round(off_seconds, 6),
        "on_seconds": round(on_seconds, 6),
        "speedup": round(off_seconds / on_seconds, 4),
        "identical": off_rows == on_rows,
    }
    if label == "ssb":
        entry["target"] = SSB_TARGET
    return entry


# ---------------------------------------------------------------------------
# End to end: the SSB batch over the shared-memory morsel pool
# ---------------------------------------------------------------------------

def bench_parallel(db: Database, jobs: int):
    """Intra-query parallel SSB over :class:`MorselPool` workers.

    The historical version of this benchmark forked a worker per query
    over a copy-on-write database and *lost* to sequential execution
    (speedup ~0.35x).  The pool version exports the columns once via
    shared memory, keeps persistent fused workers, and ships one merged
    partial per worker chunk — pool start-up and the shm export happen
    outside the timed region and are reported as ``setup_seconds``.
    """
    from repro.harness.parallel import MorselPool
    from repro.storage import shm

    kernels.enable(True)
    queries = ssb.workload(db)

    def run_sequential():
        return {
            query.name: execute_functional(
                query.instantiate(), db).payload.row_tuples()
            for query in queries
        }

    run_sequential()  # warm the kernel caches
    sequential_seconds, rows = _best(run_sequential, SIZES["reps"])
    digests = {name: _digest(rows[name]) for name in rows}

    if ("fork" not in multiprocessing.get_all_start_methods()
            or not shm.available()):
        return {
            "jobs": 1,
            "sequential_seconds": round(sequential_seconds, 6),
            "parallel_seconds": round(sequential_seconds, 6),
            "setup_seconds": 0.0,
            "speedup": 1.0,
            "target": PARALLEL_TARGET,
            "fallbacks": 0,
            "identical": True,
            "note": "fork/shm unavailable; parallel run skipped",
        }

    setup_start = time.perf_counter()
    pool = MorselPool(db, queries, workload="ssb", jobs=jobs)
    try:
        pool.warm()
        pool.run_queries()  # build per-worker pipelines outside timing
        setup_seconds = time.perf_counter() - setup_start
        parallel_seconds, results = _best(pool.run_queries, SIZES["reps"])
        fallbacks = pool.fallbacks
    finally:
        pool.close()
        shm.invalidate(db)
    parallel_digests = {
        name: _digest(result.payload.row_tuples())
        for name, result in results.items()
    }
    return {
        "jobs": jobs,
        "sequential_seconds": round(sequential_seconds, 6),
        "parallel_seconds": round(parallel_seconds, 6),
        "setup_seconds": round(setup_seconds, 6),
        "speedup": round(sequential_seconds / parallel_seconds, 4),
        "target": PARALLEL_TARGET,
        "fallbacks": fallbacks,
        "identical": parallel_digests == digests,
    }


# ---------------------------------------------------------------------------
# Divergence gate: kernels vs the naive reference evaluator
# ---------------------------------------------------------------------------

def check_reference() -> dict:
    """Every SSB/TPC-H query on a small database, kernels engaged with
    small zone-map blocks, against the row-at-a-time reference."""
    kernels.enable(True)
    kernels.set_block_rows(96)
    try:
        checked = 0
        diverged = []
        for module, seed in ((ssb, 123), (tpch, 321)):
            db = module.generate(scale_factor=0.01, data_scale=0.01,
                                 seed=seed)
            for name, sql in module.QUERIES.items():
                spec = bind(sql, db, name=name)
                plan = Planner(db).plan(spec)
                engine_rows = execute_functional(
                    plan, db).payload.row_tuples()
                if sorted(engine_rows) != sorted(execute_reference(spec, db)):
                    diverged.append("{}:{}".format(module.__name__, name))
                checked += 1
        return {"queries": checked, "diverged": diverged,
                "identical": not diverged}
    finally:
        kernels.set_block_rows(None)


# ---------------------------------------------------------------------------


def main() -> int:
    jobs = _default_jobs()
    print("kernel benchmark: jobs={}, cpus={}{}".format(
        jobs, os.cpu_count(), ", REPRO_FAST" if FAST else ""))
    plan_cache.enable(False)  # every run must re-execute
    try:
        report = {
            "benchmark": "kernel_acceleration",
            "cpu_count": os.cpu_count(),
            "jobs": jobs,
            "fast_mode": FAST,
            "micro": {},
            "end_to_end": {},
        }

        kernels.enable(True)
        report["micro"]["join_repeated"] = bench_join_repeated()
        print("join repeated:   {speedup:.2f}x cached vs cold "
              "(target {target}x)".format(**report["micro"]["join_repeated"]))
        report["micro"]["zone_map_scan"] = bench_zone_map_scan()
        print("zone-map scan:   {speedup:.2f}x pruned vs full".format(
            **report["micro"]["zone_map_scan"]))

        ssb_db = ssb.generate(scale_factor=1.0,
                              data_scale=SIZES["ssb_data_scale"], seed=42)
        report["micro"]["selection_chain"] = bench_selection_chain(ssb_db)
        print("selection chain: {speedup:.2f}x masked vs gather".format(
            **report["micro"]["selection_chain"]))

        ssb_specs = _bind_all(ssb_db, ssb.QUERIES)
        report["end_to_end"]["ssb"] = bench_end_to_end(
            "ssb", ssb_db, ssb_specs)
        print("ssb batch:       {speedup:.2f}x kernels on vs off "
              "(target {target}x)".format(**report["end_to_end"]["ssb"]))

        tpch_db = tpch.generate(scale_factor=1.0,
                                data_scale=SIZES["tpch_data_scale"], seed=43)
        report["end_to_end"]["tpch"] = bench_end_to_end(
            "tpch", tpch_db, _bind_all(tpch_db, tpch.QUERIES))
        print("tpch batch:      {speedup:.2f}x kernels on vs off".format(
            **report["end_to_end"]["tpch"]))

        report["end_to_end"]["parallel_ssb"] = bench_parallel(ssb_db, jobs)
        print("parallel ssb:    {speedup:.2f}x morsel pool (jobs={jobs}, "
              "target {target}x)".format(
                  **report["end_to_end"]["parallel_ssb"]))

        report["reference_check"] = check_reference()
        print("reference check: {queries} queries, identical={identical}"
              .format(**report["reference_check"]))
        report["kernel_stats"] = kernels.snapshot_stats()
    finally:
        plan_cache.enable(True)
        kernels.enable(True)
        kernels.set_block_rows(None)
        kernels.invalidate()

    checks = [
        report["micro"]["join_repeated"]["identical"],
        report["micro"]["zone_map_scan"]["identical"],
        report["micro"]["selection_chain"]["identical"],
        report["end_to_end"]["ssb"]["identical"],
        report["end_to_end"]["tpch"]["identical"],
        report["end_to_end"]["parallel_ssb"]["identical"],
        report["reference_check"]["identical"],
    ]
    report["all_identical"] = all(checks)

    with open(OUTPUT, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote {}".format(os.path.normpath(OUTPUT)))
    return 0 if report["all_identical"] else 1


def test_kernels_match_reference_and_seed_paths():
    """Pytest entry point: every kernel fast path is byte-identical to
    the seed paths and the reference evaluator; the report is written."""
    assert main() == 0


if __name__ == "__main__":
    sys.exit(main())
