"""Figure 24: LFU vs. LRU data placement over the cache fraction.

Paper claim (App. E): times improve until the working set fits; the
policy itself has only minor impact (LFU slightly better in corner
cases).
"""

from benchmarks.common import regenerate, shape_checks
from repro.harness import experiments as E


def test_fig24_lfu_lru(benchmark):
    result = regenerate(
        benchmark, E.figure24,
        fractions=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0), repetitions=2,
    )
    series = result.series("cache_fraction", "seconds", "policy")
    lru = dict(series["lru"])
    lfu = dict(series["lfu"])
    if shape_checks():
        assert lru[0.8] < lru[0.0]
        assert lfu[0.8] < lfu[0.0]
