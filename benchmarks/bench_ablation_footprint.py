"""Ablation: sensitivity to the operator heap-footprint factor.

The heap-contention breakeven point n = M / (f * |C|) moves with the
footprint factor f (3.25 for the paper's GPU selection).
"""

import dataclasses

from repro.harness import experiments as E
from repro.harness.runner import run_workload
from repro.harness.tables import ExperimentResult
from repro.hardware.calibration import (
    COGADB_PROFILE,
    FOOTPRINT_FACTORS,
    EngineProfile,
)
from repro.workloads import micro


def profile_with_selection_factor(factor):
    factors = dict(FOOTPRINT_FACTORS)
    factors["selection"] = factor
    return EngineProfile(
        name="cogadb-f{}".format(factor),
        costs=COGADB_PROFILE.costs,
        footprint_factors=factors,
    )


def sweep_footprint(factors=(1.0, 2.0, 3.25, 5.0), users=10,
                    total_queries=60):
    database = E.ssb_database(10)
    queries = micro.parallel_selection_workload(database)
    result = ExperimentResult(
        "Ablation: selection footprint factor vs. contention"
    )
    for factor in factors:
        config = dataclasses.replace(
            E.MICRO_CONFIG, profile=profile_with_selection_factor(factor)
        )
        run = run_workload(
            database, queries, "gpu_only", config=config,
            users=users, repetitions=total_queries,
        )
        result.add(factor=factor, seconds=run.seconds,
                   aborts=run.metrics.aborts)
    return result


def test_ablation_footprint(benchmark):
    result = benchmark.pedantic(sweep_footprint, rounds=1, iterations=1)
    print()
    result.print()
    by_factor = {row["factor"]: row for row in result.rows}
    # smaller footprints fit more parallel operators: fewer aborts
    assert by_factor[1.0]["aborts"] <= by_factor[5.0]["aborts"]
