"""Chaos benchmark: graceful degradation under injected faults.

Exercises the ``repro.faults`` subsystem end to end and gates the
tentpole guarantees:

* **zero overhead when disabled** — a run with ``faults=None`` and a
  run with an all-zero fault spec produce byte-identical simulated
  timings and result tables;
* **determinism** — the same seed twice yields the identical fault
  schedule digest AND identical query results;
* **correctness under faults** — at every fault rate the query results
  are byte-identical to the fault-free run and cross-checked against
  the reference evaluator (``validate=True``);
* **graceful degradation** — the ``chaos_sweep`` curve: makespan grows
  with the fault rate but stays bounded by (about) the CPU-only floor,
  and the circuit breakers actually cycle (open / half-open / close
  transitions are recorded at the higher rates).

The exit code is nonzero iff any gate fails.  Writes ``BENCH_PR3.json``.

Run standalone:  PYTHONPATH=src python benchmarks/bench_faults.py
Or under pytest: PYTHONPATH=src python -m pytest benchmarks/bench_faults.py

``REPRO_FAST=1`` shrinks the sweep (CI smoke mode).
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.faults import FaultConfig  # noqa: E402
from repro.hardware import SystemConfig  # noqa: E402
from repro.hardware.calibration import GIB  # noqa: E402
from repro.harness import experiments as E  # noqa: E402
from repro.harness.runner import run_workload  # noqa: E402
from repro.workloads import ssb  # noqa: E402

FAST = os.environ.get("REPRO_FAST", "").strip() not in ("", "0")

OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_PR3.json"
)

SIZES = {
    "scale_factor": 5 if FAST else 10,
    "users": 2,
    "repetitions": 1 if FAST else 2,
    "rates": (0.0, 0.02, 0.1) if FAST else
             (0.0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2),
    "identity_rates": (0.02, 0.1) if FAST else (0.01, 0.05, 0.2),
}

SEED = 7

#: Degradation bound: faulted makespans must stay within this factor of
#: the CPU-only floor.  Retries burn backoff and wasted work on top of
#: the pure CPU path, so "about the floor" carries a small allowance.
FLOOR_MARGIN = 1.25

CONFIG = SystemConfig(gpu_memory_bytes=int(4 * GIB),
                      gpu_cache_bytes=int(1.5 * GIB))


def _run(faults, validate: bool = True):
    """One SSB workload run; returns (WorkloadResult, results digest)."""
    database = E.ssb_database(SIZES["scale_factor"])
    run = run_workload(
        database, ssb.workload(database), "runtime",
        config=CONFIG, users=SIZES["users"],
        repetitions=SIZES["repetitions"],
        collect_results=True, validate=validate, faults=faults,
    )
    return run, _digest_results(run.results)


def _digest_results(results) -> str:
    payload = repr(sorted(
        (name, tuple(table.row_tuples())) for name, table in results.items()
    ))
    return hashlib.sha256(payload.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Gate 1: zero overhead when injection is disabled
# ---------------------------------------------------------------------------

def gate_zero_overhead():
    off_run, off_digest = _run(faults=None)
    zero_run, zero_digest = _run(faults="pcie=0")  # parses to all-zero rates
    identical = (off_run.seconds == zero_run.seconds
                 and off_digest == zero_digest
                 and zero_run.faults_injected == 0)
    return {
        "off_seconds": off_run.seconds,
        "zero_rate_seconds": zero_run.seconds,
        "results_identical": off_digest == zero_digest,
        "identical": identical,
    }, off_run.seconds, off_digest


# ---------------------------------------------------------------------------
# Gate 2: determinism — same seed, same schedule, same answers
# ---------------------------------------------------------------------------

def gate_determinism(rate: float):
    spec = FaultConfig.uniform(rate, seed=SEED)
    first, first_digest = _run(faults=spec)
    second, second_digest = _run(faults=spec)
    identical = (first.fault_digest == second.fault_digest
                 and first.faults_injected == second.faults_injected
                 and first.seconds == second.seconds
                 and first_digest == second_digest)
    return {
        "rate": rate,
        "faults_injected": first.faults_injected,
        "schedule_digest": first.fault_digest,
        "schedules_identical": first.fault_digest == second.fault_digest,
        "timings_identical": first.seconds == second.seconds,
        "results_identical": first_digest == second_digest,
        "identical": identical,
    }


# ---------------------------------------------------------------------------
# Gate 3: results byte-identical to the fault-free run at every rate
# ---------------------------------------------------------------------------

def gate_result_identity(reference_digest: str):
    rows = []
    identical = True
    for rate in SIZES["identity_rates"]:
        run, digest = _run(faults=FaultConfig.uniform(rate, seed=SEED))
        match = digest == reference_digest
        identical = identical and match
        rows.append({
            "rate": rate,
            "faults_injected": run.faults_injected,
            "aborts": run.metrics.aborts,
            "retries": run.metrics.retries,
            "results_identical": match,
        })
    return {"rates": rows, "identical": identical}


# ---------------------------------------------------------------------------
# Gate 4: the degradation curve (chaos_sweep) stays bounded and the
# breakers demonstrably cycle
# ---------------------------------------------------------------------------

def gate_degradation():
    sweep = E.chaos_sweep(
        fault_rates=SIZES["rates"],
        scale_factor=SIZES["scale_factor"],
        users=SIZES["users"],
        repetitions=SIZES["repetitions"],
        seed=SEED,
    )
    curve = [dict(row) for row in sweep.rows]
    floor = next(row for row in curve if row["strategy"] == "cpu_only")
    faulted = [row for row in curve if not math.isnan(row["fault_rate"])]
    bound = floor["seconds"] * FLOOR_MARGIN
    bounded = all(row["seconds"] <= bound for row in faulted)
    worst = max(row["seconds"] for row in faulted)
    top = max(faulted, key=lambda row: row["fault_rate"])
    breakers_cycled = (top["breaker_opens"] > 0
                       and top["breaker_half_opens"] > 0)
    return {
        "curve": curve,
        "cpu_only_floor_seconds": floor["seconds"],
        "floor_margin": FLOOR_MARGIN,
        "worst_faulted_seconds": worst,
        "worst_over_floor": worst / floor["seconds"],
        "bounded_by_floor": bounded,
        "breakers_cycled": breakers_cycled,
        "identical": bounded and breakers_cycled,
    }


# ---------------------------------------------------------------------------


def main() -> int:
    print("fault-injection benchmark: SF {}, {} users{}".format(
        SIZES["scale_factor"], SIZES["users"],
        ", REPRO_FAST" if FAST else ""))
    report = {
        "benchmark": "fault_injection",
        "fast_mode": FAST,
        "seed": SEED,
        "gates": {},
    }

    zero, _, reference_digest = gate_zero_overhead()
    report["gates"]["zero_overhead"] = zero
    print("zero overhead:   identical={identical} "
          "({off_seconds:.4f}s off vs {zero_rate_seconds:.4f}s zero-rate)"
          .format(**zero))

    determinism = gate_determinism(rate=0.05)
    report["gates"]["determinism"] = determinism
    print("determinism:     identical={identical} "
          "({faults_injected} faults, digest {schedule_digest:.12s}...)"
          .format(**determinism))

    identity = gate_result_identity(reference_digest)
    report["gates"]["result_identity"] = identity
    print("result identity: identical={} across rates {}".format(
        identity["identical"],
        tuple(row["rate"] for row in identity["rates"])))

    degradation = gate_degradation()
    report["gates"]["degradation"] = degradation
    print("degradation:     bounded={bounded_by_floor} "
          "(worst {worst_over_floor:.2f}x of cpu-only floor, "
          "margin {floor_margin}), breakers_cycled={breakers_cycled}"
          .format(**degradation))
    for row in degradation["curve"]:
        print("  rate {:>6} -> {:.4f}s  faults={} retries={} "
              "opens={} half_opens={} closes={} skips={}".format(
                  ("cpu" if math.isnan(row["fault_rate"])
                   else "{:g}".format(row["fault_rate"])),
                  row["seconds"], row["faults_injected"], row["retries"],
                  row["breaker_opens"], row["breaker_half_opens"],
                  row["breaker_closes"], row["breaker_skips"]))

    report["all_gates_pass"] = all(
        gate["identical"] for gate in report["gates"].values()
    )
    with open(OUTPUT, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote {}".format(os.path.normpath(OUTPUT)))
    return 0 if report["all_gates_pass"] else 1


def test_faults_degrade_gracefully():
    """Pytest entry point: every chaos gate holds; the report is
    written."""
    assert main() == 0


if __name__ == "__main__":
    sys.exit(main())
