"""Figure 16: memory footprint of the SSBM/TPC-H workloads vs. scale
factor.

Paper claim: from SF 15 the footprint significantly exceeds the data
cache, which is where cache thrashing sets in.
"""

from benchmarks.common import regenerate
from repro.harness import experiments as E
from repro.harness.experiments import FULL_CONFIG


def test_fig16_footprint(benchmark):
    result = regenerate(
        benchmark, E.figure16, scale_factors=(5, 10, 15, 20, 30),
    )
    cache_gib = FULL_CONFIG.gpu_cache_bytes / (1 << 30)
    for row in result.rows:
        expected = row["footprint_gib"] > cache_gib
        assert row["exceeds_cache"] == expected
        if row["scale_factor"] >= 15:
            assert row["exceeds_cache"], row
