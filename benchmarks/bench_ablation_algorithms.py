"""Ablation: HyPE's algorithm selection on/off.

HyPE "selects for each operator a suitable algorithm" (Sec. 5.2):
small inputs get low-startup variants (nested-loop join, insertion
sort), bulk inputs the high-throughput defaults.  Disabling the
selection forces the bulk defaults everywhere.
"""

import pytest

from repro.harness import experiments as E
from repro.harness.runner import run_workload
from repro.harness.tables import ExperimentResult
from repro.workloads import ssb


def sweep_algorithm_selection(repetitions=3):
    database = E.ssb_database(10)
    queries = ssb.workload(database)
    result = ExperimentResult(
        "Ablation: HyPE algorithm selection (SSB, single user)"
    )
    for enabled in (True, False):
        run = run_workload(
            database, queries, "data_driven_chopping",
            config=E.FULL_CONFIG, repetitions=repetitions,
            algorithm_selection=enabled,
        )
        variants = sum(
            count for key, count in run.metrics.algorithms.items()
            if "#" in key and not (
                key.endswith("hash_join") or key.endswith("radix_sort")
                or key.endswith("hash_aggregate")
            )
        )
        result.add(
            algorithm_selection=enabled,
            seconds=run.seconds,
            variant_executions=variants,
        )
    return result


def test_ablation_algorithms(benchmark):
    result = benchmark.pedantic(sweep_algorithm_selection, rounds=1,
                                iterations=1)
    print()
    result.print()
    rows = {row["algorithm_selection"]: row for row in result.rows}
    # with selection enabled, non-default variants actually run
    assert rows[True]["variant_executions"] > 0
    assert rows[False]["variant_executions"] == 0
    # selection never hurts (it minimizes per-operator estimates)
    assert rows[True]["seconds"] <= rows[False]["seconds"] * 1.02
