"""Figure 5: the buffer-size sweep with Data-Driven placement.

Paper claim: Data-Driven eliminates the thrashing degradation and
improves monotonically as more columns fit the cache.
"""

from benchmarks.common import regenerate
from repro.harness import experiments as E


def test_fig05_data_driven_buffer(benchmark):
    result = regenerate(
        benchmark, E.figure05,
        buffer_gib=(0.0, 0.5, 1.0, 1.5, 2.0, 2.5), repetitions=10,
    )
    dd = [s for _, s in
          result.series("buffer_gib", "seconds", "strategy")["data_driven"]]
    assert all(b <= a * 1.05 for a, b in zip(dd, dd[1:]))
