"""Figure 2: serial selection workload vs. GPU buffer size
(operator-driven placement).

Paper claim: a factor ~24 degradation once the 1.9 GB working set no
longer fits the buffer.
"""

from benchmarks.common import regenerate
from repro.harness import experiments as E


def test_fig02_cache_thrashing(benchmark):
    result = regenerate(
        benchmark, E.figure02,
        buffer_gib=(0.0, 0.5, 1.0, 1.5, 1.75, 2.0, 2.5), repetitions=10,
    )
    gpu = dict(result.series("buffer_gib", "seconds", "strategy")["gpu_only"])
    assert gpu[0.0] / gpu[2.5] > 10
