"""Figure 9: run-time operator placement under parallel users.

Paper claim: run-time placement improves on compile-time placement but
remains clearly off the optimum.
"""

from benchmarks.common import regenerate
from repro.harness import experiments as E


def test_fig09_runtime_placement(benchmark):
    result = regenerate(
        benchmark, E.figure09, users=(1, 4, 7, 10, 14, 20),
        total_queries=100,
    )
    series = result.series("users", "seconds", "strategy")
    gpu = dict(series["gpu_only"])
    runtime = dict(series["runtime"])
    assert runtime[20] <= gpu[20] * 1.02
