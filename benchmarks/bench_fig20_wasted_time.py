"""Figure 20: wasted time of aborted GPU operators vs. #users (SSBM).

Paper claim: wasted time grows sharply with user parallelism; Chopping
and Data-Driven Chopping reduce it by up to a factor of 74.
"""

from benchmarks.common import regenerate
from repro.harness import experiments as E


def test_fig20_wasted_time(benchmark):
    result = regenerate(
        benchmark, E.figure20, users=(1, 5, 10, 20), repetitions=3,
    )
    series = result.series("users", "wasted_seconds", "strategy")
    gpu = dict(series["gpu_only"])
    chop = dict(series["chopping"])
    assert gpu[20] > gpu[1]
    assert gpu[20] > 5 * max(chop[20], 1e-9)
