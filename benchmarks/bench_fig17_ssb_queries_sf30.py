"""Figure 17: per-query SSB execution times, single user, SF 30.

Paper claims: GPU-only slows every query; Critical Path matches
CPU-only; high-selectivity queries (Q3.4) gain up to ~2.5x under
Data-Driven Chopping.
"""

from benchmarks.common import regenerate
from repro.harness import experiments as E


def test_fig17_ssb_queries_sf30(benchmark):
    result = regenerate(benchmark, E.figure17, repetitions=2)
    table = {}
    for row in result.rows:
        table.setdefault(row["query"], {})[row["strategy"]] = row["seconds"]
    q34 = table["Q3.4"]
    assert q34["cpu_only"] / q34["data_driven_chopping"] > 1.8
    for query, row in table.items():
        assert row["gpu_only"] > row["cpu_only"], query
