"""Figure 25: latencies of all SSB queries for varying #users (SF 10).

Paper claim: with increasing parallelism, Chopping keeps latencies
bounded while a naive GPU execution degrades.
"""

from benchmarks.common import regenerate
from repro.harness import experiments as E


def test_fig25_latency_matrix(benchmark):
    result = regenerate(
        benchmark, E.figure25, users=(1, 10, 20), repetitions=2,
        strategies=("gpu_only", "chopping", "data_driven_chopping"),
    )
    # mean latency over all queries at 20 users: chopping wins
    by_strategy = {}
    for row in result.rows:
        if row["users"] == 20:
            by_strategy.setdefault(row["strategy"], []).append(row["seconds"])
    mean = {k: sum(v) / len(v) for k, v in by_strategy.items()}
    assert mean["data_driven_chopping"] <= mean["gpu_only"]
