"""Extension: the vector-at-a-time processing model (Sec. 5.5).

"Cache thrashing and heap contention can lead to the same performance
penalties observed in this paper [under vectorized execution].  Heap
contention is reduced to pipeline-breaking operators, but for a
reasonably complex query workload the DBMS is still required to deal
with this problem."

This benchmark runs the SSB workload under both processing models and
shows (a) vectorized execution softens the cold-data penalty by
streaming, (b) its heap demand concentrates at the breakers but does
not vanish.
"""

import dataclasses

from repro.harness import experiments as E
from repro.harness.runner import run_workload
from repro.harness.tables import ExperimentResult
from repro.hardware import SystemConfig
from repro.hardware.calibration import GIB
from repro.workloads import ssb


def sweep_processing_models(users=(1, 10), repetitions=2):
    database = E.ssb_database(10)
    queries = ssb.workload(database)
    result = ExperimentResult(
        "Extension: operator-at-a-time vs vector-at-a-time (SSB, SF 10)"
    )
    for model in ("operator", "vectorized"):
        for n_users in users:
            run = run_workload(
                database, queries, "data_driven_chopping",
                config=E.FULL_CONFIG, users=n_users,
                repetitions=repetitions, processing_model=model,
            )
            result.add(
                model=model,
                users=n_users,
                seconds=run.seconds,
                h2d_seconds=run.metrics.cpu_to_gpu_seconds,
                aborts=run.metrics.aborts,
                peak_heap_gib=run.metrics.peak_heap_bytes / GIB,
            )
    return result


def test_extension_vectorized(benchmark):
    result = benchmark.pedantic(sweep_processing_models, rounds=1,
                                iterations=1)
    print()
    result.print()
    rows = {(r["model"], r["users"]): r for r in result.rows}
    # vectorized pipelines materialise only at breakers: the peak heap
    # demand is lower than the operator model's footprints
    assert (rows[("vectorized", 10)]["peak_heap_gib"]
            <= rows[("operator", 10)]["peak_heap_gib"])
    # and the model change never breaks robustness (comparable time)
    assert (rows[("vectorized", 10)]["seconds"]
            <= rows[("operator", 10)]["seconds"] * 1.5)
