"""Steady-state soak: service mode under sustained overload and chaos.

Exercises ``repro.harness.service`` end to end and gates the tentpole
guarantees:

* **slo soak** — a fixed-seed diurnal arrival stream at ~4x the
  machine's measured closed-loop capacity, with ~10% hardware chaos
  and concurrent append epochs: premium attainment stays >= 95% while
  best-effort absorbs all the shedding, every arrival is accounted
  for exactly once (conservation), and every completed query is
  byte-identical to the reference engine over its pinned epoch
  (``ledger_divergence == 0``);
* **determinism** — two soaks with the same seed produce the same
  arrival counts, the same per-class ledger, and the same fault
  schedule digest;
* **epoch identity** — append batches advance the table epoch
  mid-stream; queries stay pinned, superseded snapshots retire
  through the cache registry, and nothing diverges;
* **zero overhead when disabled** — running service mode does not
  perturb the batch path: a plain ``run_workload`` before and after a
  service run returns byte-identical simulated makespans and result
  digests.

The exit code is nonzero iff any gate fails.  Writes ``BENCH_PR10.json``
with a top-level ``ledger_divergence`` count that the trajectory gate
(``benchmarks/trajectory.py``) fails on.

Run standalone:  PYTHONPATH=src python benchmarks/bench_service.py
Or under pytest: PYTHONPATH=src python -m pytest benchmarks/bench_service.py

``REPRO_FAST=1`` shrinks the soak (CI smoke machines are small).
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.harness.runner import run_workload  # noqa: E402
from repro.harness.service import ServiceConfig, run_service  # noqa: E402
from repro.workloads import ssb  # noqa: E402

FAST = os.environ.get("REPRO_FAST", "").strip() not in ("", "0")

OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_PR10.json"
)

SIZES = {
    "scale_factor": 0.05 if FAST else 0.5,
    "data_scale": 0.01 if FAST else 0.05,
    "duration": 4.0 if FAST else 12.0,
    "mutation_interval": 1.5 if FAST else 3.0,
}

#: ~10% of operator executions fault (pcie + heap + kernel)
CHAOS_SPEC = "pcie=0.04,heap=0.03,kernel=0.03,seed=29"
#: the overload multiple the soak sustains over measured capacity
OVERLOAD = 4.0
#: acceptance: premium completes >= this fraction within its target
PREMIUM_ATTAINMENT = 0.95

QUERY_NAMES = ["Q1.1", "Q2.1", "Q3.1", "Q4.1"]
SEED = 47


def _database():
    return ssb.generate(scale_factor=SIZES["scale_factor"],
                        data_scale=SIZES["data_scale"], seed=7)


def _measure_capacity(database):
    """``(capacity, latency_scale)``: sustained service capacity in
    queries per simulated second, and the per-query latency scale the
    SLO targets ride.

    A closed-loop batch overstates what the machine holds at steady
    state (it rotates a handful of hot queries with no chaos), so the
    4x overload point is derived in two steps: the batch gives a first
    guess, then a short *service-mode* calibration run — same chaos
    spec, open arrivals at half the guess — measures the true mean
    service time, and capacity = max_inflight / mean_service.

    Capacity follows the traffic *mix* (throughput is mix-weighted),
    but the latency scale follows the **premium** class's own measured
    service time: premium never sheds, so it pays full price for the
    heavy query templates and their chaos retries, and a target scaled
    from the lighter mix mean would undercount that cost."""
    queries = ssb.workload(database, QUERY_NAMES)
    reps = 5
    run = run_workload(database, queries, "critical_path", users=4,
                       repetitions=reps)
    guess = len(queries) * reps / max(run.seconds, 1e-9)
    calibration = ServiceConfig(
        duration_seconds=2.0, arrivals="poisson", rate=0.5 * guess,
        tenants_per_class=2, max_inflight=4, validate=False,
        seed=SEED + 1,
    )
    result = run_service(
        database, workload="ssb", strategy="critical_path",
        service=calibration, query_names=QUERY_NAMES, faults=CHAOS_SPEC,
    )
    completed = sum(row.get("completed", 0.0)
                    for row in result.ledger.values())
    service_seconds = sum(
        row.get("mean_service", 0.0) * row.get("completed", 0.0)
        for row in result.ledger.values()
    )
    mean_service = service_seconds / max(completed, 1.0)
    premium = result.ledger.get("premium", {})
    latency_scale = (premium["mean_service"]
                     if premium.get("completed", 0.0) else mean_service)
    return 4.0 / max(mean_service, 1e-9), max(latency_scale, 1e-9)


def _service_config(calib, **overrides) -> ServiceConfig:
    # the calibrated premium service time sets the latency scale; the
    # targets ride it so the gate is scale-independent
    capacity, service_time = calib
    defaults = dict(
        duration_seconds=SIZES["duration"],
        arrivals="diurnal",
        rate=OVERLOAD * capacity,
        tenants_per_class=2,
        max_inflight=4,
        deadline_seconds=40.0 * service_time,
        latency_target_seconds=16.0 * service_time,
        hedge_factor=3.0,
        mutation_interval_seconds=SIZES["mutation_interval"],
        append_fraction=0.05,
        seed=SEED,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _ledger_digest(result) -> str:
    payload = {
        "arrivals": result.arrivals,
        "completed": result.completed,
        "shed": result.shed,
        "cancelled": result.cancelled,
        "ledger": result.ledger,
        "tenant_ledger": result.tenant_ledger,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


def _soak(database, calib, **config_overrides):
    service = _service_config(calib, **config_overrides)
    return service, run_service(
        database, workload="ssb", strategy="critical_path",
        service=service, query_names=QUERY_NAMES, faults=CHAOS_SPEC,
    )


# ---------------------------------------------------------------------------
# Gate 1: the SLO soak — overload, chaos, mutation, attainment
# ---------------------------------------------------------------------------

def gate_slo_soak(database, calib):
    service, result = _soak(database, calib)
    premium = result.ledger.get("premium", {})
    best_effort = result.ledger.get("best_effort", {})
    attainment = premium.get("attainment", 0.0)
    identical = (
        result.conserved()
        and result.identical
        and attainment >= PREMIUM_ATTAINMENT
        and best_effort.get("shed", 0.0) >= premium.get("shed", 0.0)
        and premium.get("shed", 0.0) == 0.0
        and result.epochs >= 1
        and result.faults_injected > 0
    )
    return {
        "capacity_qps": round(calib[0], 2),
        "latency_scale_seconds": round(calib[1], 6),
        "offered_rate_qps": round(service.rate, 2),
        "overload": OVERLOAD,
        "arrivals": result.arrivals,
        "completed": result.completed,
        "shed": result.shed,
        "degraded": result.degraded,
        "cancelled": result.cancelled,
        "conserved": result.conserved(),
        "epochs": result.epochs,
        "snapshots_retired": result.metrics.snapshots_retired,
        "faults_injected": result.faults_injected,
        "fault_digest": result.fault_digest,
        "starvation_promotions": result.metrics.starvation_promotions,
        "premium_attainment": round(attainment, 4),
        "premium_attainment_target": PREMIUM_ATTAINMENT,
        "premium_p99": round(premium.get("p99", 0.0), 6),
        "premium_target": round(premium.get("target", 0.0), 6),
        "premium_shed": premium.get("shed", 0.0),
        "best_effort_shed": best_effort.get("shed", 0.0),
        "ledger": result.ledger,
        "ledger_divergence": len(result.divergences),
        "divergences": result.divergences[:5],
        "identical": identical,
    }


# ---------------------------------------------------------------------------
# Gate 2: determinism — same seed, same ledger, same chaos schedule
# ---------------------------------------------------------------------------

def gate_determinism(database, calib):
    _, first = _soak(database, calib)
    _, second = _soak(database, calib)
    digests = (_ledger_digest(first), _ledger_digest(second))
    identical = (
        digests[0] == digests[1]
        and first.fault_digest == second.fault_digest
        and first.conserved() and second.conserved()
    )
    return {
        "ledger_digests_equal": digests[0] == digests[1],
        "fault_digests_equal":
            first.fault_digest == second.fault_digest,
        "ledger_digest": digests[0],
        "ledger_divergence": (len(first.divergences)
                              + len(second.divergences)),
        "identical": identical,
    }


# ---------------------------------------------------------------------------
# Gate 3: epoch identity — mutation mid-stream, nothing diverges
# ---------------------------------------------------------------------------

def gate_epoch_identity(database, calib):
    # gentler load + faster append cadence: more epochs, all validated
    service, result = _soak(
        database, calib,
        rate=0.5 * calib[0],
        mutation_interval_seconds=SIZES["mutation_interval"] / 3.0,
        append_fraction=0.10,
    )
    identical = (
        result.identical
        and result.conserved()
        and result.epochs >= 2
        and result.metrics.snapshots_retired >= 1
    )
    return {
        "epochs": result.epochs,
        "snapshots_retired": result.metrics.snapshots_retired,
        "completed": result.completed,
        "conserved": result.conserved(),
        "ledger_divergence": len(result.divergences),
        "divergences": result.divergences[:5],
        "identical": identical,
    }


# ---------------------------------------------------------------------------
# Gate 4: zero overhead — the batch path is untouched by service mode
# ---------------------------------------------------------------------------

def gate_zero_overhead(database, calib):
    queries = ssb.workload(database, QUERY_NAMES)

    def batch():
        run = run_workload(database, queries, "critical_path",
                           users=2, repetitions=2,
                           collect_results=True)
        digest = hashlib.sha256(repr(sorted(
            (name, payload.row_tuples())
            for name, payload in run.results.items()
        )).encode()).hexdigest()
        return run.seconds, digest

    before_seconds, before_digest = batch()
    _soak(database, calib, duration_seconds=1.0)
    after_seconds, after_digest = batch()
    identical = (before_seconds == after_seconds
                 and before_digest == after_digest)
    return {
        "makespan_before": before_seconds,
        "makespan_after": after_seconds,
        "digests_equal": before_digest == after_digest,
        "identical": identical,
    }


# ---------------------------------------------------------------------------


def main() -> int:
    print("service benchmark: SF {scale_factor}, {duration}s simulated{f}"
          .format(f=", REPRO_FAST" if FAST else "", **SIZES))
    start = time.time()
    database = _database()
    calib = _measure_capacity(database)
    print("calibrated capacity: {:.1f} q/s (premium latency scale "
          "{:.2f} ms) -> soak at {:.1f} q/s ({}x)".format(
              calib[0], 1e3 * calib[1], OVERLOAD * calib[0], OVERLOAD))
    report = {
        "benchmark": "service",
        "fast_mode": FAST,
        "chaos_spec": CHAOS_SPEC,
        "seed": SEED,
        "gates": {},
    }

    report["gates"]["slo_soak"] = gate_slo_soak(database, calib)
    soak = report["gates"]["slo_soak"]
    print("slo soak:       {arrivals} arrivals, premium attainment "
          "{premium_attainment} (>= {premium_attainment_target}), "
          "sheds premium={premium_shed:.0f} "
          "best_effort={best_effort_shed:.0f}, epochs={epochs}, "
          "faults={faults_injected}, identical={identical}"
          .format(**soak))

    report["gates"]["determinism"] = gate_determinism(database, calib)
    print("determinism:    ledger_digests_equal={ledger_digests_equal} "
          "fault_digests_equal={fault_digests_equal} "
          "identical={identical}"
          .format(**report["gates"]["determinism"]))

    report["gates"]["epoch_identity"] = gate_epoch_identity(
        database, calib)
    print("epoch identity: epochs={epochs} retired={snapshots_retired} "
          "divergence={ledger_divergence} identical={identical}"
          .format(**report["gates"]["epoch_identity"]))

    report["gates"]["zero_overhead"] = gate_zero_overhead(
        database, calib)
    print("zero overhead:  digests_equal={digests_equal} "
          "identical={identical}"
          .format(**report["gates"]["zero_overhead"]))

    report["ledger_divergence"] = sum(
        gate.get("ledger_divergence", 0)
        for gate in report["gates"].values()
    )
    report["all_gates_pass"] = (
        all(gate["identical"] for gate in report["gates"].values())
        and report["ledger_divergence"] == 0
    )
    report["elapsed_seconds"] = round(time.time() - start, 2)
    with open(OUTPUT, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote {} in {:.1f}s".format(os.path.normpath(OUTPUT),
                                       report["elapsed_seconds"]))
    return 0 if report["all_gates_pass"] else 1


def test_service_gates():
    """Pytest entry point: every service gate holds; the report is
    written."""
    assert main() == 0


if __name__ == "__main__":
    sys.exit(main())
