"""Figure 1: SSB Q3.3 under CPU / cold-cache GPU / hot-cache GPU.

Paper claim: a hot-cache GPU accelerates the query ~2.5x while a
cold-cache GPU is ~3x slower than the CPU because of PCIe transfers.
"""

from benchmarks.common import regenerate
from repro.harness import experiments as E


def test_fig01_q33_strategies(benchmark):
    result = regenerate(benchmark, E.figure01, scale_factor=20,
                        repetitions=3)
    seconds = {row["strategy"]: row["seconds"] for row in result.rows}
    assert seconds["gpu (cold cache)"] > seconds["cpu"]
