"""Figure 12: query chopping under parallel users.

Paper claim: limiting operator concurrency with the thread pool yields
near-optimal performance.
"""

from benchmarks.common import regenerate, shape_checks
from repro.harness import experiments as E


def test_fig12_chopping(benchmark):
    result = regenerate(
        benchmark, E.figure12, users=(1, 4, 7, 10, 14, 20),
        total_queries=100,
    )
    series = result.series("users", "seconds", "strategy")
    chopping = dict(series["chopping"])
    gpu = dict(series["gpu_only"])
    assert chopping[20] < gpu[20]
    if shape_checks():
        assert chopping[20] < chopping[4] * 1.35
