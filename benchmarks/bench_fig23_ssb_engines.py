"""Figure 23: SSB per-query times, CoGaDB vs. the Ocelot profile.

Paper claim (App. A): Ocelot's CPU backend is faster on most SSB
queries; the GPU backends are comparable.
"""

from benchmarks.common import regenerate
from repro.harness import experiments as E


def test_fig23_ssb_engines(benchmark):
    result = regenerate(benchmark, E.figure23, repetitions=2)
    table = {}
    for row in result.rows:
        table.setdefault((row["engine"], row["backend"]), {})[
            row["query"]] = row["seconds"]
    cogadb_gpu = table[("cogadb", "gpu")]
    ocelot_gpu = table[("ocelot", "gpu")]
    for query in cogadb_gpu:
        assert 0.5 < cogadb_gpu[query] / ocelot_gpu[query] < 2.0
