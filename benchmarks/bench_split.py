"""Split-execution benchmark: intra-operator co-processing under
heap pressure.

Exercises ``repro.engine.execution.split`` end to end and gates the
tentpole guarantees:

* **heap-pressure speedup** — with a GPU heap too small for the
  working sets, split execution beats the best *pure* placement
  (cpu_only / gpu_only) on makespan by >= 1.15x: the GPU contributes
  its heap-capped share instead of aborting, the CPU the rest;
* **wasted work** — the same pressure drives PR 5 hedging to burn
  redundant-copy time and the pure device path to abort mid-operator;
  the split run wastes strictly less than hedging and aborts nothing;
* **byte identity** — any fixed ratio in {0, 0.25, 0.5, 0.75, 1.0}
  and any round count in {1, 2, 4, 7} produces result digests
  identical to the pure run (spot-validated against the reference);
* **zero overhead when disabled** — a disabled config reports an
  all-zero split summary, and a run whose every split declines at the
  ratio floor matches the pure makespan exactly;
* **determinism** — two identical split runs agree on makespan,
  digests, and every split counter;
* **coupled-platform shift** — the ``SystemConfig.coupled_gpu``
  preset (arXiv 1307.1955) moves the mean chosen ratio toward the GPU
  versus the PCIe config on the full SSB suite.

The exit code is nonzero iff any gate fails.  Writes ``BENCH_PR9.json``.

Run standalone:  PYTHONPATH=src python benchmarks/bench_split.py
Or under pytest: PYTHONPATH=src python -m pytest benchmarks/bench_split.py

``REPRO_FAST=1`` shrinks the sweep (CI smoke mode).
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.engine.execution import LifecycleConfig  # noqa: E402
from repro.harness import experiments as E  # noqa: E402
from repro.harness.runner import run_workload  # noqa: E402
from repro.hardware import SystemConfig  # noqa: E402
from repro.hardware.calibration import GIB  # noqa: E402
from repro.workloads import ssb  # noqa: E402

FAST = os.environ.get("REPRO_FAST", "").strip() not in ("", "0")

OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_PR9.json"
)

SIZES = {
    "scale_factor": 5 if FAST else 10,
    "repetitions": 1 if FAST else 2,
    "ratios": (0.0, 0.5, 1.0) if FAST else (0.0, 0.25, 0.5, 0.75, 1.0),
    "rounds": (1, 4) if FAST else (1, 2, 4, 7),
}

#: GPU heap too small for the SSB working sets at the chosen scale,
#: cache large enough to keep the base columns warm: the pure device
#: path aborts mid-operator, the split path caps its ratio and fits.
PRESSURE = (
    dict(gpu_memory_bytes=int(1.0 * GIB), gpu_cache_bytes=int(0.75 * GIB))
    if FAST else
    dict(gpu_memory_bytes=int(2.0 * GIB), gpu_cache_bytes=int(1.5 * GIB))
)

SEED = 9

#: Makespan bound: the split run must beat the best pure placement by
#: at least this factor under heap pressure.
SPEEDUP_FLOOR = 1.15


def _db():
    return E.ssb_database(SIZES["scale_factor"])


def _run(strategy, config, **kwargs):
    database = _db()
    kwargs.setdefault("repetitions", SIZES["repetitions"])
    return run_workload(database, ssb.workload(database), strategy,
                        config=config, **kwargs)


def _digest_results(results) -> str:
    payload = repr(sorted(
        (name, tuple(table.row_tuples())) for name, table in results.items()
    ))
    return hashlib.sha256(payload.encode()).hexdigest()


def _total_wasted(run) -> float:
    metrics = run.metrics
    return (metrics.wasted_seconds + metrics.split_wasted_seconds
            + metrics.hedge_wasted_seconds)


# ---------------------------------------------------------------------------
# Gate 1: split beats both pure placements under heap pressure
# ---------------------------------------------------------------------------

def gate_heap_pressure_speedup():
    config = SystemConfig(**PRESSURE)
    pure_cpu = _run("cpu_only", config)
    pure_gpu = _run("gpu_only", config)
    split = _run("runtime", config.with_split(True))
    best_pure = min(pure_cpu.seconds, pure_gpu.seconds)
    speedup = best_pure / split.seconds if split.seconds else 0.0
    summary = split.metrics.split_summary()
    return {
        "pure_cpu_seconds": pure_cpu.seconds,
        "pure_gpu_seconds": pure_gpu.seconds,
        "pure_gpu_aborts": pure_gpu.metrics.aborts,
        "split_seconds": split.seconds,
        "split_operators": summary["split_operators"],
        "split_mean_chosen_ratio": summary["split_mean_chosen_ratio"],
        "split_mean_realized_ratio": summary["split_mean_realized_ratio"],
        "split_rebalances": summary["split_rebalances"],
        "speedup_vs_best_pure": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "identical": (speedup >= SPEEDUP_FLOOR
                      and summary["split_operators"] > 0),
    }


# ---------------------------------------------------------------------------
# Gate 2: split wastes less than hedging (and aborts nothing)
# ---------------------------------------------------------------------------

def gate_wasted_work():
    config = SystemConfig(**PRESSURE)
    split = _run("runtime", config.with_split(True))
    unsplit = _run("runtime", config)
    hedged = _run("chopping", config,
                  lifecycle=LifecycleConfig(hedge_factor=1.5))
    split_wasted = _total_wasted(split)
    hedged_wasted = _total_wasted(hedged)
    return {
        "split_wasted_seconds": split_wasted,
        "split_aborts": split.metrics.aborts,
        "unsplit_wasted_seconds": _total_wasted(unsplit),
        "unsplit_aborts": unsplit.metrics.aborts,
        "hedges_started": hedged.metrics.hedges_started,
        "hedged_wasted_seconds": hedged_wasted,
        "identical": (split_wasted < hedged_wasted
                      and hedged.metrics.hedges_started > 0
                      and split.metrics.aborts <= unsplit.metrics.aborts),
    }


# ---------------------------------------------------------------------------
# Gate 3: byte identity across ratios and round counts
# ---------------------------------------------------------------------------

def gate_identity():
    config = SystemConfig(**PRESSURE)
    pure = _run("runtime", config, collect_results=True)
    baseline = _digest_results(pure.results)
    sweeps = []
    identical = True
    for ratio in SIZES["ratios"]:
        run = _run("runtime",
                   config.with_split(True, split_ratio=ratio),
                   collect_results=True, validate=(ratio == 0.5))
        match = _digest_results(run.results) == baseline
        identical = identical and match
        sweeps.append({"split_ratio": ratio, "digest_match": match,
                       "split_operators": run.metrics.split_operators})
    for rounds in SIZES["rounds"]:
        run = _run("runtime",
                   config.with_split(True, split_rounds=rounds),
                   collect_results=True)
        match = _digest_results(run.results) == baseline
        identical = identical and match
        sweeps.append({"split_rounds": rounds, "digest_match": match,
                       "split_operators": run.metrics.split_operators})
    return {"sweeps": sweeps, "identical": identical}


# ---------------------------------------------------------------------------
# Gate 4: zero overhead when disabled (or fully declined)
# ---------------------------------------------------------------------------

def gate_zero_overhead():
    config = SystemConfig(**PRESSURE)
    pure = _run("runtime", config, collect_results=True)
    summary_off = pure.metrics.split_summary()
    all_zero = all(value == 0 for value in summary_off.values())
    # split_ratio=0 declines every operator at the ratio floor before
    # any simulated time passes: the timeline must match exactly
    declined = _run("runtime", config.with_split(True, split_ratio=0.0),
                    collect_results=True)
    return {
        "disabled_summary_all_zero": all_zero,
        "pure_seconds": pure.seconds,
        "declined_seconds": declined.seconds,
        "declined_split_operators": declined.metrics.split_operators,
        "floor_declines": declined.metrics.split_declines["ratio_floor"],
        "identical": (
            all_zero
            and declined.metrics.split_operators == 0
            and declined.metrics.split_declines["ratio_floor"] > 0
            and declined.seconds == pure.seconds
            and _digest_results(declined.results) == _digest_results(
                pure.results)
        ),
    }


# ---------------------------------------------------------------------------
# Gate 5: determinism
# ---------------------------------------------------------------------------

def gate_determinism():
    config = SystemConfig(**PRESSURE).with_split(True)
    first = _run("runtime", config, collect_results=True)
    second = _run("runtime", config, collect_results=True)
    same_counters = (
        first.metrics.split_operators == second.metrics.split_operators
        and first.metrics.split_rebalances == second.metrics.split_rebalances
        and first.metrics.split_degrades == second.metrics.split_degrades
    )
    return {
        "first_seconds": first.seconds,
        "second_seconds": second.seconds,
        "split_operators": first.metrics.split_operators,
        "identical": (
            first.seconds == second.seconds
            and _digest_results(first.results) == _digest_results(
                second.results)
            and same_counters
        ),
    }


# ---------------------------------------------------------------------------
# Gate 6: the coupled-GPU preset shifts the ratio toward the GPU
# ---------------------------------------------------------------------------

def gate_coupled_shift():
    pcie = _run("runtime", SystemConfig(split=True))
    coupled = _run("runtime", SystemConfig.coupled_gpu())
    pcie_ratio = pcie.metrics.split_summary()["split_mean_chosen_ratio"]
    coupled_ratio = coupled.metrics.split_summary()[
        "split_mean_chosen_ratio"]
    return {
        "pcie_split_operators": pcie.metrics.split_operators,
        "pcie_mean_chosen_ratio": pcie_ratio,
        "coupled_split_operators": coupled.metrics.split_operators,
        "coupled_mean_chosen_ratio": coupled_ratio,
        "identical": (pcie.metrics.split_operators > 0
                      and coupled.metrics.split_operators > 0
                      and coupled_ratio > pcie_ratio),
    }


# ---------------------------------------------------------------------------


def main() -> int:
    print("split benchmark: SF {}, reps {}{}".format(
        SIZES["scale_factor"], SIZES["repetitions"],
        ", REPRO_FAST" if FAST else ""))
    report = {
        "benchmark": "split_execution",
        "fast_mode": FAST,
        "seed": SEED,
        "pressure_config": {k: int(v) for k, v in PRESSURE.items()},
        "gates": {},
    }

    speedup = gate_heap_pressure_speedup()
    report["gates"]["heap_pressure_speedup"] = speedup
    print("heap pressure:   identical={identical} "
          "(split {split_seconds:.3f}s vs cpu {pure_cpu_seconds:.3f}s / "
          "gpu {pure_gpu_seconds:.3f}s -> {speedup_vs_best_pure:.2f}x, "
          "floor {speedup_floor}x, {split_operators} split ops)"
          .format(**speedup))

    wasted = gate_wasted_work()
    report["gates"]["wasted_work"] = wasted
    print("wasted work:     identical={identical} "
          "(split {split_wasted_seconds:.3f}s / {split_aborts} aborts vs "
          "hedging {hedged_wasted_seconds:.3f}s over {hedges_started} "
          "hedges, unsplit {unsplit_aborts} aborts)".format(**wasted))

    identity = gate_identity()
    report["gates"]["identity"] = identity
    print("identity:        identical={} ({} sweeps)".format(
        identity["identical"], len(identity["sweeps"])))

    zero = gate_zero_overhead()
    report["gates"]["zero_overhead"] = zero
    print("zero overhead:   identical={identical} "
          "(declined {declined_seconds:.3f}s == pure {pure_seconds:.3f}s, "
          "{floor_declines} floor declines)".format(**zero))

    determinism = gate_determinism()
    report["gates"]["determinism"] = determinism
    print("determinism:     identical={identical} "
          "({first_seconds:.3f}s == {second_seconds:.3f}s, "
          "{split_operators} split ops)".format(**determinism))

    coupled = gate_coupled_shift()
    report["gates"]["coupled_shift"] = coupled
    print("coupled shift:   identical={identical} "
          "(ratio {pcie_mean_chosen_ratio:.3f} PCIe -> "
          "{coupled_mean_chosen_ratio:.3f} coupled)".format(**coupled))

    report["all_gates_pass"] = all(
        gate["identical"] for gate in report["gates"].values()
    )
    with open(OUTPUT, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote {}".format(os.path.normpath(OUTPUT)))
    return 0 if report["all_gates_pass"] else 1


def test_split_gates():
    """Pytest entry point: every split gate holds; the report is
    written."""
    assert main() == 0


if __name__ == "__main__":
    sys.exit(main())
