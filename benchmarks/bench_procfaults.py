"""Chaos soak: process faults against the self-healing morsel pool.

Exercises ``repro.faults.ProcessFaultInjector``, the self-healing
:class:`~repro.harness.parallel.MorselPool`, and the hardened
shared-memory store end to end and gates the tentpole guarantees:

* **chaos soak** — with seeded worker crashes, hangs, slow exits, and
  a shm unlink race (10% of chunks faulted in total), the SSB and
  TPC-H batches stay byte-identical to the sequential engine, no
  query falls back or degrades, no segment leaks, and the makespan
  stays within ``MAKESPAN_TARGET`` of the fault-free pool;
* **determinism** — two pools with the same seed plan the same fault
  schedule (equal digests and per-query reports) and return the same
  bytes;
* **zero overhead when disabled** — a pool without a fault config
  never consults the injector: no digest, zero recovery counters,
  identical results;
* **quarantine** — a deterministically repeating crasher poisons its
  chunk after ``poison_threshold`` kills and the chunk is recomputed
  in-process, still byte-identical, never via whole-query fallback;
* **composition** — PR3 hardware fault injection and the PR5 lifecycle
  (hedging + admission) produce byte-identical results, timings, and
  fault digests with the fused morsel path on and off.

The exit code is nonzero iff any gate fails.  Writes ``BENCH_PR8.json``.

Run standalone:  PYTHONPATH=src python benchmarks/bench_procfaults.py
Or under pytest: PYTHONPATH=src python -m pytest benchmarks/bench_procfaults.py

``REPRO_FAST=1`` shrinks sizes and relaxes the makespan target (CI
smoke machines are small and noisy; the committed full-mode report is
what the trajectory gate enforces).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.engine import kernels, morsel, plan_cache  # noqa: E402
from repro.engine.execution.functional import execute_functional  # noqa: E402
from repro.faults import FaultConfig  # noqa: E402
from repro.workloads import ssb, tpch  # noqa: E402

FAST = os.environ.get("REPRO_FAST", "").strip() not in ("", "0")

OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_PR8.json"
)

SIZES = {
    "reps": 1 if FAST else 2,
    # TPC-H gets more rows: its batch is shorter, and the soak's fixed
    # respawn costs must amortize against real work for the makespan
    # ratio to mean anything
    "data_scale": ({"ssb": 0.05, "tpch": 0.1} if FAST
                   else {"ssb": 1.0, "tpch": 1.0}),
    # the soak runs the whole batch this many times through ONE pool:
    # fixed recovery costs (a watchdog deadline per hang, a fork per
    # respawn, a re-export plus per-worker checksum re-verification per
    # unlink race) must amortize against sustained work, which is also
    # what a soak is
    # TPC-H's batch is shorter, so it needs more passes for the same
    # amortization
    "batch_reps": ({"ssb": 2, "tpch": 2} if FAST
                   else {"ssb": 3, "tpch": 6}),
    # correctness gates (determinism, zero overhead, quarantine) don't
    # time anything: a smaller database keeps the bench quick
    "aux_scale": 0.05 if FAST else 0.1,
    "jobs": 2,
}

#: chaos makespan over the fault-free pool makespan.  Every hang burns
#: one heartbeat deadline of wall clock and every crash a respawn, so
#: the budget is real work, not slack; smoke machines only gate
#: against a runaway.
MAKESPAN_TARGET = 20.0 if FAST else 2.0

#: 10% of chunks faulted in total; the unlink race is rarest (it is a
#: catastrophic event whose recovery — full re-export plus checksum
#: re-verification — costs on the order of the data size)
CHAOS_SPEC = dict(crash=0.05, hang=0.02, slowexit=0.02, unlinkrace=0.01,
                  hang_seconds=5.0, seed=82)
#: hang-watchdog deadline.  Must exceed the longest GIL-held numpy
#: phase (a join build) under full CPU contention, or healthy workers
#: get killed as false hangs; each *planned* hang burns one deadline
#: of wall clock, which the makespan budget must absorb.
HEARTBEAT = 0.75
#: soak morsel size: workers heartbeat once per morsel, so morsels must
#: be small enough that a busy 1-cpu box cannot starve a healthy worker
#: past the heartbeat deadline (a false hang kill)
SOAK_MORSEL_ROWS = 8192

POOL_OK = ("fork" in multiprocessing.get_all_start_methods())


def _digest(rows) -> str:
    return hashlib.sha256(repr(rows).encode()).hexdigest()


def _batch(database, queries):
    return {
        query.name: execute_functional(
            query.instantiate(), database).payload.row_tuples()
        for query in queries
    }


def _pool_rows(results):
    return {name: result.payload.row_tuples()
            for name, result in results.items()}


def _databases():
    for module, name, seed in ((ssb, "ssb", 42), (tpch, "tpch", 24)):
        yield name, module.generate(scale_factor=1.0,
                                    data_scale=SIZES["data_scale"][name],
                                    seed=seed)


# ---------------------------------------------------------------------------
# Gate 1: chaos soak — identity, recovery, and bounded makespan
# ---------------------------------------------------------------------------

def gate_chaos_soak():
    from repro.harness.parallel import MorselPool
    from repro.storage import shm

    per_benchmark = {}
    morsel.set_morsel_rows(SOAK_MORSEL_ROWS)
    for name, database in _databases():
        module = {"ssb": ssb, "tpch": tpch}[name]
        queries = module.workload(database)
        reference = {q: _digest(rows)
                     for q, rows in _batch(database, queries).items()}

        def _makespan(faults):
            best = None
            last = None
            for _ in range(SIZES["reps"]):
                with MorselPool(database, queries, workload=name,
                                jobs=SIZES["jobs"], faults=faults,
                                heartbeat_seconds=(
                                    HEARTBEAT if faults else None)) as pool:
                    pool.warm()
                    batches = []
                    start = time.perf_counter()
                    for _rep in range(SIZES["batch_reps"][name]):
                        batches.append(pool.run_queries())
                    elapsed = time.perf_counter() - start
                    last = pool
                    rows = [{q: _digest(r)
                             for q, r in _pool_rows(results).items()}
                            for results in batches]
                best = elapsed if best is None or elapsed < best else best
            return best, rows, last

        clean_seconds, clean_rows, _ = _makespan(None)
        chaos_seconds, chaos_rows, pool = _makespan(
            FaultConfig(**CHAOS_SPEC))
        ratio = chaos_seconds / clean_seconds
        per_benchmark[name] = {
            "queries": len(queries),
            "batch_reps": SIZES["batch_reps"][name],
            "clean_seconds": round(clean_seconds, 6),
            "chaos_seconds": round(chaos_seconds, 6),
            "makespan_ratio": round(ratio, 4),
            "faults_planned": pool.process_fault_summary(),
            "recovery": {key: pool.counters[key] for key in (
                "worker_crashes", "worker_hangs", "worker_restarts",
                "chunk_requeues", "chunk_quarantines", "shm_reexports",
                "worker_init_failures")},
            "fallbacks": pool.fallbacks,
            "degraded": pool.degraded,
            "leaked_segments": len(shm.leaked_segments()),
            "identical": (all(batch == reference for batch in chaos_rows)
                          and all(batch == reference
                                  for batch in clean_rows)),
        }
    total_planned = sum(
        sum(entry["faults_planned"].values())
        for entry in per_benchmark.values()
    )
    return {
        "heartbeat_seconds": HEARTBEAT,
        "target": MAKESPAN_TARGET,
        "benchmarks": per_benchmark,
        "faults_planned_total": total_planned,
        "identical": (
            total_planned > 0
            and all(entry["identical"]
                    and entry["fallbacks"] == 0
                    and entry["degraded"] is None
                    and entry["leaked_segments"] == 0
                    and entry["makespan_ratio"] <= MAKESPAN_TARGET
                    for entry in per_benchmark.values())
        ),
    }


# ---------------------------------------------------------------------------
# Gate 2: the fault schedule is a pure function of the seed
# ---------------------------------------------------------------------------

_AUX_DB = None


def _aux_database():
    global _AUX_DB
    if _AUX_DB is None:
        _AUX_DB = ssb.generate(scale_factor=1.0,
                               data_scale=SIZES["aux_scale"], seed=42)
    return _AUX_DB


def gate_determinism():
    from repro.harness.parallel import MorselPool

    database = _aux_database()
    queries = ssb.workload(database)
    morsel.set_morsel_rows(SOAK_MORSEL_ROWS)

    def soak():
        with MorselPool(database, queries, jobs=SIZES["jobs"],
                        faults=FaultConfig(**CHAOS_SPEC),
                        heartbeat_seconds=HEARTBEAT) as pool:
            rows = _digest(sorted(_pool_rows(pool.run_queries()).items()))
            return (rows, pool.process_fault_digest,
                    pool.process_fault_report())

    rows_a, digest_a, report_a = soak()
    rows_b, digest_b, report_b = soak()
    return {
        "schedule_digest": digest_a,
        "digests_equal": digest_a == digest_b,
        "reports_equal": report_a == report_b,
        "rows_equal": rows_a == rows_b,
        "identical": (digest_a == digest_b and report_a == report_b
                      and rows_a == rows_b and digest_a is not None),
    }


# ---------------------------------------------------------------------------
# Gate 3: a fault-free pool never consults the injector
# ---------------------------------------------------------------------------

def gate_zero_overhead():
    from repro.harness.parallel import MorselPool

    database = _aux_database()
    queries = ssb.workload(database)
    reference = {q: _digest(rows)
                 for q, rows in _batch(database, queries).items()}
    with MorselPool(database, queries, jobs=SIZES["jobs"]) as pool:
        rows = {q: _digest(r)
                for q, r in _pool_rows(pool.run_queries()).items()}
        counters = {key: pool.counters[key] for key in (
            "worker_crashes", "worker_hangs", "worker_restarts",
            "chunk_requeues", "chunk_quarantines", "pool_degrades",
            "shm_reexports")}
        return {
            "digest_absent": pool.process_fault_digest is None,
            "summary_empty": pool.process_fault_summary() == {},
            "counters": counters,
            "fallbacks": pool.fallbacks,
            "identical": (rows == reference
                          and pool.process_fault_digest is None
                          and pool.process_fault_summary() == {}
                          and not any(counters.values())
                          and pool.fallbacks == 0),
        }


# ---------------------------------------------------------------------------
# Gate 4: deterministic repeat-crashers are quarantined, not retried
# ---------------------------------------------------------------------------

def gate_quarantine():
    from repro.harness.parallel import MorselPool

    database = _aux_database()
    queries = ssb.workload(database)
    reference = {q: _digest(rows)
                 for q, rows in _batch(database, queries).items()}
    faults = FaultConfig(crash=0.2, crash_repeats=2, seed=3)
    with MorselPool(database, queries, jobs=SIZES["jobs"],
                    faults=faults) as pool:
        rows = {q: _digest(r)
                for q, r in _pool_rows(pool.run_queries()).items()}
        planned = pool.process_fault_summary().get("crash", 0)
        return {
            "crashes_planned": planned,
            "quarantines": pool.counters["chunk_quarantines"],
            "fallbacks": pool.fallbacks,
            "identical": (rows == reference and planned >= 1
                          and pool.counters["chunk_quarantines"] == planned
                          and pool.fallbacks == 0),
        }


# ---------------------------------------------------------------------------
# Gate 5: composition with hardware faults and the query lifecycle
# ---------------------------------------------------------------------------

def gate_composition():
    from repro.engine.execution import LifecycleConfig
    from repro.harness import experiments as E
    from repro.harness.runner import run_workload

    database = E.ssb_database(1)
    spec = FaultConfig.parse("stall=0.4,seed=7")
    lifecycle = LifecycleConfig(hedge_factor=1.5, max_inflight=2)
    runs = {}
    for label, fused in (("reference", False), ("fused", True)):
        plan_cache.invalidate(database)
        run = run_workload(database, ssb.workload(database), "chopping",
                           config=E.FULL_CONFIG.with_morsels(fused),
                           users=2, repetitions=1, collect_results=True,
                           faults=spec, lifecycle=lifecycle)
        runs[label] = {
            "seconds": run.seconds,
            "digest": _digest(sorted(
                (name, tuple(table.row_tuples()))
                for name, table in run.results.items())),
            "fault_digest": run.fault_digest,
            "hedges_started": run.metrics.hedges_started,
        }
    base, fused = runs["reference"], runs["fused"]
    return {
        "hedges_started": fused["hedges_started"],
        "seconds_equal": base["seconds"] == fused["seconds"],
        "fault_digests_equal":
            base["fault_digest"] == fused["fault_digest"],
        "identical": (base["digest"] == fused["digest"]
                      and base["seconds"] == fused["seconds"]
                      and base["fault_digest"] == fused["fault_digest"]
                      and fused["hedges_started"] > 0),
    }


# ---------------------------------------------------------------------------


def main() -> int:
    from repro.storage import shm

    print("process-fault benchmark: jobs={}, cpus={}{}".format(
        SIZES["jobs"], os.cpu_count(), ", REPRO_FAST" if FAST else ""))
    if not (POOL_OK and shm.available()):
        print("fork/shm unavailable; writing a skip report")
        report = {
            "benchmark": "process_faults",
            "fast_mode": FAST,
            "skipped": "fork/shm unavailable",
            "gates": {},
            "all_gates_pass": True,
        }
        with open(OUTPUT, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return 0
    plan_cache.enable(False)
    kernels.enable(True)
    morsel.enable(False)
    try:
        report = {
            "benchmark": "process_faults",
            "cpu_count": os.cpu_count(),
            "fast_mode": FAST,
            "chaos_spec": dict(CHAOS_SPEC),
            "gates": {},
        }

        report["gates"]["chaos_soak"] = gate_chaos_soak()
        soak = report["gates"]["chaos_soak"]
        for name, entry in soak["benchmarks"].items():
            print("chaos soak {}: {:.2f}x makespan (target {}x), "
                  "faults {}, identical={}".format(
                      name, entry["makespan_ratio"], soak["target"],
                      entry["faults_planned"] or "none",
                      entry["identical"]))

        report["gates"]["determinism"] = gate_determinism()
        print("determinism:     digests_equal={digests_equal} "
              "reports_equal={reports_equal} rows_equal={rows_equal}"
              .format(**report["gates"]["determinism"]))

        report["gates"]["zero_overhead"] = gate_zero_overhead()
        print("zero overhead:   identical={identical} "
              "(digest_absent={digest_absent})"
              .format(**report["gates"]["zero_overhead"]))

        report["gates"]["quarantine"] = gate_quarantine()
        print("quarantine:      {quarantines} chunks for "
              "{crashes_planned} planned repeat-crashers, "
              "identical={identical}"
              .format(**report["gates"]["quarantine"]))

        report["gates"]["composition"] = gate_composition()
        print("composition:     identical={identical} "
              "(hedges_started={hedges_started})"
              .format(**report["gates"]["composition"]))
    finally:
        plan_cache.enable(True)
        kernels.enable(True)
        morsel.enable(False)
        morsel.set_morsel_rows(None)
        kernels.invalidate()

    report["all_gates_pass"] = all(
        gate["identical"] for gate in report["gates"].values()
    )
    with open(OUTPUT, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote {}".format(os.path.normpath(OUTPUT)))
    return 0 if report["all_gates_pass"] else 1


def test_procfault_gates():
    """Pytest entry point: every process-fault gate holds; the report
    is written."""
    assert main() == 0


if __name__ == "__main__":
    sys.exit(main())
