"""Ablation: ready-queue discipline of the chopping executor.

The paper observes that under Chopping "short running queries become
slower to some degree, whereas long running queries are accelerated"
(Sec. 6.2.2).  A shortest-job-first ready queue (by HyPE's runtime
estimate) is the classic counter-measure; this ablation quantifies the
effect on the SSB mix at 20 users.
"""

import pytest

from repro.harness import experiments as E
from repro.harness.runner import run_workload
from repro.harness.tables import ExperimentResult
from repro.workloads import ssb


def sweep_scheduling(users=20, repetitions=3):
    database = E.ssb_database(10)
    queries = ssb.workload(database)
    result = ExperimentResult(
        "Ablation: FIFO vs SJF ready queues (SSB, 20 users)"
    )
    for scheduling in ("fifo", "sjf"):
        run = run_workload(
            database, queries, "data_driven_chopping",
            config=E.FULL_CONFIG, users=users, repetitions=repetitions,
            scheduling=scheduling,
        )
        latencies = run.metrics.latencies_by_query()
        short = min(latencies, key=latencies.get)
        long_ = max(latencies, key=latencies.get)
        result.add(
            scheduling=scheduling,
            makespan=run.seconds,
            mean_latency=run.metrics.mean_latency(),
            shortest_query=short,
            shortest_latency=latencies[short],
            longest_query=long_,
            longest_latency=latencies[long_],
        )
    return result


def test_ablation_scheduling(benchmark):
    result = benchmark.pedantic(sweep_scheduling, rounds=1, iterations=1)
    print()
    result.print()
    rows = {row["scheduling"]: row for row in result.rows}
    # the discipline must not change the total amount of work
    assert rows["sjf"]["makespan"] == pytest.approx(
        rows["fifo"]["makespan"], rel=0.25
    )
    # SJF does not hurt the short end of the mix
    assert rows["sjf"]["shortest_latency"] <= (
        rows["fifo"]["shortest_latency"] * 1.1
    )

