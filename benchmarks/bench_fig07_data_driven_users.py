"""Figure 7: Data-Driven placement under parallel users.

Paper claim: Data-Driven does NOT solve heap contention — the same
degradation as operator-driven placement appears.
"""

from benchmarks.common import regenerate, shape_checks
from repro.harness import experiments as E


def test_fig07_data_driven_users(benchmark):
    result = regenerate(
        benchmark, E.figure07, users=(1, 4, 7, 10, 14, 20),
        total_queries=100,
    )
    dd = dict(result.series("users", "seconds", "strategy")["data_driven"])
    if shape_checks():
        assert dd[20] > dd[4] * 1.5
