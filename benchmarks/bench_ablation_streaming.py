"""Ablation: streaming transfers (the vector-at-a-time optimization the
paper sketches in Sec. 5.5).

"The vector-at-a-time scheme can overlap data transfer and computation
on the co-processor" — this mode hides kernel time behind the PCIe
copies for cold (uncached) inputs.  The thrashing effect does not
disappear: the bus volume is unchanged, only the exposed latency drops
to the slower of the two components.
"""

import dataclasses

from repro.harness import experiments as E
from repro.harness.runner import run_workload
from repro.harness.tables import ExperimentResult
from repro.workloads import micro


def sweep_streaming(buffer_gib=(0.0, 1.0, 2.0), repetitions=6):
    database = E.ssb_database(10)
    queries = micro.serial_selection_workload(database)
    result = ExperimentResult(
        "Ablation: staged vs. streaming transfers (serial selections)"
    )
    for streaming in (False, True):
        for gib in buffer_gib:
            config = dataclasses.replace(
                E.FULL_CONFIG,
                gpu_cache_bytes=int(gib * (1 << 30)),
                streaming_transfers=streaming,
            )
            run = run_workload(database, queries, "gpu_only",
                               config=config, repetitions=repetitions)
            result.add(
                mode="streaming" if streaming else "staged",
                buffer_gib=gib,
                seconds=run.seconds,
                h2d_seconds=run.metrics.cpu_to_gpu_seconds,
            )
    return result


def test_ablation_streaming(benchmark):
    result = benchmark.pedantic(sweep_streaming, rounds=1, iterations=1)
    print()
    result.print()
    series = result.series("buffer_gib", "seconds", "mode")
    staged = dict(series["staged"])
    streaming = dict(series["streaming"])
    # overlap helps in the transfer-bound regime ...
    assert streaming[0.0] <= staged[0.0]
    # ... but thrashing does not disappear (same bus volume)
    h2d = result.series("buffer_gib", "h2d_seconds", "mode")
    assert dict(h2d["streaming"])[0.0] == dict(h2d["staged"])[0.0]
