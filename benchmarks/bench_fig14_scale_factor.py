"""Figure 14: SSBM and TPC-H workload time vs. scale factor.

Paper claim: GPU-only falls behind from SF 15; Data-Driven Chopping
improves performance even when resources become scarce and is never
slower than CPU-only.
"""

from benchmarks.common import regenerate, shape_checks
from repro.harness import experiments as E


def test_fig14a_ssb_scale_factor(benchmark):
    result = regenerate(
        benchmark, E.figure14, benchmark="ssb",
        scale_factors=(5, 10, 15, 20, 30), repetitions=2,
    )
    series = result.series("scale_factor", "seconds", "strategy")
    cpu = dict(series["cpu_only"])
    gpu = dict(series["gpu_only"])
    ddc = dict(series["data_driven_chopping"])
    if shape_checks():
        assert gpu[15] > cpu[15]
    assert all(ddc[sf] <= cpu[sf] * 1.1 for sf in cpu)


def test_fig14b_tpch_scale_factor(benchmark):
    result = regenerate(
        benchmark, E.figure14, benchmark="tpch",
        scale_factors=(5, 10, 15, 20, 30), repetitions=2,
    )
    series = result.series("scale_factor", "seconds", "strategy")
    cpu = dict(series["cpu_only"])
    ddc = dict(series["data_driven_chopping"])
    assert all(ddc[sf] <= cpu[sf] * 1.15 for sf in cpu)
