"""Figure 21: SSB query latencies with 20 parallel users (SF 10),
including the single-query admission-control reference point.

Paper claim: Chopping is as fast as or faster than admission control;
long-running queries accelerate, short ones may slow slightly.
"""

from benchmarks.common import regenerate
from repro.harness import experiments as E


def test_fig21_latencies_20users(benchmark):
    result = regenerate(benchmark, E.figure21, repetitions=2)
    table = {}
    for row in result.rows:
        table.setdefault(row["strategy"], {})[row["query"]] = row["seconds"]
    chopping = table["chopping"]
    admission = table["admission_control"]
    mean_chop = sum(chopping.values()) / len(chopping)
    mean_admission = sum(admission.values()) / len(admission)
    assert mean_chop <= mean_admission * 1.1
