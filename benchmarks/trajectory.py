"""Performance-trajectory table across all committed benchmark reports.

Every perf-focused PR leaves a ``BENCH_PRn.json`` at the repository
root.  This script aggregates them into one printed table — benchmark
name, smoke/full mode, pass/fail verdict, and the headline speedup
figures found in each report — so a single CI step shows the perf
trajectory of the whole stack at a glance.

The exit code is nonzero iff any report's own gate verdict is false,
a full-mode report records a parallel speedup below its target
(default 1.0 — parallel execution must never lose to sequential),
any report records ``identical: false`` (result digests diverged from
the sequential reference), or any report counts leaked shared-memory
segments — correctness and hygiene regressions gate regardless of
the report's own headline verdict.

Run:  python benchmarks/trajectory.py [root]
"""

from __future__ import annotations

import glob
import json
import os
import re
import sys

#: per-report verdict keys, in the order the reports introduced them
VERDICT_KEYS = ("all_gates_pass", "all_identical", "tables_identical")


def _pr_number(path: str) -> int:
    match = re.search(r"BENCH_PR(\d+)\.json$", os.path.basename(path))
    return int(match.group(1)) if match else 1 << 30


def _verdict(report: dict):
    """(verdict bool or None, key used) for one report."""
    for key in VERDICT_KEYS:
        if key in report:
            return bool(report[key]), key
    return None, ""


def _parallel_regressions(node, path=""):
    """``(dotted.path, speedup, target)`` for every parallel entry
    whose measured speedup falls below its target (default 1.0 —
    parallel execution must never lose to sequential)."""
    found = []
    if isinstance(node, dict):
        speedup = node.get("speedup")
        if "parallel" in path and isinstance(speedup, (int, float)):
            target = float(node.get("target", 1.0))
            if float(speedup) < target:
                found.append((path, float(speedup), target))
        for key in sorted(node):
            where = "{}.{}".format(path, key) if path else key
            found.extend(_parallel_regressions(node[key], where))
    elif isinstance(node, list):
        for index, value in enumerate(node):
            found.extend(_parallel_regressions(
                value, "{}[{}]".format(path, index)))
    return found


def _integrity_failures(node, path=""):
    """``(dotted.path, kind, value)`` for every identity, shm-leak, or
    SLO-ledger violation anywhere in a report: an ``identical`` flag
    that is false, a ``leaked_segments`` count above zero, or a
    ``ledger_divergence`` count above zero (a service-mode query whose
    result diverged from the reference engine over its pinned epoch)."""
    found = []
    if isinstance(node, dict):
        if node.get("identical") is False:
            where = "{}.identical".format(path) if path else "identical"
            found.append((where, "identity", False))
        leaked = node.get("leaked_segments")
        if isinstance(leaked, (int, float)) and leaked > 0:
            where = ("{}.leaked_segments".format(path) if path
                     else "leaked_segments")
            found.append((where, "shm-leak", leaked))
        diverged = node.get("ledger_divergence")
        if isinstance(diverged, (int, float)) and diverged > 0:
            where = ("{}.ledger_divergence".format(path) if path
                     else "ledger_divergence")
            found.append((where, "ledger-divergence", diverged))
        for key in sorted(node):
            child = "{}.{}".format(path, key) if path else key
            found.extend(_integrity_failures(node[key], child))
    elif isinstance(node, list):
        for index, value in enumerate(node):
            found.extend(_integrity_failures(
                value, "{}[{}]".format(path, index)))
    return found


def _speedups(node, path=""):
    """Recursively collect ``(dotted.path, value)`` for speedup keys."""
    found = []
    if isinstance(node, dict):
        for key in sorted(node):
            where = "{}.{}".format(path, key) if path else key
            value = node[key]
            if ("speedup" in key and "required" not in key
                    and isinstance(value, (int, float))):
                found.append((where, float(value)))
            else:
                found.extend(_speedups(value, where))
    elif isinstance(node, list):
        for index, value in enumerate(node):
            found.extend(_speedups(value, "{}[{}]".format(path, index)))
    return found


def collect(root: str):
    """Rows for every BENCH_PR*.json under ``root`` (PR order)."""
    rows = []
    for path in sorted(glob.glob(os.path.join(root, "BENCH_PR*.json")),
                       key=_pr_number):
        with open(path) as handle:
            report = json.load(handle)
        verdict, verdict_key = _verdict(report)
        rows.append({
            "file": os.path.basename(path),
            "benchmark": str(report.get("benchmark", "?")),
            "mode": "smoke" if report.get("fast_mode") else "full",
            "verdict": verdict,
            "verdict_key": verdict_key,
            "speedups": _speedups(report),
            "parallel_regressions": _parallel_regressions(report),
            "integrity_failures": _integrity_failures(report),
        })
    return rows


def render(rows) -> str:
    header = ("report", "benchmark", "mode", "gates", "headline speedups")
    table = [header]
    for row in rows:
        verdict = ("pass" if row["verdict"]
                   else "FAIL" if row["verdict"] is not None else "n/a")
        headline = ", ".join(
            "{}={:.3g}x".format(where.split(".")[-1] if "." in where
                                else where, value)
            for where, value in row["speedups"][:4]
        ) or "-"
        table.append((row["file"], row["benchmark"], row["mode"],
                      verdict, headline))
    widths = [max(len(line[i]) for line in table)
              for i in range(len(header))]
    lines = []
    for index, line in enumerate(table):
        lines.append("  ".join(
            cell.ljust(width) for cell, width in zip(line, widths)
        ).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = argv[0] if argv else os.path.join(
        os.path.dirname(os.path.abspath(__file__)), ".."
    )
    rows = collect(root)
    if not rows:
        print("no BENCH_PR*.json reports under {}".format(
            os.path.normpath(root)))
        return 1
    print("performance trajectory ({} reports)".format(len(rows)))
    print()
    print(render(rows))
    failed = [row["file"] for row in rows if row["verdict"] is False]
    for row in rows:
        for where, speedup, target in row["parallel_regressions"]:
            print()
            print("parallel regression in {}: {} = {:.3g}x "
                  "(target {:.3g}x){}".format(
                      row["file"], where, speedup, target,
                      " [smoke run, not gated]"
                      if row["mode"] == "smoke" else ""))
            # smoke-mode machines are noisy; only full reports gate
            if row["mode"] != "smoke" and row["file"] not in failed:
                failed.append(row["file"])
    for row in rows:
        for where, kind, value in row["integrity_failures"]:
            print()
            print("{} violation in {}: {} = {}".format(
                kind, row["file"], where, value))
            # identity and shm hygiene gate even on smoke runs —
            # determinism does not depend on machine speed
            if row["file"] not in failed:
                failed.append(row["file"])
    if failed:
        print()
        print("gate failures: {}".format(", ".join(failed)))
        return 1
    return 0


def test_trajectory_reports_pass():
    """Pytest entry point: every committed benchmark report's own gate
    verdict holds."""
    assert main([]) == 0


if __name__ == "__main__":
    sys.exit(main())
