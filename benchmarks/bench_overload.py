"""Overload benchmark: the query-lifecycle layer under pressure.

Exercises ``repro.engine.execution.lifecycle`` end to end and gates the
tentpole guarantees:

* **bounded tail latency** — at 4x load, admission control (shed
  policy) keeps the p99 latency within 3x of the single-user p99,
  while the unmanaged query stream's p99 keeps growing with the queue
  depth;
* **cancellation correctness** — a deadline that cancels roughly half
  the stream mid-flight leaves every surviving query's results
  byte-identical to the uncancelled run;
* **zero overhead when disabled** — ``lifecycle=None`` and an all-off
  ``LifecycleConfig()`` produce byte-identical simulated timings and
  results, and leave the PR 3 fault-injection digests untouched;
* **straggler hedging** — under injected driver stalls the hedging
  watchdog demonstrably races stragglers onto the CPU, wins races, and
  the results stay correct (``validate=True``).

The exit code is nonzero iff any gate fails.  Writes ``BENCH_PR5.json``.

Run standalone:  PYTHONPATH=src python benchmarks/bench_overload.py
Or under pytest: PYTHONPATH=src python -m pytest benchmarks/bench_overload.py

``REPRO_FAST=1`` shrinks the sweep (CI smoke mode).
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.engine.execution import LifecycleConfig  # noqa: E402
from repro.faults import FaultConfig  # noqa: E402
from repro.harness import experiments as E  # noqa: E402
from repro.harness.runner import run_workload  # noqa: E402
from repro.workloads import ssb  # noqa: E402

FAST = os.environ.get("REPRO_FAST", "").strip() not in ("", "0")

OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_PR5.json"
)

SIZES = {
    "scale_factor": 5 if FAST else 10,
    "repetitions": 1 if FAST else 2,
    "loads": (1, 4) if FAST else (1, 4, 8),
}

SEED = 7

#: Tail-latency bound: the admitted p99 at 4x load must stay within
#: this factor of the single-user p99.
TAIL_FACTOR = 3.0


def _run(users=1, lifecycle=None, faults=None, validate=False,
         collect_results=False):
    database = E.ssb_database(SIZES["scale_factor"])
    return run_workload(
        database, ssb.workload(database), "chopping",
        config=E.FULL_CONFIG, users=users,
        repetitions=SIZES["repetitions"],
        lifecycle=lifecycle, faults=faults,
        validate=validate, collect_results=collect_results,
    )


def _digest_results(results) -> str:
    payload = repr(sorted(
        (name, tuple(table.row_tuples())) for name, table in results.items()
    ))
    return hashlib.sha256(payload.encode()).hexdigest()


def _rows_by_query(results):
    return {name: tuple(table.row_tuples())
            for name, table in results.items()}


# ---------------------------------------------------------------------------
# Gate 1: admission control bounds the tail under overload
# ---------------------------------------------------------------------------

def gate_tail_latency():
    admission = LifecycleConfig(max_inflight=2, overload_policy="shed")
    curve = []
    p99 = {}
    for users in SIZES["loads"]:
        off = _run(users=users)
        on = _run(users=users, lifecycle=admission)
        p99[(users, "off")] = off.metrics.latency_percentile(0.99)
        p99[(users, "on")] = on.metrics.latency_percentile(0.99)
        curve.append({
            "users": users,
            "p99_off": p99[(users, "off")],
            "p99_on": p99[(users, "on")],
            "completed_on": len(on.metrics.queries),
            "shed_on": sum(on.metrics.sheds.values()),
        })
    base = p99[(1, "on")]
    loaded = p99[(4, "on")]
    bounded = loaded <= TAIL_FACTOR * base
    off_grows = all(
        p99[(a, "off")] < p99[(b, "off")]
        for a, b in zip(SIZES["loads"], SIZES["loads"][1:])
    )
    admitted_beats_off = p99[(4, "on")] < p99[(4, "off")]
    return {
        "curve": curve,
        "tail_factor": TAIL_FACTOR,
        "p99_1x": base,
        "p99_4x_admitted": loaded,
        "p99_4x_over_1x": loaded / base if base else 0.0,
        "bounded": bounded,
        "off_grows_with_load": off_grows,
        "admitted_beats_off": admitted_beats_off,
        "identical": bounded and off_grows and admitted_beats_off,
    }


# ---------------------------------------------------------------------------
# Gate 2: mass cancellation leaves survivors byte-identical
# ---------------------------------------------------------------------------

def gate_cancellation_identity():
    clean = _run(users=4, collect_results=True)
    clean_rows = _rows_by_query(clean.results)
    deadline = clean.metrics.latency_percentile(0.50)
    cancel_run = _run(
        users=4, collect_results=True, validate=True,
        lifecycle=LifecycleConfig(deadline_seconds=deadline),
    )
    metrics = cancel_run.metrics
    total = len(metrics.queries) + len(metrics.cancelled_queries)
    survivors = _rows_by_query(cancel_run.results)
    survivors_identical = all(
        rows == clean_rows[name] for name, rows in survivors.items()
    )
    # a fresh uncancelled run after the carnage reproduces the baseline
    rerun = _run(users=4, collect_results=True)
    rerun_identical = (
        _digest_results(rerun.results) == _digest_results(clean.results)
    )
    cancelled_fraction = (
        len(metrics.cancelled_queries) / total if total else 0.0
    )
    return {
        "deadline_seconds": deadline,
        "total_queries": total,
        "cancelled": len(metrics.cancelled_queries),
        "cancelled_fraction": cancelled_fraction,
        "deadline_misses": sum(metrics.deadline_misses.values()),
        "cancels_drained": metrics.cancels,
        "survivors_identical": survivors_identical,
        "rerun_identical": rerun_identical,
        "identical": (survivors_identical and rerun_identical
                      and 0.0 < cancelled_fraction < 1.0),
    }


# ---------------------------------------------------------------------------
# Gate 3: zero overhead when the layer is disabled
# ---------------------------------------------------------------------------

def gate_zero_overhead():
    base = _run(users=2, collect_results=True)
    off = _run(users=2, collect_results=True, lifecycle=LifecycleConfig())
    identical_plain = (
        base.seconds == off.seconds
        and _digest_results(base.results) == _digest_results(off.results)
        and not off.lifecycle_enabled
    )
    faults = FaultConfig.uniform(0.05, seed=SEED)
    base_faulted = _run(users=2, faults=faults)
    off_faulted = _run(users=2, faults=faults, lifecycle=LifecycleConfig())
    identical_faulted = (
        base_faulted.fault_digest == off_faulted.fault_digest
        and base_faulted.faults_injected == off_faulted.faults_injected
        and base_faulted.seconds == off_faulted.seconds
    )
    return {
        "off_seconds": base.seconds,
        "disabled_config_seconds": off.seconds,
        "plain_identical": identical_plain,
        "fault_digest_unchanged": identical_faulted,
        "identical": identical_plain and identical_faulted,
    }


# ---------------------------------------------------------------------------
# Gate 4: hedging races stragglers and stays correct
# ---------------------------------------------------------------------------

def gate_hedging():
    run = _run(
        users=2, validate=True,
        faults=FaultConfig.parse("stall=0.4,seed={}".format(SEED)),
        lifecycle=LifecycleConfig(hedge_factor=1.5),
    )
    metrics = run.metrics
    resolved_ok = (
        metrics.hedge_wins + metrics.hedge_losses <= metrics.hedges_started
    )
    completed = len(metrics.queries)
    expected = (len(ssb.workload(E.ssb_database(SIZES["scale_factor"])))
                * SIZES["repetitions"])
    return {
        "hedges_started": metrics.hedges_started,
        "hedge_wins": metrics.hedge_wins,
        "hedge_losses": metrics.hedge_losses,
        "completed": completed,
        "expected": expected,
        "identical": (metrics.hedges_started > 0
                      and metrics.hedge_wins > 0
                      and resolved_ok
                      and completed == expected),
    }


# ---------------------------------------------------------------------------


def main() -> int:
    print("overload benchmark: SF {}, loads {}{}".format(
        SIZES["scale_factor"], SIZES["loads"],
        ", REPRO_FAST" if FAST else ""))
    report = {
        "benchmark": "overload_lifecycle",
        "fast_mode": FAST,
        "seed": SEED,
        "gates": {},
    }

    tail = gate_tail_latency()
    report["gates"]["tail_latency"] = tail
    print("tail latency:    bounded={bounded} "
          "(p99 {p99_4x_over_1x:.2f}x of 1x at 4x load, cap {tail_factor}), "
          "off_grows={off_grows_with_load}, "
          "admitted_beats_off={admitted_beats_off}".format(**tail))
    for row in tail["curve"]:
        print("  users {:>2} -> p99 off {:.4f}s  on {:.4f}s  "
              "(completed {} / shed {})".format(
                  row["users"], row["p99_off"], row["p99_on"],
                  row["completed_on"], row["shed_on"]))

    cancel = gate_cancellation_identity()
    report["gates"]["cancellation_identity"] = cancel
    print("cancellation:    identical={identical} "
          "({cancelled}/{total_queries} cancelled at deadline "
          "{deadline_seconds:.4f}s, survivors_identical="
          "{survivors_identical})".format(**cancel))

    zero = gate_zero_overhead()
    report["gates"]["zero_overhead"] = zero
    print("zero overhead:   identical={identical} "
          "({off_seconds:.4f}s off vs {disabled_config_seconds:.4f}s "
          "disabled-config, fault_digest_unchanged="
          "{fault_digest_unchanged})".format(**zero))

    hedging = gate_hedging()
    report["gates"]["hedging"] = hedging
    print("hedging:         identical={identical} "
          "({hedges_started} hedges, {hedge_wins} wins, "
          "{hedge_losses} losses, {completed}/{expected} completed)"
          .format(**hedging))

    report["all_gates_pass"] = all(
        gate["identical"] for gate in report["gates"].values()
    )
    with open(OUTPUT, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote {}".format(os.path.normpath(OUTPUT)))
    return 0 if report["all_gates_pass"] else 1


def test_overload_lifecycle_gates():
    """Pytest entry point: every overload gate holds; the report is
    written."""
    assert main() == 0


if __name__ == "__main__":
    sys.exit(main())
