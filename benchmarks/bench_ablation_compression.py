"""Ablation: database compression (Sec. 6.3 discussion).

"We can improve the scalability by compressing the database, which
shifts the point where performance breaks down to a larger scale factor
or number of users.  Thus, compression neither solves the cache
thrashing nor the heap contention problem."
"""

import copy

from repro.harness import experiments as E
from repro.harness.runner import run_workload, workload_footprint_bytes
from repro.harness.tables import ExperimentResult
from repro.hardware import SystemConfig
from repro.hardware.calibration import GIB
from repro.storage.compression import compress_database
from repro.workloads import micro


def sweep_compression(buffer_gib=(0.0, 0.5, 1.0, 1.5, 2.0), repetitions=6):
    result = ExperimentResult(
        "Ablation: compression shifts the thrashing breakdown point",
        notes="Serial selection workload (App. B.1) with and without "
              "column compression.",
    )
    for compressed in (False, True):
        database = copy.deepcopy(E.ssb_database(10))
        if compressed:
            compress_database(database)
        queries = micro.serial_selection_workload(database)
        footprint = workload_footprint_bytes(queries, database)
        for gib in buffer_gib:
            config = SystemConfig(
                gpu_memory_bytes=4 * GIB, gpu_cache_bytes=int(gib * GIB)
            )
            run = run_workload(database, queries, "gpu_only",
                               config=config, repetitions=repetitions)
            result.add(
                compressed=compressed,
                buffer_gib=gib,
                working_set_gib=footprint / GIB,
                seconds=run.seconds,
                h2d_seconds=run.metrics.cpu_to_gpu_seconds,
            )
    return result


def test_ablation_compression(benchmark):
    result = benchmark.pedantic(sweep_compression, rounds=1, iterations=1)
    print()
    result.print()
    series = result.series("buffer_gib", "seconds", "compressed")
    plain = dict(series[False])
    packed = dict(series[True])
    # the breakdown point moves left: at 1.0 GiB the compressed working
    # set already fits while the uncompressed one still thrashes
    assert packed[1.0] < plain[1.0] / 2
    # but with no cache at all, compression does not remove the effect
    assert packed[0.0] > 4 * packed[2.0]
