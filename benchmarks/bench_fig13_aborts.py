"""Figure 13: operator aborts per strategy vs. #users.

Paper claim: compile-time placement aborts the most; run-time placement
reduces aborts; Chopping (thread pool) nearly removes them.
"""

from benchmarks.common import regenerate
from repro.harness import experiments as E


def test_fig13_aborts(benchmark):
    result = regenerate(
        benchmark, E.figure13, users=(1, 7, 14, 20), total_queries=100,
    )
    series = result.series("users", "aborts", "strategy")
    gpu = dict(series["gpu_only"])
    runtime = dict(series["runtime"])
    chopping = dict(series["chopping"])
    assert gpu[20] >= runtime[20] >= chopping[20]
    assert chopping[20] == 0
