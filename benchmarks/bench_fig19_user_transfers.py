"""Figure 19: CPU->GPU transfer time vs. #users (SF 10).

Paper claim: Chopping reduces the required IO significantly, especially
with many parallel users (up to 48x for the SSBM).
"""

from benchmarks.common import regenerate
from repro.harness import experiments as E


def test_fig19_user_transfers(benchmark):
    result = regenerate(
        benchmark, E.figure19, benchmark="ssb", users=(1, 10, 20),
        repetitions=3,
    )
    series = result.series("users", "h2d_seconds", "strategy")
    gpu = dict(series["gpu_only"])
    ddc = dict(series["data_driven_chopping"])
    assert gpu[20] > 10 * max(ddc[20], 1e-9)
