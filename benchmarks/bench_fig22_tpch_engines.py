"""Figure 22: TPC-H per-query times, CoGaDB vs. the Ocelot profile
(CPU and GPU backends, SF 10, no thrashing/contention).

Paper claim (App. A): both engines accelerate on the GPU and are
competitive with each other.
"""

from benchmarks.common import regenerate
from repro.harness import experiments as E


def test_fig22_tpch_engines(benchmark):
    result = regenerate(benchmark, E.figure22, repetitions=2)
    table = {}
    for row in result.rows:
        table.setdefault((row["engine"], row["backend"]), {})[
            row["query"]] = row["seconds"]
    for engine in ("cogadb", "ocelot"):
        cpu, gpu = table[(engine, "cpu")], table[(engine, "gpu")]
        assert sum(gpu[q] < cpu[q] for q in cpu) >= len(cpu) - 1
