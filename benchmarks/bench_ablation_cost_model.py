"""Ablation: learned vs. purely analytical cost models in run-time
placement.

HyPE bootstraps from the analytical profile and refines with observed
runtimes; this ablation disables learning to quantify its effect.
"""

from repro.harness import experiments as E
from repro.harness.runner import run_workload
from repro.harness.tables import ExperimentResult
from repro.hype import LearnedCostModel
from repro.workloads import ssb


def sweep_cost_models(users=10, repetitions=3):
    database = E.ssb_database(10)
    queries = ssb.workload(database)
    result = ExperimentResult(
        "Ablation: learned vs. analytical cost model (chopping)"
    )
    original_init = LearnedCostModel.__init__

    def analytical_only_init(self, profile, store=None,
                             min_observations=8, refit_interval=16):
        original_init(self, profile, store,
                      min_observations=10**9,  # never enough to fit
                      refit_interval=refit_interval)

    for mode, init in (("learned", original_init),
                       ("analytical", analytical_only_init)):
        LearnedCostModel.__init__ = init
        try:
            run = run_workload(
                database, queries, "chopping", config=E.FULL_CONFIG,
                users=users, repetitions=repetitions,
            )
        finally:
            LearnedCostModel.__init__ = original_init
        result.add(cost_model=mode, seconds=run.seconds,
                   aborts=run.metrics.aborts,
                   h2d_seconds=run.metrics.cpu_to_gpu_seconds)
    return result


def test_ablation_cost_model(benchmark):
    result = benchmark.pedantic(sweep_cost_models, rounds=1, iterations=1)
    print()
    result.print()
    seconds = {row["cost_model"]: row["seconds"] for row in result.rows}
    # both run; the learned model must not be catastrophically worse
    assert seconds["learned"] <= seconds["analytical"] * 1.5
