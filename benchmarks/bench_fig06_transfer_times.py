"""Figure 6: time spent on data transfers in the selection workload.

Paper claim: the thrashing degradation is fully explained by CPU->GPU
copy time; Data-Driven transfers (almost) nothing.
"""

from benchmarks.common import regenerate
from repro.harness import experiments as E


def test_fig06_transfer_times(benchmark):
    result = regenerate(
        benchmark, E.figure06,
        buffer_gib=(0.0, 1.0, 2.0, 2.5), repetitions=10,
    )
    series = result.series("buffer_gib", "h2d_seconds", "strategy")
    gpu = dict(series["gpu_only"])
    dd = dict(series["data_driven"])
    assert gpu[0.0] > 10 * max(dd[0.0], 1e-9)
