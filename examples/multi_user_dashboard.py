"""Scenario: a multi-user BI dashboard hitting heap contention.

Twenty analysts fire star-schema dashboard queries at a GPU-accelerated
warehouse.  A naive "everything on the GPU" policy collapses once the
concurrent operators exhaust the device heap (the paper's *heap
contention*, Sec. 2.3); query chopping keeps throughput and latencies
stable by pulling operators through a bounded worker pool.

Run with:  python examples/multi_user_dashboard.py
"""

from repro import run_workload, ssb
from repro.harness.experiments import FULL_CONFIG

STRATEGIES = ("gpu_only", "admission_control", "chopping",
              "data_driven_chopping")
USERS = (1, 5, 10, 20)


def main():
    database = ssb.generate(scale_factor=10, data_scale=1e-4)
    queries = ssb.workload(database)

    print("SSB dashboard workload, scale factor 10, {} queries/run".format(
        len(queries) * 2))
    print("\nWorkload makespan (seconds) by #users:")
    header = "  {:24s}".format("strategy") + "".join(
        "{:>9d}".format(u) for u in USERS
    )
    print(header)
    wasted = {}
    for strategy in STRATEGIES:
        cells = []
        for users in USERS:
            run = run_workload(
                database, queries, strategy, config=FULL_CONFIG,
                users=users, repetitions=2,
            )
            cells.append(run.seconds)
            wasted[(strategy, users)] = run.metrics.wasted_seconds
        print("  {:24s}".format(strategy) + "".join(
            "{:>9.3f}".format(c) for c in cells
        ))

    print("\nWasted time of aborted GPU operators at 20 users:")
    for strategy in STRATEGIES:
        print("  {:24s} {:>9.3f}s".format(strategy, wasted[(strategy, 20)]))

    print(
        "\nReading: gpu_only degrades as users grow (heap contention);\n"
        "admission_control protects the device but queues whole queries;\n"
        "chopping bounds operator concurrency and stays near-flat, and\n"
        "data_driven_chopping additionally avoids all cache thrashing."
    )


if __name__ == "__main__":
    main()
