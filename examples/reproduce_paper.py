"""Regenerate every figure of the paper and print the series.

Runs each harness driver with moderate parameters (minutes, not hours)
and prints the rows each figure of the paper plots.  Pass ``--fast``
for a quick smoke pass, ``--jobs N`` to fan each figure's grid over N
worker processes (output is identical to sequential), or a figure
selector like ``fig14``.

Run with:  python examples/reproduce_paper.py [--fast] [--jobs N] [figNN ...]
"""

import sys
import time

from repro.harness import experiments as E
from repro.harness.parallel import set_default_jobs

#: figure id -> (driver, default kwargs, fast kwargs)
FIGURES = {
    "fig01": (E.figure01, dict(scale_factor=20, repetitions=5),
              dict(scale_factor=20, repetitions=1)),
    "fig02": (E.figure02, dict(repetitions=10), dict(repetitions=2)),
    "fig03": (E.figure03, dict(total_queries=100),
              dict(total_queries=30, users=(1, 7, 20))),
    "fig05": (E.figure05, dict(repetitions=10), dict(repetitions=2)),
    "fig06": (E.figure06, dict(repetitions=10), dict(repetitions=2)),
    "fig07": (E.figure07, dict(total_queries=100),
              dict(total_queries=30, users=(1, 7, 20))),
    "fig09": (E.figure09, dict(total_queries=100),
              dict(total_queries=30, users=(1, 7, 20))),
    "fig12": (E.figure12, dict(total_queries=100),
              dict(total_queries=30, users=(1, 7, 20))),
    "fig13": (E.figure13, dict(total_queries=100),
              dict(total_queries=30, users=(1, 7, 20))),
    "fig14a": (E.figure14, dict(benchmark="ssb", repetitions=2),
               dict(benchmark="ssb", repetitions=1,
                    scale_factors=(5, 15, 30))),
    "fig14b": (E.figure14, dict(benchmark="tpch", repetitions=2),
               dict(benchmark="tpch", repetitions=1,
                    scale_factors=(5, 15, 30))),
    "fig15a": (E.figure15, dict(benchmark="ssb", repetitions=2),
               dict(benchmark="ssb", repetitions=1,
                    scale_factors=(5, 15, 30))),
    "fig15b": (E.figure15, dict(benchmark="tpch", repetitions=2),
               dict(benchmark="tpch", repetitions=1,
                    scale_factors=(5, 15, 30))),
    "fig16": (E.figure16, dict(), dict()),
    "fig17": (E.figure17, dict(repetitions=3), dict(repetitions=1)),
    "fig18a": (E.figure18, dict(benchmark="ssb", repetitions=3),
               dict(benchmark="ssb", repetitions=1, users=(1, 20))),
    "fig18b": (E.figure18, dict(benchmark="tpch", repetitions=3),
               dict(benchmark="tpch", repetitions=1, users=(1, 20))),
    "fig19": (E.figure19, dict(benchmark="ssb", repetitions=3),
              dict(benchmark="ssb", repetitions=1, users=(1, 20))),
    "fig20": (E.figure20, dict(repetitions=3),
              dict(repetitions=1, users=(1, 20))),
    "fig21": (E.figure21, dict(repetitions=2), dict(repetitions=1)),
    "fig22": (E.figure22, dict(repetitions=3), dict(repetitions=1)),
    "fig23": (E.figure23, dict(repetitions=3), dict(repetitions=1)),
    "fig24": (E.figure24, dict(repetitions=2),
              dict(repetitions=1, fractions=(0.0, 0.6, 1.0))),
    "fig25": (E.figure25, dict(repetitions=2),
              dict(repetitions=1, users=(1, 20))),
}


def main():
    arguments = sys.argv[1:]
    fast = "--fast" in arguments
    selected = []
    skip_next = False
    for index, argument in enumerate(arguments):
        if skip_next:
            skip_next = False
            continue
        if argument == "--jobs" or argument.startswith("--jobs="):
            if "=" in argument:
                raw = argument.split("=", 1)[1]
            else:
                raw = arguments[index + 1] if index + 1 < len(arguments) else ""
                skip_next = True
            try:
                set_default_jobs(int(raw))
            except ValueError as error:
                print("--jobs: {}".format(error))
                return 2
        elif not argument.startswith("--"):
            selected.append(argument)
    figures = selected or list(FIGURES)

    total_start = time.time()
    for figure_id in figures:
        if figure_id not in FIGURES:
            print("unknown figure {!r}; choose from {}".format(
                figure_id, ", ".join(FIGURES)))
            return 1
        driver, default_kwargs, fast_kwargs = FIGURES[figure_id]
        kwargs = fast_kwargs if fast else default_kwargs
        start = time.time()
        result = driver(**kwargs)
        elapsed = time.time() - start
        print("=" * 72)
        result.print()
        print("[{} regenerated in {:.1f}s wall time]\n".format(
            figure_id, elapsed))
    print("All done in {:.1f}s.".format(time.time() - total_start))
    return 0


if __name__ == "__main__":
    sys.exit(main())
