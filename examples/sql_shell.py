"""An interactive SQL shell over the simulated heterogeneous engine.

Type SQL against an SSB or TPC-H database; every statement is parsed,
planned, executed functionally for the result rows, and simulated under
a chosen placement strategy for the timing report.

Run with:  python examples/sql_shell.py [ssb|tpch] [strategy]
Example session:
    sql> select d_year, sum(lo_revenue) as rev from lineorder, date
         where lo_orderdate = d_datekey group by d_year order by d_year
    sql> \\strategy gpu_only
    sql> \\tables
    sql> \\quit
"""

import sys

from repro import STRATEGY_NAMES, run_workload, sql_workload, ssb, tpch


def print_result(payload, limit=20):
    names = payload.column_names
    rows = payload.row_tuples()
    widths = [
        max(len(str(name)), *(len(str(r[i])) for r in rows[:limit]))
        if rows else len(str(name))
        for i, name in enumerate(names)
    ]
    print("  " + "  ".join(str(n).ljust(w) for n, w in zip(names, widths)))
    print("  " + "  ".join("-" * w for w in widths))
    for row in rows[:limit]:
        print("  " + "  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    if len(rows) > limit:
        print("  ... ({} rows total)".format(len(rows)))


def main():
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "ssb"
    strategy = sys.argv[2] if len(sys.argv) > 2 else "data_driven_chopping"
    module = {"ssb": ssb, "tpch": tpch}[benchmark]
    print("Loading {} database (SF 10, reduced actual data)...".format(
        benchmark))
    database = module.generate(scale_factor=10, data_scale=1e-4)
    print("Tables: {}".format(
        ", ".join(t.name for t in database.tables)))
    print("Strategy: {} (\\strategy NAME to change)".format(strategy))

    while True:
        try:
            line = input("sql> ").strip()
        except (EOFError, KeyboardInterrupt):
            print()
            break
        if not line:
            continue
        if line.startswith("\\"):
            command, _, argument = line[1:].partition(" ")
            if command in ("quit", "q", "exit"):
                break
            if command == "tables":
                for table in database.tables:
                    print("  {}: {}".format(
                        table.name, ", ".join(table.column_names)))
                continue
            if command == "strategy":
                if argument in STRATEGY_NAMES:
                    strategy = argument
                    print("  strategy = {}".format(strategy))
                else:
                    print("  choose from: {}".format(
                        ", ".join(STRATEGY_NAMES)))
                continue
            print("  unknown command; try \\tables \\strategy \\quit")
            continue
        try:
            queries = sql_workload(database, {"adhoc": line})
            run = run_workload(database, queries, strategy,
                               collect_results=True)
        except Exception as error:  # surface engine errors to the user
            print("  error: {}".format(error))
            continue
        print_result(run.results["adhoc"])
        metrics = run.metrics
        print(
            "  [{}; simulated {:.4f}s; PCIe {:.4f}s; aborts {}]".format(
                strategy, run.seconds, metrics.transfer_seconds,
                metrics.aborts,
            )
        )


if __name__ == "__main__":
    main()
