"""Quickstart: load a database, run SQL, compare placement strategies.

Builds a Star Schema Benchmark database, executes one query through the
full stack (SQL -> plan -> simulated heterogeneous execution), and
compares the paper's placement strategies on it.

Run with:  python examples/quickstart.py
"""

from repro import (
    Planner,
    STRATEGY_NAMES,
    bind,
    execute_functional,
    run_workload,
    sql_workload,
    ssb,
)


def main():
    # 1. Generate data.  scale_factor controls the *nominal* size the
    #    cost model sees (SF 10 = the paper's 60M-row fact table);
    #    data_scale shrinks the actual arrays so this demo runs fast.
    print("Generating SSB database (scale factor 10)...")
    database = ssb.generate(scale_factor=10, data_scale=1e-4)
    lineorder = database.table("lineorder")
    print(
        "  lineorder: {:,} nominal rows ({:.2f} GiB), {:,} actual rows".format(
            lineorder.nominal_rows,
            lineorder.nominal_bytes / 2**30,
            lineorder.actual_rows,
        )
    )

    # 2. Parse, bind, and plan a query.
    sql = ssb.QUERIES["Q3.3"]
    print("\nQuery Q3.3:\n  {}".format(sql))
    spec = bind(sql, database, name="Q3.3")
    planner = Planner(database)
    print("\nLogical plan:")
    print(planner.logical_plan(spec).explain())

    # 3. Execute functionally (no simulation) and show the result.
    plan = planner.plan(spec)
    result = execute_functional(plan, database)
    print("\nResult ({} rows):".format(result.actual_rows))
    for row in result.payload.row_tuples()[:5]:
        print("  ", row)

    # 4. Run the same query as a workload under every strategy on the
    #    simulated CPU+GPU platform and compare.
    print("\nSimulated execution (GTX-770-class device, hot cache):")
    print("  {:24s} {:>10s} {:>10s} {:>7s}".format(
        "strategy", "seconds", "PCIe s", "aborts"))
    queries = sql_workload(database, {"Q3.3": sql})
    for strategy in STRATEGY_NAMES:
        run = run_workload(database, queries, strategy, repetitions=3)
        print("  {:24s} {:>10.4f} {:>10.4f} {:>7d}".format(
            strategy,
            run.seconds,
            run.metrics.transfer_seconds,
            run.metrics.aborts,
        ))

    print(
        "\nTip: repro.harness.experiments has a figureNN() driver for "
        "every figure of the paper."
    )


if __name__ == "__main__":
    main()
