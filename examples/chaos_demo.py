"""Scenario: surviving a flaky co-processor (chaos demo).

The same SSB query runs at three injected fault rates — none, moderate,
hostile.  Transient PCIe/kernel/stall faults are retried with
exponential backoff in simulated time; a device whose faults persist
trips its circuit breaker and the query degrades gracefully to the CPU.
The answer is byte-identical at every rate: faults cost time, never
correctness.

Run with:  python examples/chaos_demo.py
"""

from repro import SystemConfig, run_workload, ssb
from repro.faults import FaultConfig
from repro.hardware.calibration import GIB

QUERY = "Q2.1"
RATES = (0.0, 0.05, 0.3)


def main():
    database = ssb.generate(scale_factor=10, data_scale=1e-4)
    queries = [q for q in ssb.workload(database) if q.name == QUERY]
    config = SystemConfig(gpu_memory_bytes=4 * GIB,
                          gpu_cache_bytes=int(1.5 * GIB))

    print("SSB {} under injected co-processor faults (seed 7)\n".format(
        QUERY))
    print("  {:>6s} {:>9s} {:>7s} {:>8s} {:>14s} {:>6s} {:>9s}".format(
        "rate", "seconds", "faults", "retries",
        "breaker(o/h/c)", "skips", "identical"))

    reference_rows = None
    for rate in RATES:
        faults = (FaultConfig.uniform(rate, seed=7,
                                      breaker_threshold=2,
                                      breaker_open_seconds=0.05)
                  if rate > 0 else None)
        run = run_workload(
            database, queries, "runtime", config=config,
            users=2, repetitions=4, collect_results=True, faults=faults,
        )
        rows = run.results[QUERY].row_tuples()
        if reference_rows is None:
            reference_rows = rows
        transitions = run.metrics.breaker_transition_counts()
        print("  {:>6g} {:>9.4f} {:>7d} {:>8d} {:>14s} {:>6d} {:>9s}".format(
            rate, run.seconds, run.faults_injected, run.metrics.retries,
            "{}/{}/{}".format(transitions.get("open", 0),
                              transitions.get("half_open", 0),
                              transitions.get("closed", 0)),
            sum(run.metrics.breaker_skips.values()),
            "yes" if rows == reference_rows else "NO",
        ))
        if rows != reference_rows:
            raise SystemExit("result diverged at rate {}".format(rate))

    print(
        "\nReading: retries absorb isolated transient faults at a small\n"
        "latency cost; sustained faults open the device's circuit\n"
        "breaker (o/h/c = open/half-open/close transitions) and the\n"
        "query falls back to the CPU until a recovery probe succeeds.\n"
        "The result table is identical at every rate."
    )


if __name__ == "__main__":
    main()
