"""Scenario: compression shifts the breakdown point (paper Sec. 6.3).

"We can improve the scalability by compressing the database, which
shifts the point where performance breaks down to a larger scale factor
... compression neither solves the cache thrashing nor the heap
contention problem."

Runs the cache-thrashing micro benchmark with and without column
compression and prints the per-column codec report.

Run with:  python examples/compression_breakdown.py
"""

import copy

from repro import SystemConfig, run_workload, ssb
from repro.hardware.calibration import GIB
from repro.storage.compression import compress_database, compression_summary
from repro.workloads import micro

BUFFERS = (0.0, 0.5, 1.0, 1.5, 2.0)


def workload_time(database, buffer_gib):
    queries = micro.serial_selection_workload(database)
    config = SystemConfig(gpu_memory_bytes=4 * GIB,
                          gpu_cache_bytes=int(buffer_gib * GIB))
    run = run_workload(database, queries, "gpu_only", config=config,
                       repetitions=8)
    return run.seconds


def main():
    plain = ssb.generate(scale_factor=10, data_scale=1e-4)
    packed = copy.deepcopy(plain)
    report = compress_database(packed)

    print("Compression report (lineorder columns):")
    lines = compression_summary(report).splitlines()
    print("\n".join(l for l in lines if "lineorder" in l or "codec" in l))
    before = sum(
        plain.column(k).nominal_bytes
        for k in micro.SERIAL_SELECTION_COLUMNS
    )
    after = sum(
        packed.column(k).nominal_bytes
        for k in micro.SERIAL_SELECTION_COLUMNS
    )
    print("\nWorking set: {:.2f} GiB -> {:.2f} GiB\n".format(
        before / GIB, after / GIB))

    print("{:>10s} {:>14s} {:>14s}".format("buffer", "plain", "compressed"))
    for buffer_gib in BUFFERS:
        print("{:>8.2f}G {:>13.3f}s {:>13.3f}s".format(
            buffer_gib,
            workload_time(plain, buffer_gib),
            workload_time(packed, buffer_gib),
        ))

    print(
        "\nReading: the compressed working set fits a much smaller\n"
        "buffer, moving the thrashing cliff left — but with no cache at\n"
        "all the degradation is still there, exactly as the paper argues."
    )


if __name__ == "__main__":
    main()
