"""Scenario: scaling past one co-processor (paper Sec. 6.3).

At scale factor 30 the SSB working set (~6.7 GiB) dwarfs a single
4 GiB device, so even Data-Driven Chopping spends most of its time on
the CPU.  Adding devices lets the placement manager partition the hot
columns (replicating the small dimension structures), and the
data-driven rule routes each operator to the device holding its
inputs — the horizontal scale-out the paper sketches.

Run with:  python examples/multi_gpu_scaleup.py
"""

from repro import SystemConfig, run_workload, ssb
from repro.hardware.calibration import GIB

GPU_COUNTS = (1, 2, 4)
STRATEGIES = ("chopping", "data_driven_chopping")


def main():
    database = ssb.generate(scale_factor=30, data_scale=1e-4)
    queries = ssb.workload(database)
    working_set = sum(
        database.column(key).nominal_bytes
        for query in queries
        for key in query.required_columns()
    )
    print("SSB at scale factor 30, 10 concurrent users")
    print("Working set: {:.2f} GiB; device cache: 1.5 GiB each\n".format(
        working_set / GIB))

    print("{:24s} {:>6s} {:>10s} {:>10s} {:>8s}".format(
        "strategy", "GPUs", "seconds", "PCIe s", "GPU ops"))
    for strategy in STRATEGIES:
        for gpus in GPU_COUNTS:
            config = SystemConfig(
                gpu_count=gpus,
                gpu_memory_bytes=4 * GIB,
                gpu_cache_bytes=int(1.5 * GIB),
            )
            run = run_workload(database, queries, strategy, config=config,
                               users=10, repetitions=2)
            gpu_ops = sum(
                count
                for name, count in
                run.metrics.operators_per_processor.items()
                if name != "cpu"
            )
            print("{:24s} {:>6d} {:>10.3f} {:>10.3f} {:>8d}".format(
                strategy, gpus, run.seconds,
                run.metrics.transfer_seconds, gpu_ops))

    print(
        "\nReading: each added device holds more of the hot column set,\n"
        "so more operators run device-side without transfers.  The\n"
        "paper's caveat also shows: the basic problems stay — the\n"
        "working set still exceeds the combined caches at SF 30."
    )


if __name__ == "__main__":
    main()
