"""Scenario: ad-hoc analytics provoking cache thrashing.

A data scientist explores a fact table with ad-hoc filters over many
different columns.  The combined working set (1.9 GB at SF 10) exceeds
the co-processor's column cache, so operator-driven data placement
evicts exactly the column the next query needs — the paper's *cache
thrashing* (Fig. 2), a 20x+ slowdown.  Data-driven placement pins the
hottest columns instead and runs the rest on the CPU (Fig. 5).

Run with:  python examples/adhoc_cache_thrashing.py
"""

from repro import SystemConfig, run_workload, ssb
from repro.hardware.calibration import GIB
from repro.workloads import micro

BUFFER_GIB = (0.0, 0.5, 1.0, 1.5, 2.0, 2.5)


def main():
    database = ssb.generate(scale_factor=10, data_scale=1e-4)
    queries = micro.serial_selection_workload(database)
    working_set = sum(
        database.column(key).nominal_bytes
        for key in micro.SERIAL_SELECTION_COLUMNS
    )
    print("Ad-hoc selection workload over 8 fact-table columns")
    print("Working set: {:.2f} GiB\n".format(working_set / GIB))

    print("Workload time (s) vs. GPU buffer size:")
    print("  {:>10s} {:>16s} {:>16s} {:>12s}".format(
        "buffer", "operator-driven", "data-driven", "cache hits"))
    for gib in BUFFER_GIB:
        config = SystemConfig(gpu_memory_bytes=4 * GIB,
                              gpu_cache_bytes=int(gib * GIB))
        operator_driven = run_workload(
            database, queries, "gpu_only", config=config, repetitions=10,
        )
        data_driven = run_workload(
            database, queries, "data_driven", config=config, repetitions=10,
        )
        print("  {:>8.2f}G {:>16.3f} {:>16.3f} {:>11.0f}%".format(
            gib,
            operator_driven.seconds,
            data_driven.seconds,
            100 * operator_driven.metrics.cache_hit_rate,
        ))

    print(
        "\nReading: operator-driven placement thrashes whenever the\n"
        "buffer is smaller than the working set — every access evicts\n"
        "the column the next query needs.  Data-driven placement pins\n"
        "whatever fits and degrades gracefully to the CPU for the rest."
    )


if __name__ == "__main__":
    main()
