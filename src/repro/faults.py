"""Deterministic, seed-driven fault injection.

The paper's whole point is *robust* query processing, yet the only
fault the seed simulation models is :class:`DeviceOutOfMemory`.  Real
co-processor stacks also see transient PCIe transfer errors, kernel
launch failures, driver stalls, and full device resets; systems like
Theseus treat surviving them via degraded execution as a first-class
design goal.  Measuring that requires a *deterministic* way to inject
faults — this module provides it.

Design:

* :class:`FaultConfig` — per-fault-class rates plus the retry/breaker
  tuning the resilience layer uses.  Parsed from the CLI ``--faults``
  flag or the ``REPRO_FAULTS`` environment variable
  (``"pcie=0.01,kernel=0.005,seed=42"``; a bare number applies one
  uniform rate to every class).
* :class:`FaultInjector` — one per workload run, holding an independent
  seeded RNG stream *per fault class*.  Each injection site in the
  hardware layer (:mod:`repro.hardware.bus`, ``processor``, ``memory``)
  rolls its class's stream; because the DES executes events in a fixed
  deterministic order, the same seed always produces the same fault
  schedule.  The injector keeps an order-sensitive digest of every
  injected fault so two runs can be compared exactly.

Zero-overhead guarantee: when no injector is installed (the default)
every hook is a single ``is None`` check, and simulated timings and
results are byte-identical to a build without the subsystem.  Faults
may cost time, never correctness: the functional result of every
operator is produced by the same numpy implementations regardless of
how many attempts the simulation needed.
"""

from __future__ import annotations

import hashlib
import os
import random
from collections import Counter
from dataclasses import dataclass, fields, replace
from typing import Callable, Dict, Optional, Union

#: Fault classes the injector can raise, in the (fixed) order their
#: rate fields appear on :class:`FaultConfig`.
FAULT_CLASSES = ("pcie", "kernel", "stall", "heap", "reset")

#: Process-level fault classes injected into real OS worker processes
#: (MorselPool).  Kept separate from the hardware classes above so a
#: uniform hardware rate never implies killing workers, and vice versa.
PROCESS_FAULT_CLASSES = ("crash", "hang", "slowexit", "unlinkrace")

#: Environment variable consulted when the CLI gives no ``--faults``.
FAULTS_ENV = "REPRO_FAULTS"


@dataclass(frozen=True)
class FaultConfig:
    """Injection rates and resilience tuning for one workload run.

    Rates are per *injection opportunity* (one PCIe transfer, one
    kernel submission, one heap allocation), not per second, so a rate
    of 0.01 means roughly one fault per hundred hardware interactions.
    """

    #: transient PCIe transfer corruption (per transfer on a GPU path)
    pcie: float = 0.0
    #: spurious kernel launch failure (per device submission)
    kernel: float = 0.0
    #: driver stall killed by the watchdog (per device submission)
    stall: float = 0.0
    #: spurious heap-pressure spike (per device heap allocation)
    heap: float = 0.0
    #: forced device reset flushing the column cache (per submission)
    reset: float = 0.0
    #: RNG seed; the full fault schedule is a pure function of
    #: (seed, rates, workload)
    seed: int = 7
    #: simulated watchdog interval a stalled kernel burns before failing
    stall_seconds: float = 0.05
    #: transient-fault retries per operator attempt before CPU fallback
    max_retries: int = 3
    #: exponential backoff: base * multiplier**attempt simulated seconds
    backoff_base_seconds: float = 0.002
    backoff_multiplier: float = 2.0
    #: consecutive transient failures that open a device's breaker
    breaker_threshold: int = 3
    #: simulated seconds an open breaker waits before half-opening
    breaker_open_seconds: float = 0.25
    #: concurrent recovery probes admitted while half-open
    breaker_probes: int = 1
    #: worker process killed with os._exit mid-chunk (per pool chunk)
    crash: float = 0.0
    #: worker stops heartbeating mid-chunk; the watchdog kills it
    hang: float = 0.0
    #: worker finishes its chunk, then exits instead of taking more work
    slowexit: float = 0.0
    #: worker unlinks the shared segment and dies, racing pool cleanup
    unlinkrace: float = 0.0
    #: consecutive executions of one chunk a crash directive survives;
    #: 2 deterministically exercises poison-chunk quarantine
    crash_repeats: int = 1
    #: wall-clock seconds an injected hang sleeps (the watchdog should
    #: kill the worker long before this elapses)
    hang_seconds: float = 30.0
    #: wall-clock seconds a slow-exiting worker lingers before dying
    slowexit_seconds: float = 0.05

    def __post_init__(self):
        for name in FAULT_CLASSES + PROCESS_FAULT_CLASSES:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    "fault rate {}={} outside [0, 1]".format(name, rate)
                )
        if self.crash_repeats < 1:
            raise ValueError("crash_repeats must be >= 1")
        if self.hang_seconds < 0 or self.slowexit_seconds < 0:
            raise ValueError("process fault durations must be >= 0")
        if self.stall_seconds < 0:
            raise ValueError("stall_seconds must be >= 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_seconds < 0 or self.backoff_multiplier < 1.0:
            raise ValueError("backoff must be non-negative and growing")
        if self.breaker_threshold < 1 or self.breaker_probes < 1:
            raise ValueError("breaker threshold and probes must be >= 1")
        if self.breaker_open_seconds < 0:
            raise ValueError("breaker_open_seconds must be >= 0")

    # -- constructors ---------------------------------------------------

    @classmethod
    def uniform(cls, rate: float, **overrides) -> "FaultConfig":
        """One rate applied to every *hardware* fault class."""
        values = {name: rate for name in FAULT_CLASSES}
        values.update(overrides)
        return cls(**values)

    @classmethod
    def uniform_process(cls, rate: float, **overrides) -> "FaultConfig":
        """One rate applied to every *process* fault class."""
        values = {name: rate for name in PROCESS_FAULT_CLASSES}
        values.update(overrides)
        return cls(**values)

    @classmethod
    def parse(cls, spec: str) -> "FaultConfig":
        """Parse a ``--faults`` / ``REPRO_FAULTS`` spec string.

        ``"pcie=0.01,kernel=0.005,seed=42"`` sets individual knobs (any
        :class:`FaultConfig` field name is accepted); a bare number
        (``"0.02"``) applies one uniform rate to every fault class.
        """
        spec = spec.strip()
        if not spec:
            raise ValueError("empty fault spec")
        valid = {f.name: f.type for f in fields(cls)}
        int_fields = {"seed", "max_retries", "breaker_threshold",
                      "breaker_probes", "crash_repeats"}
        values: Dict[str, Union[int, float]] = {}
        uniform_rate: Optional[float] = None
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                try:
                    uniform_rate = float(part)
                except ValueError:
                    raise ValueError(
                        "fault spec entry {!r} is neither a rate nor "
                        "key=value".format(part)
                    )
                continue
            key, _, raw = part.partition("=")
            key = key.strip()
            if key not in valid:
                raise ValueError(
                    "unknown fault spec key {!r}; expected one of {}".format(
                        key, ", ".join(sorted(valid))
                    )
                )
            try:
                values[key] = (int(raw) if key in int_fields
                               else float(raw))
            except ValueError:
                raise ValueError(
                    "fault spec {}={!r} is not a number".format(key, raw)
                )
        if uniform_rate is not None:
            for name in FAULT_CLASSES:
                values.setdefault(name, uniform_rate)
        return cls(**values)

    @classmethod
    def from_env(cls) -> Optional["FaultConfig"]:
        """Config from ``$REPRO_FAULTS`` (None when unset/empty)."""
        raw = os.environ.get(FAULTS_ENV, "").strip()
        if not raw:
            return None
        return cls.parse(raw)

    @classmethod
    def coerce(cls, value) -> Optional["FaultConfig"]:
        """Accept None, a spec string, or a ready config."""
        if value is None:
            return None
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        raise TypeError(
            "faults must be None, a spec string, or a FaultConfig; "
            "got {!r}".format(type(value).__name__)
        )

    # -- queries --------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True when any hardware fault class has a nonzero rate."""
        return any(getattr(self, name) > 0.0 for name in FAULT_CLASSES)

    @property
    def process_enabled(self) -> bool:
        """True when any process fault class has a nonzero rate."""
        return any(getattr(self, name) > 0.0
                   for name in PROCESS_FAULT_CLASSES)

    def rates(self) -> Dict[str, float]:
        """Per-class hardware injection rates (for reporting)."""
        return {name: getattr(self, name) for name in FAULT_CLASSES}

    def process_rates(self) -> Dict[str, float]:
        """Per-class process injection rates (for reporting)."""
        return {name: getattr(self, name)
                for name in PROCESS_FAULT_CLASSES}

    def with_seed(self, seed: int) -> "FaultConfig":
        return replace(self, seed=int(seed))


class FaultInjector:
    """Rolls the dice for every hardware injection site.

    One stream per fault class (seeded from ``(seed, class)``) keeps
    the schedule of one class independent of the others' rates: raising
    the PCIe rate does not shift which kernel launches fail.  The DES
    processes events in a deterministic order, so every stream is
    consumed identically across runs with the same seed and workload —
    the determinism gate in CI asserts this by comparing
    :meth:`schedule_digest` across two runs.
    """

    def __init__(self, config: FaultConfig,
                 clock: Optional[Callable[[], float]] = None):
        self.config = config
        self._clock = clock
        self._streams: Dict[str, random.Random] = {
            name: random.Random("{}:{}".format(config.seed, name))
            for name in FAULT_CLASSES
        }
        #: injected fault counts per class and per (class, device)
        self.injected: Counter = Counter()
        self.injected_by_device: Counter = Counter()
        self._digest = hashlib.sha256()

    # -- the injection sites call these ---------------------------------

    def roll(self, fault_class: str, device: str) -> bool:
        """One injection opportunity; True means *inject now*.

        A successful roll is recorded (counter + order-sensitive
        digest) before the hardware raises, so the schedule is
        observable even when a fault is swallowed by a retry.
        """
        rate = getattr(self.config, fault_class)
        if rate <= 0.0:
            return False
        if self._streams[fault_class].random() >= rate:
            return False
        self.injected[fault_class] += 1
        self.injected_by_device[(fault_class, device)] += 1
        now = self._clock() if self._clock is not None else 0.0
        self._digest.update(
            "{}:{}:{:.9f};".format(fault_class, device, now).encode()
        )
        return True

    def fraction(self, fault_class: str) -> float:
        """Deterministic [0, 1) draw from the class stream.

        Used for partial-progress sizing (e.g. how far a PCIe transfer
        got before it failed).  Only consumed after a successful
        :meth:`roll`, so it never shifts the schedule of runs that do
        not inject.
        """
        return self._streams[fault_class].random()

    # -- reporting -------------------------------------------------------

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def schedule_digest(self) -> str:
        """Order-sensitive fingerprint of every injected fault
        (class, device, simulated time) — the determinism gate."""
        return self._digest.hexdigest()

    def summary(self) -> Dict[str, int]:
        """Injected fault counts per class (zero classes omitted)."""
        return {name: count for name, count in sorted(self.injected.items())}


@dataclass(frozen=True)
class ProcessFaultDirective:
    """One planned process fault, shipped to a worker with its chunk.

    Picklable and self-contained: the worker hook needs no access to
    the injector or config to act on it.
    """

    #: one of PROCESS_FAULT_CLASSES
    kind: str
    #: remaining executions of the chunk this directive applies to
    #: (crash only; >1 kills the re-queued chunk again → quarantine)
    repeats: int = 1
    #: wall-clock duration (hang sleep / slow-exit linger)
    seconds: float = 0.0

    def decremented(self) -> "ProcessFaultDirective":
        return replace(self, repeats=self.repeats - 1)


class ProcessFaultInjector:
    """Plans process faults per (query, chunk) — parent side.

    Unlike :class:`FaultInjector`, whose rolls happen at simulated
    injection sites inside the DES, process faults hit *real* OS
    processes whose scheduling is nondeterministic.  Determinism is
    recovered by planning: directives are rolled in the parent when a
    query's chunks are enumerated (a fixed order), never at dispatch
    time, so the schedule is a pure function of (seed, rates, query
    sequence) regardless of which worker runs what when.  The digest
    folds (class, query, chunk index) — no wall-clock time — so two
    same-seed runs compare equal.
    """

    def __init__(self, config: FaultConfig):
        self.config = config
        self._streams: Dict[str, random.Random] = {
            name: random.Random("{}:proc:{}".format(config.seed, name))
            for name in PROCESS_FAULT_CLASSES
        }
        #: injected fault counts per class and per (class, query)
        self.injected: Counter = Counter()
        self.injected_by_query: Counter = Counter()
        self._digest = hashlib.sha256()

    def plan_chunk(self, query: str,
                   chunk_index: int) -> Optional[ProcessFaultDirective]:
        """Roll every class for one chunk; at most one directive wins.

        Classes roll in PROCESS_FAULT_CLASSES order and the first hit
        takes the chunk (later streams still advance, keeping each
        class's schedule independent of the others' rates).
        """
        directive: Optional[ProcessFaultDirective] = None
        for name in PROCESS_FAULT_CLASSES:
            rate = getattr(self.config, name)
            if rate <= 0.0:
                continue
            if self._streams[name].random() >= rate:
                continue
            if directive is not None:
                continue
            if name == "crash":
                directive = ProcessFaultDirective(
                    "crash", repeats=self.config.crash_repeats)
            elif name == "hang":
                directive = ProcessFaultDirective(
                    "hang", seconds=self.config.hang_seconds)
            elif name == "slowexit":
                directive = ProcessFaultDirective(
                    "slowexit", seconds=self.config.slowexit_seconds)
            else:
                directive = ProcessFaultDirective("unlinkrace")
            self.injected[name] += 1
            self.injected_by_query[(name, query)] += 1
            self._digest.update(
                "{}:{}:{};".format(name, query, chunk_index).encode()
            )
        return directive

    # -- reporting -------------------------------------------------------

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def schedule_digest(self) -> str:
        """Order-sensitive fingerprint of every planned process fault
        (class, query, chunk index) — the determinism gate."""
        return self._digest.hexdigest()

    def summary(self) -> Dict[str, int]:
        """Planned fault counts per class (zero classes omitted)."""
        return {name: count for name, count in sorted(self.injected.items())}

    def report(self) -> Dict[str, Dict[str, int]]:
        """Per-query fault report: query -> {class: count}."""
        out: Dict[str, Dict[str, int]] = {}
        for (name, query), count in sorted(self.injected_by_query.items()):
            out.setdefault(query, {})[name] = count
        return out


__all__ = [
    "FAULT_CLASSES",
    "FAULTS_ENV",
    "PROCESS_FAULT_CLASSES",
    "FaultConfig",
    "FaultInjector",
    "ProcessFaultDirective",
    "ProcessFaultInjector",
]
