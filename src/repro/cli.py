"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``figures [figNN ...] [--fast] [--jobs N]``
    Regenerate (all or selected) figures of the paper and print the
    series each one plots; ``--jobs N`` fans each figure's grid over N
    worker processes (tables are identical for any N).
``run --benchmark ssb --strategy data_driven_chopping ...``
    Run a full benchmark workload under one placement strategy and
    print the measurement summary.
``query "<sql>" --benchmark ssb ...``
    Execute ad-hoc SQL against a generated benchmark database.
``pool [--faults crash=0.1,...] [--jobs N]``
    Chaos-soak the self-healing shared-memory morsel pool and report
    byte identity, recovery counters, and the fault-schedule digest.
``serve [--rate R --duration S --arrivals diurnal ...]``
    Run the simulated machine as a long-lived multi-tenant service:
    streaming arrivals over SLO classes, fair-share admission,
    concurrent append epochs, optional chaos — and print the
    per-class SLO ledger.
``strategies``
    List the available placement strategies.
``compress --benchmark ssb``
    Show the per-column compression report for a generated database.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.core import STRATEGY_NAMES
from repro.harness import experiments as E
from repro.harness.parallel import set_default_jobs
from repro.harness.runner import run_workload
from repro.hardware import SystemConfig
from repro.hardware.calibration import GIB
from repro.workloads import sql_workload, ssb, tpch

#: figure id -> (driver, default kwargs, --fast kwargs)
FIGURE_DRIVERS = {
    "fig01": (E.figure01, {"scale_factor": 20, "repetitions": 5},
              {"scale_factor": 20, "repetitions": 1}),
    "fig02": (E.figure02, {"repetitions": 10}, {"repetitions": 2}),
    "fig03": (E.figure03, {"total_queries": 100},
              {"total_queries": 30, "users": (1, 7, 20)}),
    "fig05": (E.figure05, {"repetitions": 10}, {"repetitions": 2}),
    "fig06": (E.figure06, {"repetitions": 10}, {"repetitions": 2}),
    "fig07": (E.figure07, {"total_queries": 100},
              {"total_queries": 30, "users": (1, 7, 20)}),
    "fig09": (E.figure09, {"total_queries": 100},
              {"total_queries": 30, "users": (1, 7, 20)}),
    "fig12": (E.figure12, {"total_queries": 100},
              {"total_queries": 30, "users": (1, 7, 20)}),
    "fig13": (E.figure13, {"total_queries": 100},
              {"total_queries": 30, "users": (1, 7, 20)}),
    "fig14a": (E.figure14, {"benchmark": "ssb", "repetitions": 2},
               {"benchmark": "ssb", "repetitions": 1,
                "scale_factors": (5, 15, 30)}),
    "fig14b": (E.figure14, {"benchmark": "tpch", "repetitions": 2},
               {"benchmark": "tpch", "repetitions": 1,
                "scale_factors": (5, 15, 30)}),
    "fig15a": (E.figure15, {"benchmark": "ssb", "repetitions": 2},
               {"benchmark": "ssb", "repetitions": 1,
                "scale_factors": (5, 15, 30)}),
    "fig15b": (E.figure15, {"benchmark": "tpch", "repetitions": 2},
               {"benchmark": "tpch", "repetitions": 1,
                "scale_factors": (5, 15, 30)}),
    "fig16": (E.figure16, {}, {}),
    "fig17": (E.figure17, {"repetitions": 3}, {"repetitions": 1}),
    "fig18a": (E.figure18, {"benchmark": "ssb", "repetitions": 3},
               {"benchmark": "ssb", "repetitions": 1, "users": (1, 20)}),
    "fig18b": (E.figure18, {"benchmark": "tpch", "repetitions": 3},
               {"benchmark": "tpch", "repetitions": 1, "users": (1, 20)}),
    "fig19": (E.figure19, {"benchmark": "ssb", "repetitions": 3},
              {"benchmark": "ssb", "repetitions": 1, "users": (1, 20)}),
    "fig20": (E.figure20, {"repetitions": 3},
              {"repetitions": 1, "users": (1, 20)}),
    "fig21": (E.figure21, {"repetitions": 2}, {"repetitions": 1}),
    "fig22": (E.figure22, {"repetitions": 3}, {"repetitions": 1}),
    "fig23": (E.figure23, {"repetitions": 3}, {"repetitions": 1}),
    "fig24": (E.figure24, {"repetitions": 2},
              {"repetitions": 1, "fractions": (0.0, 0.6, 1.0)}),
    "fig25": (E.figure25, {"repetitions": 2},
              {"repetitions": 1, "users": (1, 20)}),
    "multigpu": (E.multi_gpu_scaling, {"repetitions": 2},
                 {"repetitions": 1, "gpu_counts": (1, 4)}),
    "chaos": (E.chaos_sweep, {"repetitions": 2},
              {"repetitions": 1, "fault_rates": (0.0, 0.02, 0.1)}),
    "overlap": (E.overlap_sweep, {"repetitions": 2},
                {"repetitions": 1, "users": (1, 4), "scale_factor": 5}),
    "overload": (E.overload_sweep, {"repetitions": 2},
                 {"repetitions": 1, "loads": (1, 4), "scale_factor": 5}),
}


def _database(benchmark: str, scale_factor: float, data_scale: float):
    module = {"ssb": ssb, "tpch": tpch}[benchmark]
    return module.generate(scale_factor, data_scale=data_scale)


def cmd_figures(args) -> int:
    figures = args.figures or list(FIGURE_DRIVERS)
    for figure_id in figures:
        if figure_id not in FIGURE_DRIVERS:
            print("unknown figure {!r}; choose from: {}".format(
                figure_id, ", ".join(FIGURE_DRIVERS)))
            return 1
    if args.jobs is not None:
        try:
            set_default_jobs(args.jobs)
        except ValueError as error:
            print("--jobs: {}".format(error))
            return 1
    start = time.time()
    for figure_id in figures:
        driver, default_kwargs, fast_kwargs = FIGURE_DRIVERS[figure_id]
        kwargs = fast_kwargs if args.fast else default_kwargs
        print("=" * 72)
        driver(**kwargs).print()
    print("done in {:.1f}s".format(time.time() - start))
    return 0


def _resolve_faults(args):
    """--faults beats $REPRO_FAULTS; empty/absent means no injection."""
    from repro.faults import FaultConfig

    if getattr(args, "faults", None):
        return FaultConfig.parse(args.faults)
    return FaultConfig.from_env()


def _resolve_lifecycle(args):
    """Build a LifecycleConfig from the run flags (None = layer off)."""
    from repro.engine.execution import LifecycleConfig

    config = LifecycleConfig(
        max_inflight=args.max_inflight,
        overload_policy=args.overload_policy,
        deadline_seconds=args.deadline,
        hedge_factor=args.hedge_factor,
    )
    return config if config.enabled else None


def cmd_run(args) -> int:
    database = _database(args.benchmark, args.scale_factor, args.data_scale)
    module = {"ssb": ssb, "tpch": tpch}[args.benchmark]
    queries = module.workload(database)
    config_kwargs = dict(
        gpu_count=args.gpus,
        gpu_memory_bytes=int(args.gpu_memory_gib * GIB),
        gpu_cache_bytes=int(args.gpu_cache_gib * GIB),
        copy_engine=args.copy_engine,
        morsels=args.morsels,
        morsel_rows=args.morsel_rows,
        split=args.split or args.split_ratio is not None or args.coupled,
        split_ratio=args.split_ratio,
        split_rounds=args.split_rounds,
    )
    config = (SystemConfig.coupled_gpu(**config_kwargs) if args.coupled
              else SystemConfig(**config_kwargs))
    faults = _resolve_faults(args)
    lifecycle = _resolve_lifecycle(args)
    run = run_workload(
        database, queries, args.strategy, config=config,
        users=args.users, repetitions=args.repetitions,
        warm_cache=not args.cold, trace=args.trace,
        faults=faults, lifecycle=lifecycle,
    )
    print("workload: {} SF {} x{} repetitions, {} users, strategy {}".format(
        args.benchmark, args.scale_factor, args.repetitions, args.users,
        args.strategy))
    for key, value in run.metrics.summary().items():
        print("  {:22s} {:.6g}".format(key, value))
    if faults is not None and faults.enabled:
        print("  fault injection (seed {}):".format(faults.seed))
        print("    injected: {} ({})".format(
            run.faults_injected,
            ", ".join("{}={}".format(k, v)
                      for k, v in sorted((run.fault_classes or {}).items()))
            or "none",
        ))
        for key, value in run.metrics.fault_summary().items():
            print("    {:20s} {:.6g}".format(key, value))
        print("    schedule digest: {}".format(run.fault_digest))
    if lifecycle is not None:
        print("  query lifecycle ({}):".format(", ".join(
            part for part, on in (
                ("admission", lifecycle.admission_enabled),
                ("deadlines", lifecycle.deadlines_enabled),
                ("hedging", lifecycle.hedging_enabled),
            ) if on
        )))
        for key, value in run.metrics.lifecycle_summary().items():
            print("    {:22s} {:.6g}".format(key, value))
    if args.morsels:
        print("  fused morsel execution:")
        for key, value in run.metrics.morsel_summary().items():
            print("    {:22s} {:.6g}".format(key, value))
    if config.split:
        print("  split execution{}:".format(
            " (coupled GPU)" if config.coupled else ""))
        for key, value in run.metrics.split_summary().items():
            print("    {:26s} {:.6g}".format(key, value))
        for reason, count in sorted(
                run.metrics.split_declines.items()):
            print("    declined[{}]: {}".format(reason, count))
    print("  per-query mean latencies:")
    for name, latency in run.metrics.latencies_by_query().items():
        print("    {:8s} {:.4f}s".format(name, latency))
    if run.trace is not None:
        print()
        print(run.trace.timeline_text())
        print(run.trace.summary())
    return 0


def cmd_pool(args) -> int:
    """Chaos-soak the self-healing morsel pool and report identity."""
    from repro.engine.execution import execute_functional
    from repro.harness.parallel import MorselPool
    from repro.storage import shm

    if not shm.available():
        print("shared memory is not available on this platform")
        return 1
    database = _database(args.benchmark, args.scale_factor, args.data_scale)
    module = {"ssb": ssb, "tpch": tpch}[args.benchmark]
    queries = module.workload(database)
    reference = {
        query.name: execute_functional(
            query.instantiate(), database).payload.row_tuples()
        for query in queries
    }
    faults = _resolve_faults(args)
    start = time.time()
    with MorselPool(database, queries, workload=args.benchmark,
                    jobs=args.jobs, faults=faults,
                    heartbeat_seconds=args.heartbeat,
                    max_restarts=args.max_restarts) as pool:
        pool.warm()
        results = pool.run_queries()
        elapsed = time.time() - start
        identical = all(
            results[name].payload.row_tuples() == reference[name]
            for name in reference
        )
        print("pool: {} x{} jobs, {} queries in {:.2f}s".format(
            args.benchmark, pool.jobs, len(queries), elapsed))
        print("  byte-identical to sequential: {}".format(identical))
        print("  fallbacks: {}  degraded: {}".format(
            pool.fallbacks, pool.degraded or "no"))
        for key in sorted(pool.counters):
            print("  {:22s} {}".format(key, pool.counters[key]))
        summary = pool.process_fault_summary()
        if summary:
            print("  process faults planned (seed {}):".format(faults.seed))
            for name, count in sorted(summary.items()):
                print("    {:20s} {}".format(name, count))
            print("    schedule digest: {}".format(
                pool.process_fault_digest))
            for query, classes in sorted(
                    pool.process_fault_report().items()):
                print("    {:8s} {}".format(query, ", ".join(
                    "{}={}".format(k, v)
                    for k, v in sorted(classes.items()))))
        if pool.orphans_reaped:
            print("  orphaned segments reaped: {}".format(
                pool.orphans_reaped))
    leaked = shm.leaked_segments()
    print("  leaked segments: {}".format(len(leaked)))
    return 0 if identical and not leaked else 1


def cmd_serve(args) -> int:
    """Run the machine as a multi-tenant service; print the ledger."""
    from repro.harness.service import ServiceConfig, run_service

    database = _database(args.benchmark, args.scale_factor, args.data_scale)
    service = ServiceConfig(
        duration_seconds=args.duration,
        arrivals=args.arrivals,
        rate=args.rate,
        tenants_per_class=args.tenants,
        max_inflight=args.max_inflight,
        deadline_seconds=args.deadline,
        latency_target_seconds=args.target,
        hedge_factor=args.hedge_factor,
        mutation_interval_seconds=args.mutation_interval,
        append_fraction=args.append_fraction,
        pool_chaos=args.pool_chaos,
        validate=not args.no_validate,
        seed=args.seed,
    )
    start = time.time()
    result = run_service(
        database, workload=args.benchmark, strategy=args.strategy,
        service=service, faults=_resolve_faults(args),
    )
    elapsed = time.time() - start
    print("service: {} x{:.0f}s simulated {} arrivals @ {:g}/s, "
          "strategy {} ({:.1f}s wall)".format(
              args.benchmark, args.duration, args.arrivals, args.rate,
              args.strategy, elapsed))
    print("  arrivals {}  completed {}  shed {}  degraded {}  "
          "cancelled {}".format(
              result.arrivals, result.completed, result.shed,
              result.degraded, result.cancelled))
    print("  epochs advanced: {}  snapshots retired: {}".format(
        result.epochs, result.metrics.snapshots_retired))
    print("  conservation (arrivals == completed+shed+cancelled): "
          "{}".format(result.conserved()))
    if service.validate:
        print("  byte-identical to reference: {}".format(result.identical))
        for line in result.divergences[:5]:
            print("    DIVERGED {}".format(line))
    if result.faults_injected:
        print("  faults injected: {} (digest {})".format(
            result.faults_injected, result.fault_digest))
    print("  per-class SLO ledger:")
    for cls, row in sorted(result.ledger.items()):
        print("    {}:".format(cls))
        for key, value in row.items():
            print("      {:18s} {:.6g}".format(key, value))
    print("  per-tenant ledger:")
    for tenant, row in sorted(result.tenant_ledger.items()):
        print("    {:16s} arrivals {:.0f} completed {:.0f} shed {:.0f} "
              "p99 {:.4g}s".format(
                  tenant, row.get("arrivals", 0.0),
                  row.get("completed", 0.0), row.get("shed", 0.0),
                  row.get("p99", 0.0)))
    if result.tenant_faults:
        print("  chaos blame per tenant:")
        for tenant, row in sorted(result.tenant_faults.items()):
            print("    {:16s} {}".format(tenant, ", ".join(
                "{}={:g}".format(k, v) for k, v in sorted(row.items()))))
    summary = result.metrics.service_summary()
    print("  service totals: {}".format(", ".join(
        "{}={:g}".format(k, v) for k, v in summary.items())))
    ok = result.conserved() and (result.identical or not service.validate)
    return 0 if ok else 1


def cmd_query(args) -> int:
    database = _database(args.benchmark, args.scale_factor, args.data_scale)
    queries = sql_workload(database, {"adhoc": args.sql})
    run = run_workload(database, queries, args.strategy,
                       collect_results=True, faults=_resolve_faults(args))
    payload = run.results["adhoc"]
    for row in payload.row_tuples()[: args.limit]:
        print(row)
    print("[{} rows; {:.4f}s simulated; PCIe {:.4f}s; {} aborts]".format(
        len(payload), run.seconds, run.metrics.transfer_seconds,
        run.metrics.aborts))
    return 0


def cmd_report(args) -> int:
    from repro.harness.report import generate_report

    print(generate_report(fast=not args.full))
    return 0


def cmd_strategies(_args) -> int:
    for name in STRATEGY_NAMES:
        print(name)
    return 0


def cmd_compress(args) -> int:
    from repro.storage.compression import (
        compress_database,
        compression_summary,
    )

    database = _database(args.benchmark, args.scale_factor, args.data_scale)
    before = database.nominal_bytes
    report = compress_database(database)
    after = database.nominal_bytes
    print(compression_summary(report))
    print("total: {:.2f} GiB -> {:.2f} GiB ({:.2f}x)".format(
        before / GIB, after / GIB, before / max(after, 1)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Robust Query Processing in "
                    "Co-Processor-accelerated Databases' (SIGMOD 2016).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="regenerate paper figures")
    figures.add_argument("figures", nargs="*",
                         help="figure ids (default: all)")
    figures.add_argument("--fast", action="store_true",
                         help="reduced sweep sizes")
    figures.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="worker processes per figure grid "
                              "(default: $REPRO_JOBS or sequential)")
    figures.set_defaults(func=cmd_figures)

    def add_common(p):
        p.add_argument("--benchmark", choices=("ssb", "tpch"),
                       default="ssb")
        p.add_argument("--scale-factor", type=float, default=10)
        p.add_argument("--data-scale", type=float, default=1e-4)
        p.add_argument("--strategy", choices=STRATEGY_NAMES,
                       default="data_driven_chopping")

    runner = sub.add_parser("run", help="run a benchmark workload")
    add_common(runner)
    runner.add_argument("--users", type=int, default=1)
    runner.add_argument("--repetitions", type=int, default=2)
    runner.add_argument("--gpus", type=int, default=1)
    runner.add_argument("--gpu-memory-gib", type=float, default=4.0)
    runner.add_argument("--gpu-cache-gib", type=float, default=1.5)
    runner.add_argument("--cold", action="store_true",
                        help="start with a cold device cache")
    runner.add_argument("--copy-engine", action="store_true",
                        help="asynchronous copy engine: per-device duplex "
                             "DMA channels, coalescing, and prefetch "
                             "(default: serialized single-channel bus)")
    runner.add_argument("--morsels", action="store_true",
                        help="fused morsel-driven execution: scan/join/"
                             "aggregate chains run as per-morsel pipelines, "
                             "byte-identical to the reference engine "
                             "(default: operator-at-a-time)")
    runner.add_argument("--morsel-rows", type=int, default=None,
                        metavar="N",
                        help="rows per morsel (default: $REPRO_MORSEL_ROWS "
                             "or 65536)")
    runner.add_argument("--split", action="store_true",
                        help="intra-operator co-processing: divide each "
                             "eligible operator between the CPU and a GPU "
                             "by a HyPE-chosen ratio, rebalanced "
                             "mid-operator (default: off)")
    runner.add_argument("--split-ratio", type=float, default=None,
                        metavar="R",
                        help="fixed GPU work fraction in [0, 1] for split "
                             "execution (default: cost-model chosen); "
                             "implies --split")
    runner.add_argument("--split-rounds", type=int, default=4, metavar="N",
                        help="rebalancing rounds per split operator "
                             "(default: 4)")
    runner.add_argument("--coupled", action="store_true",
                        help="coupled/integrated-GPU preset per arXiv "
                             "1307.1955: shared physical memory, no PCIe "
                             "staging cost; implies --split")
    runner.add_argument("--trace", action="store_true",
                        help="print the operator timeline")
    runner.add_argument("--faults", default=None, metavar="SPEC",
                        help="deterministic fault injection, e.g. "
                             "'pcie=0.01,kernel=0.005,seed=42' or a bare "
                             "uniform rate '0.02' (default: $REPRO_FAULTS)")
    runner.add_argument("--max-inflight", type=int, default=None,
                        metavar="N",
                        help="admission control: at most N queries in "
                             "flight (default: unlimited)")
    runner.add_argument("--overload-policy",
                        choices=("queue", "shed", "degrade-to-cpu"),
                        default="queue",
                        help="what happens to queries beyond the "
                             "in-flight limit (default: queue)")
    runner.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="per-query deadline in simulated seconds; "
                             "late queries are cancelled cooperatively")
    runner.add_argument("--hedge-factor", type=float, default=None,
                        metavar="K",
                        help="hedge a straggling GPU operator onto the "
                             "CPU once it exceeds K times its runtime "
                             "estimate (default: off)")
    runner.set_defaults(func=cmd_run)

    pool = sub.add_parser(
        "pool", help="chaos-soak the self-healing morsel pool"
    )
    pool.add_argument("--benchmark", choices=("ssb", "tpch"), default="ssb")
    pool.add_argument("--scale-factor", type=float, default=1)
    pool.add_argument("--data-scale", type=float, default=1e-2)
    pool.add_argument("--jobs", type=int, default=None, metavar="N",
                      help="worker processes (default: $REPRO_JOBS or "
                           "cpu count)")
    pool.add_argument("--faults", default=None, metavar="SPEC",
                      help="process-fault spec, e.g. "
                           "'crash=0.1,hang=0.05,seed=7' "
                           "(classes: crash, hang, slowexit, unlinkrace)")
    pool.add_argument("--heartbeat", type=float, default=None,
                      metavar="SECONDS",
                      help="hang-watchdog heartbeat deadline "
                           "(default: 2.0 under chaos, off otherwise)")
    pool.add_argument("--max-restarts", type=int, default=16, metavar="N",
                      help="worker respawn budget before the pool "
                           "degrades to sequential (default: 16)")
    pool.set_defaults(func=cmd_pool)

    serve = sub.add_parser(
        "serve", help="run the machine as a multi-tenant service"
    )
    serve.add_argument("--benchmark", choices=("ssb", "tpch"),
                       default="ssb")
    serve.add_argument("--scale-factor", type=float, default=1)
    serve.add_argument("--data-scale", type=float, default=1e-2)
    serve.add_argument("--strategy", choices=STRATEGY_NAMES,
                       default="critical_path")
    serve.add_argument("--duration", type=float, default=20.0,
                       metavar="SECONDS",
                       help="simulated seconds of arrival traffic")
    serve.add_argument("--arrivals", choices=("poisson", "diurnal"),
                       default="poisson")
    serve.add_argument("--rate", type=float, default=50.0, metavar="QPS",
                       help="aggregate mean arrival rate "
                            "(queries per simulated second)")
    serve.add_argument("--tenants", type=int, default=2, metavar="N",
                       help="tenants per SLO class (default: 2)")
    serve.add_argument("--max-inflight", type=int, default=4, metavar="N")
    serve.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="base per-query deadline; each SLO class "
                            "multiplies it (premium 4x, standard 2x)")
    serve.add_argument("--target", type=float, default=None,
                       metavar="SECONDS",
                       help="base p99 latency target for the attainment "
                            "ledger (same per-class multipliers)")
    serve.add_argument("--hedge-factor", type=float, default=None,
                       metavar="K")
    serve.add_argument("--mutation-interval", type=float, default=None,
                       metavar="SECONDS",
                       help="append-batch cadence in simulated seconds "
                            "(default: no concurrent mutation)")
    serve.add_argument("--append-fraction", type=float, default=0.05,
                       metavar="F")
    serve.add_argument("--pool-chaos", action="store_true",
                       help="cross-check each append epoch through the "
                            "self-healing process pool under chaos")
    serve.add_argument("--no-validate", action="store_true",
                       help="skip reference-engine identity checks")
    serve.add_argument("--seed", type=int, default=11)
    serve.add_argument("--faults", default=None, metavar="SPEC",
                       help="deterministic fault injection spec "
                            "(default: $REPRO_FAULTS)")
    serve.set_defaults(func=cmd_serve)

    query = sub.add_parser("query", help="run ad-hoc SQL")
    query.add_argument("sql")
    add_common(query)
    query.add_argument("--limit", type=int, default=20)
    query.add_argument("--faults", default=None, metavar="SPEC",
                       help="deterministic fault injection spec "
                            "(default: $REPRO_FAULTS)")
    query.set_defaults(func=cmd_query)

    strategies = sub.add_parser("strategies",
                                help="list placement strategies")
    strategies.set_defaults(func=cmd_strategies)

    compress = sub.add_parser("compress",
                              help="show the compression report")
    add_common(compress)
    compress.set_defaults(func=cmd_compress)

    report = sub.add_parser(
        "report", help="regenerate the paper-vs-measured claim table"
    )
    report.add_argument("--full", action="store_true",
                        help="larger sweeps (slower, tighter numbers)")
    report.set_defaults(func=cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
