"""Zero-copy database sharing via POSIX shared memory.

``harness/parallel.py`` historically shipped work to worker processes
by *pickling* — either whole databases (fork-inherited, then copied on
write) or by regenerating the dataset per process.  Both make the
"parallel" grid slower than sequential for any real data size.  This
module exports a database's column arrays **once** into a single
:class:`multiprocessing.shared_memory.SharedMemory` segment and hands
workers a small picklable :class:`ShmManifest`; attaching maps the
segment and wraps read-only numpy views around the same physical pages
— no copies, no pickling of array data, O(columns) attach time.

Lifecycle:

* :func:`export_database` lays out every column back-to-back in one
  segment and returns the manifest.  Exports are memoised per database
  object, registered with :mod:`repro.engine.caches` (so
  ``clear_database_caches`` unlinks them), and unlinked at interpreter
  exit as a fallback.
* :func:`attach_database` (worker side) opens the segment by name and
  rebuilds an equivalent :class:`~repro.storage.Database` whose column
  ``values`` are read-only views into shared pages.  The attach is
  unregistered from :mod:`multiprocessing.resource_tracker` so a worker
  exiting cannot destroy a segment the parent still owns.
* :func:`detach_all` closes a process's attachments (used by tests; a
  worker exiting cleans up via the same atexit hook).

Only the exporting process ever unlinks.  Dictionaries travel in the
manifest (they are small python lists); per-column access statistics
are *not* shared — each process records its own.
"""

from __future__ import annotations

import atexit
import os
import struct
import zlib
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Set, Tuple
from weakref import WeakValueDictionary

import numpy as np

from repro.engine import caches
from repro.storage.column import Column
from repro.storage.database import Database
from repro.storage.table import Table
from repro.storage.types import ColumnType

try:  # stdlib since 3.8; guarded for exotic platforms without shm
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None
    resource_tracker = None

_ALIGN = 64  # cache-line align every column within the segment

#: fixed-size segment header: magic, epoch, payload bytes, creator pid.
#: Validated on attach so a stale manifest (pointing at a recycled or
#: re-exported segment) fails loudly instead of serving wrong bytes.
_MAGIC = b"REPROSHM"
_HEADER_FMT = "<8sQQQ"
_HEADER_SIZE = _ALIGN  # struct needs 32 bytes; pad to one cache line

#: segment names are self-describing (``repro-<pid>-<epoch>-<salt>``) so
#: orphan reaping can tell whether the creating process is still alive
#: without any side-channel registry.
_NAME_PREFIX = "repro-"

#: environment toggle for per-column checksum verification on attach
VERIFY_ENV = "REPRO_SHM_VERIFY"

#: export/attach accounting (surfaced by MetricsCollector)
stats = {
    "exports": 0,
    "attaches": 0,
    "exported_bytes": 0,
    "attach_seconds": 0.0,
    "integrity_failures": 0,
    "verified_columns": 0,
    "orphans_reaped": 0,
}


def reset_stats() -> None:
    stats["exports"] = 0
    stats["attaches"] = 0
    stats["exported_bytes"] = 0
    stats["attach_seconds"] = 0.0
    stats["integrity_failures"] = 0
    stats["verified_columns"] = 0
    stats["orphans_reaped"] = 0


class ShmIntegrityError(RuntimeError):
    """A segment failed header or checksum validation on attach."""


def verify_enabled() -> bool:
    """True unless ``REPRO_SHM_VERIFY=0`` disables checksum verification."""
    return os.environ.get(VERIFY_ENV, "1") != "0"


def available() -> bool:
    """True when this platform supports shared-memory export."""
    return shared_memory is not None


def _tracker_pid() -> Optional[int]:
    """Pid of this process's resource-tracker daemon (None if unknown)."""
    if resource_tracker is None:
        return None
    return getattr(resource_tracker._resource_tracker, "_pid", None)


@dataclass(frozen=True)
class ColumnSpec:
    """Where one column lives inside the segment (picklable)."""

    table: str
    name: str
    ctype: str  # ColumnType value
    dtype: str
    offset: int
    rows: int
    nominal_rows: int
    dictionary: Optional[Tuple[str, ...]] = None
    compression: Optional[object] = None
    #: crc32 of the column's bytes at export time (0 = unchecked)
    checksum: int = 0


@dataclass(frozen=True)
class ShmManifest:
    """Everything a worker needs to reattach a database (picklable)."""

    shm_name: str
    database_name: str
    total_bytes: int
    #: pid of the exporting process's resource-tracker daemon; workers
    #: that share it (fork) must NOT unregister the segment, workers
    #: with their own tracker (spawn) must (see attach_database)
    tracker_pid: Optional[int] = None
    #: export generation; attach rejects a manifest whose epoch does
    #: not match the segment header (stale-manifest detection)
    epoch: int = 0
    #: pid of the exporting process (orphan reaping probes it)
    created_pid: int = 0
    #: table name -> explicit nominal row count (None = unscaled)
    table_nominal_rows: Dict[str, Optional[int]] = field(default_factory=dict)
    columns: Tuple[ColumnSpec, ...] = ()


class _Export:
    """A live export: the owning segment plus its manifest."""

    __slots__ = ("shm", "manifest")

    def __init__(self, shm, manifest):
        self.shm = shm
        self.manifest = manifest

    def unlink(self) -> None:
        try:
            self.shm.close()
            self.shm.unlink()
        except (FileNotFoundError, OSError):  # already gone
            pass
        _created_names.discard(self.manifest.shm_name)


#: id(database) -> _Export; the WeakValueDictionary below notices when
#: the database object itself dies so the id can be reclaimed safely.
_exports: Dict[int, _Export] = {}
_export_owners: "WeakValueDictionary[int, Database]" = WeakValueDictionary()

#: segments this process has *attached* (worker side): name -> shm
_attached: Dict[str, object] = {}

#: every segment name this process ever created and has not yet
#: unlinked — the leak-check registry consulted by leaked_segments()
_created_names: Set[str] = set()

#: (name, epoch) pairs already checksum-verified in this process
_verified: Set[Tuple[str, int]] = set()

#: monotonically increasing export generation for this process
_epoch = 0


def _next_epoch() -> int:
    global _epoch
    _epoch += 1
    return _epoch


def _segment_path(name: str) -> str:
    return os.path.join("/dev/shm", name.lstrip("/"))


def segment_exists(name: str) -> bool:
    """True when the named segment is still linked in the filesystem."""
    return os.path.exists(_segment_path(name))


def leaked_segments() -> List[str]:
    """Segments this process created that outlive their export.

    A name still on disk whose :class:`_Export` is gone was leaked —
    e.g. an abnormal exit path skipped ``invalidate``.  Live exports
    are not leaks.
    """
    live = {export.manifest.shm_name for export in _exports.values()}
    return sorted(
        name for name in _created_names
        if name not in live and segment_exists(name)
    )


def reap_orphans() -> int:
    """Unlink segments whose creating process is dead (pool startup).

    Only names matching our ``repro-<pid>-...`` pattern are touched;
    a pid that no longer exists (or that we cannot signal and is not
    ours) marks the segment as orphaned.  Returns the reap count.
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # non-Linux: nothing to scan
        return 0
    reaped = 0
    try:
        names = os.listdir(shm_dir)
    except OSError:  # pragma: no cover - scan denied
        return 0
    for name in names:
        if not name.startswith(_NAME_PREFIX):
            continue
        parts = name.split("-")
        try:
            pid = int(parts[1])
        except (IndexError, ValueError):
            continue
        if pid == os.getpid():
            continue  # our own live exports are reaped via invalidate
        try:
            os.kill(pid, 0)
            continue  # creator still alive
        except ProcessLookupError:
            pass  # creator is gone: orphan
        except PermissionError:
            continue  # alive, owned by someone else
        try:
            os.unlink(os.path.join(shm_dir, name))
            reaped += 1
        except OSError:  # pragma: no cover - raced another reaper
            continue
    stats["orphans_reaped"] += reaped
    return reaped


def export_database(database: Database) -> ShmManifest:
    """Export ``database``'s columns into one shared segment (memoised).

    Returns the picklable manifest to hand to worker processes.
    """
    if shared_memory is None:
        raise RuntimeError("shared memory is not available on this platform")
    _reap_dead_exports()
    export = _exports.get(id(database))
    if export is not None:
        return export.manifest

    specs: List[ColumnSpec] = []
    offset = _HEADER_SIZE
    layout: List[Tuple[Column, int]] = []
    for table in database.tables:
        for column in table.columns:
            offset = -(-offset // _ALIGN) * _ALIGN
            layout.append((column, offset))
            offset += column.values.nbytes
    total = offset

    epoch = _next_epoch()
    shm = _create_segment(epoch, total)
    struct.pack_into(_HEADER_FMT, shm.buf, 0,
                     _MAGIC, epoch, total, os.getpid())
    for column, start in layout:
        values = np.ascontiguousarray(column.values)
        view = np.ndarray(values.shape, dtype=values.dtype,
                          buffer=shm.buf, offset=start)
        view[:] = values
        specs.append(ColumnSpec(
            table=column.table,
            name=column.name,
            ctype=column.ctype.value,
            dtype=values.dtype.str,
            offset=start,
            rows=len(values),
            nominal_rows=column.nominal_rows,
            dictionary=(tuple(column.dictionary)
                        if column.dictionary is not None else None),
            compression=column.compression,
            checksum=zlib.crc32(values.tobytes()),
        ))
    manifest = ShmManifest(
        shm_name=shm.name,
        database_name=database.name,
        total_bytes=total,
        tracker_pid=_tracker_pid(),
        epoch=epoch,
        created_pid=os.getpid(),
        table_nominal_rows={
            table.name: table._nominal_rows for table in database.tables
        },
        columns=tuple(specs),
    )
    _exports[id(database)] = _Export(shm, manifest)
    _export_owners[id(database)] = database
    _created_names.add(shm.name)
    stats["exports"] += 1
    stats["exported_bytes"] += total
    return manifest


def _create_segment(epoch: int, total: int):
    """Create a self-describing named segment (retrying collisions)."""
    for salt in range(1 << 16):
        name = "{}{}-{}-{:x}".format(_NAME_PREFIX, os.getpid(), epoch, salt)
        try:
            return shared_memory.SharedMemory(
                create=True, size=total, name=name)
        except FileExistsError:
            continue
    raise RuntimeError("could not allocate a unique shm segment name")


def _validate_segment(shm, manifest: ShmManifest) -> None:
    """Header + per-column checksum validation (attach side)."""
    if len(shm.buf) < _HEADER_SIZE:
        raise ShmIntegrityError(
            "segment {} too small for header".format(manifest.shm_name))
    magic, epoch, total, _pid = struct.unpack_from(_HEADER_FMT, shm.buf, 0)
    if magic != _MAGIC:
        raise ShmIntegrityError(
            "segment {} has bad magic {!r}".format(manifest.shm_name, magic))
    if epoch != manifest.epoch or total != manifest.total_bytes:
        raise ShmIntegrityError(
            "stale manifest for {}: manifest epoch {} / {} bytes, segment "
            "epoch {} / {} bytes".format(
                manifest.shm_name, manifest.epoch, manifest.total_bytes,
                epoch, total))
    if not verify_enabled():
        return
    for spec in manifest.columns:
        nbytes = np.dtype(spec.dtype).itemsize * spec.rows
        actual = zlib.crc32(
            bytes(shm.buf[spec.offset:spec.offset + nbytes]))
        if actual != spec.checksum:
            raise ShmIntegrityError(
                "checksum mismatch for {}.{} in {}: expected {:#010x}, "
                "got {:#010x}".format(spec.table, spec.name,
                                      manifest.shm_name, spec.checksum,
                                      actual))
        stats["verified_columns"] += 1


def attach_database(manifest: ShmManifest) -> Database:
    """Rebuild a database from ``manifest`` over shared pages.

    Column arrays are read-only views into the segment — mutating
    attached data is a bug, and numpy will raise on the attempt.
    """
    if shared_memory is None:
        raise RuntimeError("shared memory is not available on this platform")
    start = perf_counter()
    shm = _attached.get(manifest.shm_name)
    if shm is None:
        shm = shared_memory.SharedMemory(name=manifest.shm_name)
        # Attaching registered the segment with *this* process's
        # resource tracker (stdlib behaviour through 3.12), which would
        # unlink it when this process exits.  Undo that — but only when
        # the tracker is our own (spawn): under fork we share the
        # exporter's tracker, where the duplicate registration deduped
        # to a no-op and unregistering would strip the exporter's entry.
        if (resource_tracker is not None
                and _tracker_pid() != manifest.tracker_pid):
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals
                pass
        _attached[manifest.shm_name] = shm
    key = (manifest.shm_name, manifest.epoch)
    if key not in _verified:
        try:
            _validate_segment(shm, manifest)
        except ShmIntegrityError:
            stats["integrity_failures"] += 1
            _attached.pop(manifest.shm_name, None)
            try:
                shm.close()
            except (BufferError, OSError):  # pragma: no cover
                pass
            raise
        _verified.add(key)

    database = Database(manifest.database_name)
    tables: Dict[str, Table] = {}
    for name, nominal in manifest.table_nominal_rows.items():
        tables[name] = database.create_table(name, nominal_rows=nominal)
    for spec in manifest.columns:
        view = np.ndarray((spec.rows,), dtype=np.dtype(spec.dtype),
                          buffer=shm.buf, offset=spec.offset)
        view.flags.writeable = False
        column = Column(
            spec.table, spec.name, ColumnType(spec.ctype), view,
            nominal_rows=spec.nominal_rows,
            dictionary=(list(spec.dictionary)
                        if spec.dictionary is not None else None),
        )
        column.compression = spec.compression
        tables[spec.table]._attach(column)
    stats["attaches"] += 1
    stats["attach_seconds"] += perf_counter() - start
    return database


def detach_all() -> None:
    """Close every segment this process attached (worker cleanup)."""
    for shm in _attached.values():
        try:
            shm.close()
        except (BufferError, OSError):  # views still alive: leave mapped
            pass
    _attached.clear()


def forget_exports() -> None:
    """Drop export bookkeeping inherited across fork — WITHOUT unlinking.

    A forked worker inherits the parent's ``_exports`` registry; the
    segments in it belong to the parent, so the worker must forget (not
    unlink) them.  Called from worker initialisers.
    """
    _exports.clear()
    _created_names.clear()


def _reap_dead_exports() -> None:
    """Unlink exports whose owning database object has been collected."""
    for key in list(_exports):
        if key not in _export_owners:
            _exports.pop(key).unlink()


def invalidate(database: Optional[Database] = None) -> None:
    """Unlink shared exports — all of them, or one database's.

    Registered with :mod:`repro.engine.caches`, so
    ``clear_database_caches`` tears shared segments down alongside every
    other per-database cache.
    """
    if database is None:
        for export in _exports.values():
            export.unlink()
        _exports.clear()
        return
    export = _exports.pop(id(database), None)
    if export is not None:
        export.unlink()
    _reap_dead_exports()


def export_count(database: Optional[Database] = None) -> int:
    if database is not None:
        return 1 if id(database) in _exports else 0
    return len(_exports)


caches.register("shm", invalidate, export_count)


@atexit.register
def _cleanup_at_exit() -> None:  # pragma: no cover - interpreter exit
    invalidate()
    detach_all()
