"""Per-block column statistics (zone maps).

A :class:`ZoneMap` holds the min/max value of every fixed-size block of
a column.  Scans use the bounds to classify blocks against a predicate
— wholly failing blocks are skipped, wholly passing blocks short-
circuit to all-true — before touching the values themselves.  For
dictionary-encoded string columns the statistics are over the int32
codes; because dictionaries are order-preserving, code bounds are
string bounds.

Zone maps are pure derived data: building one never mutates the column,
and a map is only valid for the exact array it was built from (the
:class:`~repro.engine.kernels.KernelCache` owns that lifetime).
"""

from __future__ import annotations

import numpy as np

#: Default rows per block — roughly the paper-scale morsel CoGaDB's
#: scans work in; configurable because the *actual* arrays of the
#: simulation are far smaller than the nominal tables.
DEFAULT_BLOCK_ROWS = 65536


class ZoneMap:
    """Min/max per fixed-size block of one column's value array."""

    __slots__ = ("block_rows", "n_rows", "mins", "maxs")

    def __init__(self, block_rows: int, n_rows: int,
                 mins: np.ndarray, maxs: np.ndarray):
        self.block_rows = int(block_rows)
        self.n_rows = int(n_rows)
        self.mins = mins
        self.maxs = maxs

    @property
    def n_blocks(self) -> int:
        return len(self.mins)

    def block_bounds(self, block: int):
        """Row range ``[start, stop)`` covered by ``block``."""
        start = block * self.block_rows
        return start, min(start + self.block_rows, self.n_rows)

    def __repr__(self) -> str:
        return "<ZoneMap {} rows / {} blocks of {}>".format(
            self.n_rows, self.n_blocks, self.block_rows
        )


def build_zone_map(values: np.ndarray,
                   block_rows: int = DEFAULT_BLOCK_ROWS) -> ZoneMap:
    """Build block min/max statistics for ``values``.

    One vectorised pass: ``np.minimum.reduceat``/``np.maximum.reduceat``
    over the block start offsets.
    """
    if block_rows < 1:
        raise ValueError("block_rows must be >= 1")
    n = len(values)
    if n == 0:
        empty = np.empty(0, dtype=values.dtype)
        return ZoneMap(block_rows, 0, empty, empty)
    starts = np.arange(0, n, block_rows)
    mins = np.minimum.reduceat(values, starts)
    maxs = np.maximum.reduceat(values, starts)
    return ZoneMap(block_rows, n, mins, maxs)
