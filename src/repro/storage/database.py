"""The database catalog."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.storage.column import Column
from repro.storage.statistics import AccessStatistics
from repro.storage.table import Table


class Database:
    """A catalog of tables plus the storage manager's access statistics."""

    def __init__(self, name: str = "db"):
        self.name = name
        self._tables: Dict[str, Table] = {}
        #: per-column access counters (Sec. 3.2): incremented each time
        #: an operator accesses a column, consumed by the data-placement
        #: manager's background job.
        self.statistics = AccessStatistics()

    def __contains__(self, table_name: str) -> bool:
        return table_name in self._tables

    def add_table(self, table: Table) -> Table:
        if table.name in self._tables:
            raise ValueError("duplicate table {}".format(table.name))
        self._tables[table.name] = table
        return table

    def create_table(self, name: str, nominal_rows: Optional[int] = None) -> Table:
        return self.add_table(Table(name, nominal_rows=nominal_rows))

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError("no table {!r} in database {}".format(name, self.name))

    @property
    def tables(self) -> List[Table]:
        return list(self._tables.values())

    def column(self, key: str) -> Column:
        """Look up a column by its ``table.column`` key."""
        table_name, _, column_name = key.partition(".")
        return self.table(table_name).column(column_name)

    def columns(self) -> List[Column]:
        """Every column of every table."""
        return [c for t in self.tables for c in t.columns]

    @property
    def nominal_bytes(self) -> int:
        return sum(t.nominal_bytes for t in self.tables)
