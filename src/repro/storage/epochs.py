"""Table epochs: append batches under snapshot isolation.

Service mode mutates data while queries are in flight.  The storage
substrate is immutable by design (columns are numpy arrays shared by
caches, shm exports, and memoised plans), so mutation is modelled as
*snapshots*: an append batch builds a new :class:`Database` whose
untouched tables share their :class:`Table`/:class:`Column` objects
with the previous epoch, while each appended table gets freshly
concatenated columns (the batch re-appends a prefix of the existing
rows, so reference results over the new epoch are well-defined without
a data generator in the loop).

Every in-flight query *pins* the epoch it was admitted under and
executes against that snapshot — results stay byte-identical to the
reference engine evaluated over the same snapshot, however many
appends land mid-query.  Once a superseded snapshot drains (no pins),
:meth:`EpochStore.retire` invalidates everything derived from it —
zone maps, join indexes, memoised plans, shm manifests — through the
cache registry (:mod:`repro.engine.caches`), exactly the bookkeeping a
real system performs when a delta merges into the read-optimised
store.

Because each epoch is a distinct ``Database`` object and every derived
cache in the engine is keyed per database, epoch isolation needs no
cooperation from the execution layers: a query handed snapshot *e*
builds zone maps and memoised results for *e* and can never observe
rows appended after its admission.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.storage.column import Column
from repro.storage.database import Database
from repro.storage.table import Table


class EpochStore:
    """Snapshot chain for one base database under append mutation."""

    def __init__(self, base: Database):
        self.base = base
        self.epoch = 0
        self._snapshots: Dict[int, Database] = {0: base}
        self._pins: Counter = Counter()
        self._retired: set = set()
        #: rows appended per table across all epochs (reporting)
        self.appended_rows: Counter = Counter()

    # -- access -------------------------------------------------------

    @property
    def head(self) -> Database:
        """The newest snapshot — what fresh arrivals execute against."""
        return self._snapshots[self.epoch]

    def snapshot(self, epoch: int) -> Database:
        return self._snapshots[epoch]

    def live_epochs(self) -> List[int]:
        """Epochs whose caches are still valid (not yet retired)."""
        return sorted(e for e in self._snapshots if e not in self._retired)

    # -- pinning ------------------------------------------------------

    def pin(self, epoch: Optional[int] = None) -> int:
        """Pin a snapshot (default: head) for one in-flight query."""
        if epoch is None:
            epoch = self.epoch
        if epoch not in self._snapshots:
            raise KeyError("unknown epoch {}".format(epoch))
        self._pins[epoch] += 1
        return epoch

    def unpin(self, epoch: int) -> int:
        """Release a pin; superseded snapshots retire once drained.
        Returns how many snapshots retired as a consequence."""
        if self._pins[epoch] <= 0:
            raise ValueError("epoch {} is not pinned".format(epoch))
        self._pins[epoch] -= 1
        return self.retire()

    def pins(self, epoch: int) -> int:
        return self._pins[epoch]

    # -- mutation -----------------------------------------------------

    def advance(self, fraction: float = 0.05,
                tables: Optional[Sequence[str]] = None) -> Database:
        """Append a batch and return the new head snapshot.

        ``fraction`` of each target table's rows (at least one) is
        appended; ``tables`` defaults to the largest table — the fact
        table, where real append traffic lands.  Nominal (paper-scale)
        row counts grow proportionally so cost, cache, and transfer
        accounting see the mutation too.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("append fraction must be in (0, 1]")
        head = self.head
        if tables is None:
            fact = max(head.tables, key=lambda t: t.actual_rows)
            targets = {fact.name}
        else:
            targets = set(tables)
            for name in targets:
                head.table(name)  # raise on unknown tables
        self.epoch += 1
        snapshot = Database("{}@e{}".format(
            self.base.name, self.epoch))
        for table in head.tables:
            if table.name in targets and table.actual_rows > 0:
                grown, appended = self._appended(table, fraction)
                self.appended_rows[table.name] += appended
                snapshot.add_table(grown)
            else:
                # untouched tables share their columns with the
                # previous epoch — a snapshot costs only the delta
                snapshot.add_table(table)
        self._snapshots[self.epoch] = snapshot
        return snapshot

    @staticmethod
    def _appended(table: Table, fraction: float) -> Tuple[Table, int]:
        rows = table.actual_rows
        batch = max(1, int(rows * fraction))
        scale = (rows + batch) / float(rows)
        grown = Table(table.name,
                      nominal_rows=int(round(table.nominal_rows * scale)))
        for column in table.columns:
            values = np.concatenate(
                [column.values, column.values[:batch]])
            appended = Column(
                column.table, column.name, column.ctype, values,
                nominal_rows=int(round(column.nominal_rows * scale)),
                dictionary=column.dictionary,
            )
            appended.compression = column.compression
            grown.adopt_column(appended)
        return grown, batch

    # -- retirement ---------------------------------------------------

    def retire(self) -> int:
        """Invalidate every drained, superseded snapshot's derived
        state through the cache registry; returns how many retired."""
        # imported here: storage must not depend on the engine package
        # at import time (the engine builds on storage)
        from repro.engine import caches
        count = 0
        for epoch in sorted(self._snapshots):
            if (epoch < self.epoch and epoch not in self._retired
                    and self._pins[epoch] == 0):
                caches.invalidate_all(self._snapshots[epoch])
                self._retired.add(epoch)
                count += 1
        return count


__all__ = ["EpochStore"]
