"""Lightweight column compression.

The paper's discussion (Sec. 6.3) observes that compressing the
database shifts the point where performance breaks down to a larger
scale factor or user count — without solving cache thrashing or heap
contention.  This module provides real, verifiable codecs; compression
ratios are *measured* on the actual data and applied to the nominal
sizing, so the cost model sees honestly compressed volumes.

Codecs:

* :class:`RunLengthCodec` — RLE over (value, run length) pairs; wins on
  low-cardinality or sorted columns.
* :class:`BitPackCodec` — fixed-width bit packing of the value range;
  wins on narrow domains (flags, small ints, dictionary codes).
* :class:`DeltaBitPackCodec` — delta encoding then bit packing; wins on
  nearly sorted columns (order keys, date keys).

Every codec implements exact ``encode``/``decode``, tested by
round-trip property tests.
"""

from __future__ import annotations

import math
from typing import Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.storage.column import Column
from repro.storage.database import Database


class Codec:
    """Interface: exact encode/decode plus a size measurement."""

    name = "codec"

    def encode(self, values: np.ndarray):
        raise NotImplementedError

    def decode(self, payload, dtype, length: int) -> np.ndarray:
        raise NotImplementedError

    def compressed_bytes(self, values: np.ndarray) -> int:
        """Size of the encoded representation in bytes."""
        raise NotImplementedError

    def ratio(self, values: np.ndarray) -> float:
        """compressed size / uncompressed size, capped at 1."""
        if values.nbytes == 0:
            return 1.0
        return min(self.compressed_bytes(values) / values.nbytes, 1.0)


class RunLengthCodec(Codec):
    """(value, run length) pairs."""

    name = "rle"

    @staticmethod
    def _runs(values: np.ndarray):
        if len(values) == 0:
            return np.empty(0, dtype=values.dtype), np.empty(0, dtype=np.int64)
        change = np.flatnonzero(values[1:] != values[:-1])
        starts = np.concatenate(([0], change + 1))
        ends = np.concatenate((change + 1, [len(values)]))
        return values[starts], (ends - starts).astype(np.int64)

    def encode(self, values: np.ndarray):
        run_values, run_lengths = self._runs(values)
        return (run_values, run_lengths)

    def decode(self, payload, dtype, length: int) -> np.ndarray:
        run_values, run_lengths = payload
        if len(run_values) == 0:
            return np.empty(0, dtype=dtype)
        return np.repeat(run_values, run_lengths).astype(dtype)

    def compressed_bytes(self, values: np.ndarray) -> int:
        run_values, _ = self._runs(values)
        # each run: one value plus a 32-bit length
        return len(run_values) * (values.dtype.itemsize + 4)


class BitPackCodec(Codec):
    """Fixed-width packing of (value - min) into 64-bit words.

    The payload is ``(words, base, width)`` with values laid out
    back-to-back over the bits of a uint64 array (little-endian within
    each word, one zeroed spill word at the end so straddle reads never
    bounds-check).  Encoding and decoding are pure word-level shift
    arithmetic — no per-value bit matrix is ever materialised, so a
    6M-row column packs without an n x width blowup.
    """

    name = "bitpack"

    @staticmethod
    def _width_bits(values: np.ndarray) -> int:
        if len(values) == 0:
            return 1
        span = int(values.max()) - int(values.min())
        return max(span.bit_length(), 1)

    def encode(self, values: np.ndarray):
        if len(values) == 0:
            return (np.empty(0, dtype=np.uint64), 0, 1)
        base = int(values.min())
        width = self._width_bits(values)
        offsets = (values.astype(np.int64) - base).astype(np.uint64)
        n = len(offsets)
        n_words = (n * width + 63) // 64 + 1  # +1 spill word
        words = np.zeros(n_words, dtype=np.uint64)
        if 64 % width == 0:
            # Aligned widths: reshape into lanes and OR-reduce.
            per_word = 64 // width
            padded = np.zeros(
                ((n + per_word - 1) // per_word) * per_word, dtype=np.uint64
            )
            padded[:n] = offsets
            shifts = np.arange(per_word, dtype=np.uint64) * np.uint64(width)
            lanes = padded.reshape(-1, per_word) << shifts
            words[: len(lanes)] = np.bitwise_or.reduce(lanes, axis=1)
        else:
            positions = np.arange(n, dtype=np.uint64) * np.uint64(width)
            word_idx = (positions >> np.uint64(6)).astype(np.int64)
            bit_off = positions & np.uint64(63)
            np.bitwise_or.at(words, word_idx, offsets << bit_off)
            spills = np.flatnonzero(bit_off + np.uint64(width) > 64)
            if len(spills):
                high = offsets[spills] >> (np.uint64(64) - bit_off[spills])
                np.bitwise_or.at(words, word_idx[spills] + 1, high)
        return (words, base, width)

    def decode(self, payload, dtype, length: int) -> np.ndarray:
        words, base, width = payload
        if length == 0:
            return np.empty(0, dtype=dtype)
        positions = np.arange(length, dtype=np.uint64) * np.uint64(width)
        word_idx = (positions >> np.uint64(6)).astype(np.int64)
        bit_off = positions & np.uint64(63)
        low = words[word_idx] >> bit_off
        straddles = np.flatnonzero(bit_off + np.uint64(width) > 64)
        if len(straddles):
            shift = np.uint64(64) - bit_off[straddles]
            low[straddles] |= words[word_idx[straddles] + 1] << shift
        mask = np.uint64((1 << width) - 1)
        offsets = low & mask
        return (offsets.astype(np.int64) + base).astype(dtype)

    def compressed_bytes(self, values: np.ndarray) -> int:
        width = self._width_bits(values)
        return (len(values) * width + 7) // 8 + 8  # payload + base/width


class DeltaBitPackCodec(Codec):
    """First-order deltas, then bit packing."""

    name = "delta"

    def __init__(self):
        self._bitpack = BitPackCodec()

    @staticmethod
    def _deltas(values: np.ndarray) -> np.ndarray:
        if len(values) == 0:
            return values.astype(np.int64)
        out = np.empty(len(values), dtype=np.int64)
        out[0] = int(values[0])
        out[1:] = np.diff(values.astype(np.int64))
        return out

    def encode(self, values: np.ndarray):
        return self._bitpack.encode(self._deltas(values))

    def decode(self, payload, dtype, length: int) -> np.ndarray:
        deltas = self._bitpack.decode(payload, np.int64, length)
        return np.cumsum(deltas).astype(dtype)

    def compressed_bytes(self, values: np.ndarray) -> int:
        return self._bitpack.compressed_bytes(self._deltas(values))


#: Codecs considered by :func:`choose_codec`, in evaluation order.
CODECS: Tuple[Codec, ...] = (RunLengthCodec(), BitPackCodec(),
                             DeltaBitPackCodec())


class ColumnCompression(NamedTuple):
    """The chosen codec and measured ratio for one column."""

    codec: str
    ratio: float


def choose_codec(values: np.ndarray) -> ColumnCompression:
    """Pick the codec with the smallest measured size (uncompressed if
    nothing wins)."""
    best_name = "none"
    best_ratio = 1.0
    for codec in CODECS:
        ratio = codec.ratio(values)
        if ratio < best_ratio:
            best_ratio = ratio
            best_name = codec.name
    return ColumnCompression(best_name, best_ratio)


def codec_by_name(name: str) -> Codec:
    for codec in CODECS:
        if codec.name == name:
            return codec
    raise KeyError("unknown codec {!r}".format(name))


def compress_column(column: Column) -> ColumnCompression:
    """Measure and apply the best codec to ``column``.

    Only the *sizing* changes (nominal bytes shrink by the measured
    ratio); the value array stays decompressed for functional
    execution, exactly like a real engine decompressing on access.
    """
    compression = choose_codec(column.values)
    column.compression = compression
    return compression


def compress_database(database: Database) -> Dict[str, ColumnCompression]:
    """Compress every column; returns {column key: compression}."""
    # Compression rewrites column metadata in place: results memoised
    # against the uncompressed database must not survive it.  The
    # imports force plan_cache/kernels to self-register before the
    # registry-wide invalidation runs.
    from repro.engine import caches, kernels, plan_cache  # noqa: F401

    caches.invalidate_all(database)
    report = {}
    for column in database.columns():
        report[column.key] = compress_column(column)
    return report


def compression_summary(report: Dict[str, ColumnCompression]) -> str:
    """Human-readable per-column compression table."""
    lines = ["{:40s} {:>8s} {:>7s}".format("column", "codec", "ratio")]
    for key in sorted(report):
        compression = report[key]
        lines.append("{:40s} {:>8s} {:>6.2f}x".format(
            key, compression.codec,
            1.0 / compression.ratio if compression.ratio else float("inf"),
        ))
    return "\n".join(lines)
