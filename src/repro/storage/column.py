"""Columns: actual values plus nominal (paper-scale) sizing."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.storage.types import ColumnType


class Column:
    """One attribute of a table.

    ``values`` is the *actual* numpy array used for functional
    execution.  ``nominal_rows`` is the row count the column would have
    at the experiment's scale factor; every cost, cache, and heap
    computation uses :attr:`nominal_bytes`.  When ``nominal_rows`` is
    omitted the column is unscaled (nominal == actual).
    """

    def __init__(
        self,
        table: str,
        name: str,
        ctype: ColumnType,
        values: np.ndarray,
        nominal_rows: Optional[int] = None,
        dictionary: Optional[List[str]] = None,
    ):
        if values.ndim != 1:
            raise ValueError("columns are one-dimensional")
        expected = ctype.numpy_dtype
        if values.dtype != expected:
            values = values.astype(expected)
        if ctype is ColumnType.STRING and dictionary is None:
            raise ValueError("string columns need a dictionary")
        if ctype is not ColumnType.STRING and dictionary is not None:
            raise ValueError("only string columns carry a dictionary")
        self.table = table
        self.name = name
        self.ctype = ctype
        self.values = values
        self.nominal_rows = int(nominal_rows) if nominal_rows is not None else len(values)
        self.dictionary = dictionary
        #: set by repro.storage.compression: (codec name, measured
        #: compressed/uncompressed ratio); shrinks nominal_bytes
        self.compression = None

    # -- identity -----------------------------------------------------

    @property
    def key(self) -> str:
        """Globally unique column identifier, ``table.column``."""
        return "{}.{}".format(self.table, self.name)

    def __repr__(self) -> str:
        return "<Column {} {} rows={} nominal={}>".format(
            self.key, self.ctype.value, len(self.values), self.nominal_rows
        )

    # -- sizing --------------------------------------------------------

    @property
    def actual_rows(self) -> int:
        return len(self.values)

    @property
    def nominal_bytes(self) -> int:
        """Paper-scale size: what the column would occupy on the device
        (after compression, if a codec has been applied)."""
        raw = self.nominal_rows * self.ctype.itemsize
        if self.compression is not None:
            return int(raw * self.compression.ratio)
        return raw

    @property
    def actual_bytes(self) -> int:
        return self.values.nbytes

    # -- string encoding ------------------------------------------------

    @classmethod
    def from_strings(
        cls,
        table: str,
        name: str,
        strings: Sequence[str],
        nominal_rows: Optional[int] = None,
    ) -> "Column":
        """Dictionary-encode ``strings`` (sorted dictionary, so code
        order preserves lexicographic order)."""
        dictionary = sorted(set(strings))
        code_of = {s: i for i, s in enumerate(dictionary)}
        codes = np.fromiter(
            (code_of[s] for s in strings), dtype=np.int32, count=len(strings)
        )
        return cls(table, name, ColumnType.STRING, codes,
                   nominal_rows=nominal_rows, dictionary=dictionary)

    def encode(self, string: str) -> int:
        """Dictionary code for ``string``.

        Unknown strings map to a code outside the value domain so
        equality predicates simply select nothing.
        """
        if self.dictionary is None:
            raise TypeError("{} is not a string column".format(self.key))
        import bisect

        index = bisect.bisect_left(self.dictionary, string)
        if index < len(self.dictionary) and self.dictionary[index] == string:
            return index
        # Position in the sorted dictionary keeps range predicates on
        # unknown bounds correct: codes < index are exactly the strings
        # ordered before `string`.  Offset by -0.5 is impossible with
        # ints, so callers use encode_bound for ranges.
        return -1

    def encode_lower_bound(self, string: str) -> int:
        """Smallest code whose string is >= ``string``."""
        if self.dictionary is None:
            raise TypeError("{} is not a string column".format(self.key))
        import bisect

        return bisect.bisect_left(self.dictionary, string)

    def encode_upper_bound(self, string: str) -> int:
        """Largest code whose string is <= ``string`` (may be -1)."""
        if self.dictionary is None:
            raise TypeError("{} is not a string column".format(self.key))
        import bisect

        return bisect.bisect_right(self.dictionary, string) - 1

    def decode(self, codes: Union[int, np.ndarray]):
        """Map dictionary codes back to strings."""
        if self.dictionary is None:
            raise TypeError("{} is not a string column".format(self.key))
        if np.isscalar(codes):
            return self.dictionary[int(codes)]
        return [self.dictionary[int(c)] for c in np.asarray(codes)]

    # -- access ----------------------------------------------------------

    def gather(self, positions: np.ndarray) -> np.ndarray:
        """Values at the given row positions."""
        return self.values[positions]
