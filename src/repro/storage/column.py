"""Columns: actual values plus nominal (paper-scale) sizing."""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.storage.types import ColumnType


class Column:
    """One attribute of a table.

    ``values`` is the *actual* numpy array used for functional
    execution.  ``nominal_rows`` is the row count the column would have
    at the experiment's scale factor; every cost, cache, and heap
    computation uses :attr:`nominal_bytes`.  When ``nominal_rows`` is
    omitted the column is unscaled (nominal == actual).
    """

    def __init__(
        self,
        table: str,
        name: str,
        ctype: ColumnType,
        values: np.ndarray,
        nominal_rows: Optional[int] = None,
        dictionary: Optional[List[str]] = None,
    ):
        if values.ndim != 1:
            raise ValueError("columns are one-dimensional")
        expected = ctype.numpy_dtype
        if values.dtype != expected:
            values = values.astype(expected)
        if ctype is ColumnType.STRING and dictionary is None:
            raise ValueError("string columns need a dictionary")
        if ctype is not ColumnType.STRING and dictionary is not None:
            raise ValueError("only string columns carry a dictionary")
        self.table = table
        self.name = name
        self.ctype = ctype
        self.values = values
        self.nominal_rows = int(nominal_rows) if nominal_rows is not None else len(values)
        self.dictionary = dictionary
        #: set by repro.storage.compression: (codec name, measured
        #: compressed/uncompressed ratio); shrinks nominal_bytes
        self.compression = None
        # Lazily built encode/decode accelerators over the (immutable)
        # dictionary: string -> code map, bound-lookup memo, and an
        # object-array view for vectorised decoding.
        self._code_of: Optional[Dict[str, int]] = None
        self._bound_cache: Optional[Dict] = None
        self._dict_array: Optional[np.ndarray] = None

    # -- identity -----------------------------------------------------

    @property
    def key(self) -> str:
        """Globally unique column identifier, ``table.column``."""
        return "{}.{}".format(self.table, self.name)

    def __repr__(self) -> str:
        return "<Column {} {} rows={} nominal={}>".format(
            self.key, self.ctype.value, len(self.values), self.nominal_rows
        )

    # -- sizing --------------------------------------------------------

    @property
    def actual_rows(self) -> int:
        return len(self.values)

    @property
    def nominal_bytes(self) -> int:
        """Paper-scale size: what the column would occupy on the device
        (after compression, if a codec has been applied)."""
        raw = self.nominal_rows * self.ctype.itemsize
        if self.compression is not None:
            return int(raw * self.compression.ratio)
        return raw

    @property
    def actual_bytes(self) -> int:
        return self.values.nbytes

    # -- string encoding ------------------------------------------------

    @classmethod
    def from_strings(
        cls,
        table: str,
        name: str,
        strings: Sequence[str],
        nominal_rows: Optional[int] = None,
    ) -> "Column":
        """Dictionary-encode ``strings`` (sorted dictionary, so code
        order preserves lexicographic order)."""
        dictionary = sorted(set(strings))
        code_of = {s: i for i, s in enumerate(dictionary)}
        codes = np.fromiter(
            (code_of[s] for s in strings), dtype=np.int32, count=len(strings)
        )
        column = cls(table, name, ColumnType.STRING, codes,
                     nominal_rows=nominal_rows, dictionary=dictionary)
        column._code_of = code_of
        return column

    def encode(self, string: str) -> int:
        """Dictionary code for ``string``.

        Unknown strings map to a code outside the value domain so
        equality predicates simply select nothing.
        """
        if self.dictionary is None:
            raise TypeError("{} is not a string column".format(self.key))
        code_of = self._code_of
        if code_of is None:
            code_of = {s: i for i, s in enumerate(self.dictionary)}
            self._code_of = code_of
        # Unknown strings map to -1: equality predicates select
        # nothing, inequality everything.  Range predicates on unknown
        # bounds go through encode_lower/upper_bound instead.
        return code_of.get(string, -1)

    def _bound(self, string: str, upper: bool) -> int:
        cache = self._bound_cache
        if cache is None:
            cache = self._bound_cache = {}
        key = (string, upper)
        index = cache.get(key)
        if index is None:
            if upper:
                index = bisect.bisect_right(self.dictionary, string) - 1
            else:
                index = bisect.bisect_left(self.dictionary, string)
            cache[key] = index
        return index

    def encode_lower_bound(self, string: str) -> int:
        """Smallest code whose string is >= ``string``."""
        if self.dictionary is None:
            raise TypeError("{} is not a string column".format(self.key))
        return self._bound(string, upper=False)

    def encode_upper_bound(self, string: str) -> int:
        """Largest code whose string is <= ``string`` (may be -1)."""
        if self.dictionary is None:
            raise TypeError("{} is not a string column".format(self.key))
        return self._bound(string, upper=True)

    def decode(self, codes: Union[int, np.ndarray]):
        """Map dictionary codes back to strings."""
        if self.dictionary is None:
            raise TypeError("{} is not a string column".format(self.key))
        if np.isscalar(codes):
            return self.dictionary[int(codes)]
        lookup = self._dict_array
        if lookup is None:
            lookup = np.asarray(self.dictionary, dtype=object)
            self._dict_array = lookup
        index = np.asarray(codes)
        if index.dtype.kind not in "iu":
            index = index.astype(np.intp)
        return list(lookup[index])

    # -- access ----------------------------------------------------------

    def gather(self, positions: np.ndarray) -> np.ndarray:
        """Values at the given row positions."""
        return self.values[positions]
