"""Access statistics feeding the data-placement manager.

"Each column in the database has an access counter, which is
incremented each time an operator accesses a column" (Sec. 3.2).
Recency is tracked as well so the LRU variant of the background
placement policy (Appendix E) has something to order by.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List


class AccessStatistics:
    """Per-column access counts and recency."""

    def __init__(self):
        self._counts: Counter = Counter()
        self._last_access: Dict[str, float] = {}
        self._tick = 0

    def record_access(self, column_key: str, now: float = None) -> None:
        """Record one operator access to ``column_key``."""
        self._counts[column_key] += 1
        self._tick += 1
        self._last_access[column_key] = float(self._tick if now is None else now)

    def record_accesses(self, column_keys) -> None:
        """Record one access per key (the executor hot path; identical
        to calling :meth:`record_access` for each key in order)."""
        counts = self._counts
        last = self._last_access
        tick = self._tick
        for key in column_keys:
            counts[key] += 1
            tick += 1
            last[key] = float(tick)
        self._tick = tick

    def access_count(self, column_key: str) -> int:
        return self._counts[column_key]

    def last_access(self, column_key: str) -> float:
        return self._last_access.get(column_key, float("-inf"))

    def by_frequency(self) -> List[str]:
        """Column keys, most frequently accessed first (LFU order).

        Ties break on recency so the ordering is deterministic.
        """
        return [
            key
            for key, _ in sorted(
                self._counts.items(),
                key=lambda item: (-item[1], -self._last_access.get(item[0], 0.0), item[0]),
            )
        ]

    def by_recency(self) -> List[str]:
        """Column keys, most recently accessed first (LRU order)."""
        return [
            key
            for key, _ in sorted(
                self._last_access.items(), key=lambda item: (-item[1], item[0])
            )
        ]

    def reset(self) -> None:
        self._counts.clear()
        self._last_access.clear()
        self._tick = 0

    def __len__(self) -> int:
        return len(self._counts)
