"""Column types.

All types are fixed width.  Strings are dictionary-encoded into 32-bit
codes; the dictionary is sorted, so code order equals lexicographic
order and range predicates evaluate directly on codes (as CoGaDB's
order-preserving dictionary compression does).
"""

from __future__ import annotations

import enum

import numpy as np


class ColumnType(enum.Enum):
    """Fixed-width storage types."""

    INT32 = "int32"
    INT64 = "int64"
    FLOAT32 = "float32"
    FLOAT64 = "float64"
    #: calendar date stored as yyyymmdd int32
    DATE = "date"
    #: dictionary-encoded string (int32 codes + sorted dictionary)
    STRING = "string"

    @property
    def numpy_dtype(self) -> np.dtype:
        """The dtype of the in-memory value array."""
        mapping = {
            ColumnType.INT32: np.int32,
            ColumnType.INT64: np.int64,
            ColumnType.FLOAT32: np.float32,
            ColumnType.FLOAT64: np.float64,
            ColumnType.DATE: np.int32,
            ColumnType.STRING: np.int32,
        }
        return np.dtype(mapping[self])

    @property
    def itemsize(self) -> int:
        """Bytes per value as stored (dictionary codes for strings)."""
        return self.numpy_dtype.itemsize

    @property
    def is_numeric(self) -> bool:
        return self in (
            ColumnType.INT32,
            ColumnType.INT64,
            ColumnType.FLOAT32,
            ColumnType.FLOAT64,
        )
