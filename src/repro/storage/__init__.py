"""Column-oriented in-memory storage.

CoGaDB is a main-memory column store with 32-bit OIDs (Sec. 2.5).  This
package provides the storage substrate:

* :class:`ColumnType` — fixed-width column types (strings are
  dictionary-encoded with an order-preserving dictionary so range
  predicates work on codes).
* :class:`Column` — one attribute: a numpy array of *actual* values
  plus a *nominal* row count.  All cost/cache/heap accounting uses
  nominal (paper-scale) bytes while functional execution uses the
  actual array, so experiments are cheap but results stay verifiable.
* :class:`Table` and :class:`Database` — the catalog.
* :class:`AccessStatistics` — per-column access counters feeding the
  data-placement manager (Sec. 3.2).
"""

from repro.storage.types import ColumnType
from repro.storage.column import Column
from repro.storage.blocks import ZoneMap, build_zone_map
from repro.storage.table import Table
from repro.storage.database import Database
from repro.storage.epochs import EpochStore
from repro.storage.statistics import AccessStatistics

__all__ = [
    "AccessStatistics",
    "Column",
    "ColumnType",
    "Database",
    "EpochStore",
    "Table",
    "ZoneMap",
    "build_zone_map",
]

# repro.storage.compression is imported lazily by its users to keep the
# core import graph small; see compress_database / choose_codec there.
