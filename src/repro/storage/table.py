"""Tables: named collections of equal-length columns."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.storage.column import Column
from repro.storage.types import ColumnType


class Table:
    """A named set of columns with consistent actual/nominal row counts."""

    def __init__(self, name: str, nominal_rows: Optional[int] = None):
        self.name = name
        self._columns: Dict[str, Column] = {}
        self._nominal_rows = nominal_rows
        self._actual_rows: Optional[int] = None

    def __repr__(self) -> str:
        return "<Table {} cols={} rows={} nominal={}>".format(
            self.name, len(self._columns), self.actual_rows, self.nominal_rows
        )

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._columns

    # -- construction ---------------------------------------------------

    def add_column(self, name: str, ctype: ColumnType, values: np.ndarray) -> Column:
        """Add a typed column of raw values."""
        column = Column(self.name, name, ctype, values,
                        nominal_rows=self._nominal_rows)
        return self._attach(column)

    def add_string_column(self, name: str, strings) -> Column:
        """Add a dictionary-encoded string column."""
        column = Column.from_strings(self.name, name, strings,
                                     nominal_rows=self._nominal_rows)
        return self._attach(column)

    def adopt_column(self, column: Column) -> Column:
        """Attach an externally constructed :class:`Column` — epoch
        snapshots build appended columns directly so dictionary-encoded
        codes (and compression choices) carry over unchanged."""
        return self._attach(column)

    def _attach(self, column: Column) -> Column:
        if column.name in self._columns:
            raise ValueError("duplicate column {}".format(column.key))
        if self._actual_rows is None:
            self._actual_rows = column.actual_rows
        elif column.actual_rows != self._actual_rows:
            raise ValueError(
                "column {} has {} rows, table {} has {}".format(
                    column.name, column.actual_rows, self.name, self._actual_rows
                )
            )
        self._columns[column.name] = column
        return column

    # -- access -----------------------------------------------------------

    def column(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError("no column {} in table {}".format(name, self.name))

    @property
    def columns(self) -> List[Column]:
        return list(self._columns.values())

    @property
    def column_names(self) -> List[str]:
        return list(self._columns)

    @property
    def actual_rows(self) -> int:
        return self._actual_rows if self._actual_rows is not None else 0

    @property
    def nominal_rows(self) -> int:
        if self._nominal_rows is not None:
            return self._nominal_rows
        return self.actual_rows

    @property
    def nominal_bytes(self) -> int:
        """Paper-scale footprint of the whole table."""
        return sum(c.nominal_bytes for c in self._columns.values())
