"""Database persistence.

Saves a :class:`~repro.storage.Database` to a single ``.npz`` archive:
value arrays under ``<table>/<column>`` keys plus a JSON manifest with
types, nominal sizes, dictionaries, and compression state.  Generating
an SSB database is fast, but persisted databases make experiment runs
byte-for-byte repeatable across sessions and serve as fixtures.
"""

from __future__ import annotations

import json
import os
from typing import Dict

import numpy as np

from repro.storage.column import Column
from repro.storage.database import Database
from repro.storage.table import Table
from repro.storage.types import ColumnType

#: manifest format version; bump on incompatible layout changes
FORMAT_VERSION = 1


def save_database(database: Database, path: str) -> None:
    """Write ``database`` to ``path`` (a ``.npz`` archive)."""
    arrays: Dict[str, np.ndarray] = {}
    manifest = {
        "format": FORMAT_VERSION,
        "name": database.name,
        "tables": [],
    }
    for table in database.tables:
        table_entry = {
            "name": table.name,
            "nominal_rows": table.nominal_rows,
            "columns": [],
        }
        for column in table.columns:
            array_key = "{}/{}".format(table.name, column.name)
            arrays[array_key] = column.values
            column_entry = {
                "name": column.name,
                "type": column.ctype.value,
                "nominal_rows": column.nominal_rows,
                "dictionary": column.dictionary,
            }
            if column.compression is not None:
                column_entry["compression"] = {
                    "codec": column.compression.codec,
                    "ratio": column.compression.ratio,
                }
            table_entry["columns"].append(column_entry)
        manifest["tables"].append(table_entry)
    arrays["__manifest__"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)


def load_database(path: str) -> Database:
    """Read a database previously written by :func:`save_database`."""
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    with np.load(path, allow_pickle=False) as archive:
        manifest = json.loads(bytes(archive["__manifest__"]).decode("utf-8"))
        if manifest.get("format") != FORMAT_VERSION:
            raise ValueError(
                "unsupported database format {!r}".format(
                    manifest.get("format")
                )
            )
        database = Database(manifest["name"])
        for table_entry in manifest["tables"]:
            table = Table(table_entry["name"],
                          nominal_rows=table_entry["nominal_rows"])
            database.add_table(table)
            for column_entry in table_entry["columns"]:
                array_key = "{}/{}".format(
                    table_entry["name"], column_entry["name"]
                )
                column = Column(
                    table_entry["name"],
                    column_entry["name"],
                    ColumnType(column_entry["type"]),
                    archive[array_key],
                    nominal_rows=column_entry["nominal_rows"],
                    dictionary=column_entry["dictionary"],
                )
                compression = column_entry.get("compression")
                if compression is not None:
                    from repro.storage.compression import ColumnCompression

                    column.compression = ColumnCompression(
                        compression["codec"], compression["ratio"]
                    )
                table._attach(column)
    return database
