"""Benchmark workloads: SSBM, (modified) TPC-H, and the paper's micro
benchmarks."""

from repro.workloads.base import WorkloadQuery, sql_workload
from repro.workloads import micro, ssb, tpch

__all__ = ["WorkloadQuery", "micro", "sql_workload", "ssb", "tpch"]
