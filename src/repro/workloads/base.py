"""Workload abstractions shared by SSBM, TPC-H, and the micro benchmarks."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.engine.operators import PhysicalPlan
from repro.engine.planner import Planner
from repro.sql import QuerySpec, bind
from repro.storage import Database


class WorkloadQuery:
    """One query of a workload.

    Holds a physical plan *template* (built lazily, functional results
    memoised on it) plus, for SQL queries, the bound spec used by the
    reference evaluator.
    """

    def __init__(
        self,
        name: str,
        database: Database,
        sql: Optional[str] = None,
        plan_builder: Optional[Callable[[Database], PhysicalPlan]] = None,
    ):
        if (sql is None) == (plan_builder is None):
            raise ValueError("provide exactly one of sql / plan_builder")
        self.name = name
        self.database = database
        self.sql = sql
        self._plan_builder = plan_builder
        self._spec: Optional[QuerySpec] = None
        self._template: Optional[PhysicalPlan] = None

    @property
    def spec(self) -> Optional[QuerySpec]:
        """The bound spec (None for hand-built plans)."""
        if self._spec is None and self.sql is not None:
            self._spec = bind(self.sql, self.database, name=self.name)
        return self._spec

    def template_plan(self) -> PhysicalPlan:
        """The shared plan template (build once, reuse)."""
        if self._template is None:
            if self.sql is not None:
                self._template = Planner(self.database).plan(self.spec)
            else:
                self._template = self._plan_builder(self.database)
            self._template.name = self.name
        return self._template

    def instantiate(self) -> PhysicalPlan:
        """A fresh plan instance for one execution."""
        return self.template_plan().clone()

    def required_columns(self):
        return self.template_plan().required_columns()

    def __repr__(self) -> str:
        return "<WorkloadQuery {}>".format(self.name)


def sql_workload(database: Database, queries) -> List[WorkloadQuery]:
    """Build WorkloadQuery objects from ``{name: sql}`` pairs."""
    if isinstance(queries, dict):
        items = queries.items()
    else:
        items = queries
    return [WorkloadQuery(name, database, sql=sql) for name, sql in items]
