"""The paper's micro benchmarks (Appendix B).

* :func:`serial_selection_workload` — B.1: eight ``select *`` queries,
  each filtering a different lineorder column, executed interleaved.
  Their combined input (8 fact columns, 1.9 GB at SF 10) is the working
  set that provokes cache thrashing when the GPU buffer is smaller.
* :func:`parallel_selection_workload` — B.2: one query derived from SSB
  Q1.1 filtering two cached columns, compiled to CoGaDB's chain of four
  consecutive selection operators; its 3.25x-input heap footprint makes
  roughly seven queries fit a 5 GB device concurrently.
"""

from __future__ import annotations

from typing import List

from repro.engine.expressions import And, ColumnRef, Comparison, Literal
from repro.engine.operators import (
    Materialize,
    PhysicalPlan,
    RefineSelect,
    ScanSelect,
)
from repro.storage import Database
from repro.workloads.base import WorkloadQuery, sql_workload

#: B.1: the eight interleaved selection queries (Listing 1).  The
#: predicates select (almost) nothing by design — the benchmark
#: measures pure selection cost over eight distinct input columns.
SERIAL_SELECTION_QUERIES = {
    "S1": "select * from lineorder where lo_quantity < 1",
    "S2": "select * from lineorder where lo_discount > 10",
    "S3": "select * from lineorder where lo_shippriority > 0",
    "S4": "select * from lineorder where lo_extendedprice < 100",
    "S5": "select * from lineorder where lo_ordtotalprice < 100",
    "S6": "select * from lineorder where lo_revenue < 1000",
    "S7": "select * from lineorder where lo_supplycost < 1000",
    "S8": "select * from lineorder where lo_tax > 10",
}

#: Columns making up the B.1 working set (1.9 GB at scale factor 10).
SERIAL_SELECTION_COLUMNS = (
    "lineorder.lo_quantity",
    "lineorder.lo_discount",
    "lineorder.lo_shippriority",
    "lineorder.lo_extendedprice",
    "lineorder.lo_ordtotalprice",
    "lineorder.lo_revenue",
    "lineorder.lo_supplycost",
    "lineorder.lo_tax",
)


def serial_selection_workload(database: Database) -> List[WorkloadQuery]:
    """The B.1 workload: eight interleaved selections."""
    return sql_workload(database, SERIAL_SELECTION_QUERIES)


def build_parallel_selection_plan(database: Database) -> PhysicalPlan:
    """B.2 (Listing 2) as CoGaDB executes it: a chain of four
    consecutive selection operators plus host-side materialisation.

    ``select * from lineorder where lo_discount between 4 and 6
    and lo_quantity between 26 and 35``
    """
    discount = ColumnRef("lineorder", "lo_discount")
    quantity = ColumnRef("lineorder", "lo_quantity")
    scan = ScanSelect(
        "lineorder", Comparison(">=", discount, Literal(4)),
        label="Sel(lo_discount>=4)",
    )
    refine1 = RefineSelect(
        scan, "lineorder", Comparison("<=", discount, Literal(6)),
        label="Sel(lo_discount<=6)",
    )
    refine2 = RefineSelect(
        refine1, "lineorder", Comparison(">=", quantity, Literal(26)),
        label="Sel(lo_quantity>=26)",
    )
    refine3 = RefineSelect(
        refine2, "lineorder", Comparison("<=", quantity, Literal(35)),
        label="Sel(lo_quantity<=35)",
    )
    items = [
        (column.name, ColumnRef("lineorder", column.name))
        for column in database.table("lineorder").columns
    ]
    root = Materialize(refine3, items)
    return PhysicalPlan(root, name="P1")


def parallel_selection_workload(database: Database) -> List[WorkloadQuery]:
    """The B.2 workload: one query, executed by many parallel users."""
    return [
        WorkloadQuery("P1", database,
                      plan_builder=build_parallel_selection_plan)
    ]


def parallel_selection_reference_predicate():
    """The B.2 predicate as a single expression (used by tests to check
    the chain against a fused evaluation)."""
    discount = ColumnRef("lineorder", "lo_discount")
    quantity = ColumnRef("lineorder", "lo_quantity")
    return And([
        Comparison(">=", discount, Literal(4)),
        Comparison("<=", discount, Literal(6)),
        Comparison(">=", quantity, Literal(26)),
        Comparison("<=", quantity, Literal(35)),
    ])
