"""The Star Schema Benchmark (O'Neil et al.): data generator and the 13
queries (Appendix C.1).

Nominal table cardinalities follow the SSB specification (lineorder is
6,000,000 x SF); the *actual* numpy arrays are generated at
``data_scale`` of nominal (with floors so dimension domains stay
populated), which keeps functional execution cheap while all cost
modelling uses nominal sizes.
"""

from __future__ import annotations

import datetime
import math
from typing import Dict, List

import numpy as np

from repro.storage import ColumnType, Database
from repro.workloads.base import WorkloadQuery, sql_workload

#: the five SSB regions and 25 nations (5 per region)
REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS = {
    "AFRICA": ["ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"],
    "AMERICA": ["ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES"],
    "ASIA": ["CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM"],
    "EUROPE": ["FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"],
    "MIDDLE EAST": ["EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"],
}
NATION_LIST = [nation for region in REGIONS for nation in NATIONS[region]]
REGION_OF_NATION = {
    nation: region for region in REGIONS for nation in NATIONS[region]
}

MONTH_NAMES = ["Jan", "Feb", "Mar", "Apr", "May", "Jun",
               "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"]


def _city(nation: str, digit: int) -> str:
    """SSB city naming: first 9 characters of the nation plus a digit
    (e.g. 'UNITED KI1')."""
    return "{:<9.9}{}".format(nation, digit)


def nominal_rows(scale_factor: float) -> Dict[str, int]:
    """SSB table cardinalities at ``scale_factor``."""
    sf = scale_factor
    part_multiplier = 1 + max(int(math.log2(max(sf, 1))), 0)
    return {
        "lineorder": int(6_000_000 * sf),
        "customer": int(30_000 * sf),
        "supplier": int(2_000 * sf),
        "part": 200_000 * part_multiplier,
        "date": 2_556,
    }


def _actual_rows(nominal: int, data_scale: float, floor: int) -> int:
    return max(min(nominal, floor), int(nominal * data_scale))


def generate(
    scale_factor: float = 1.0,
    data_scale: float = 1e-4,
    seed: int = 42,
) -> Database:
    """Generate an SSB database.

    ``data_scale`` shrinks the actual arrays relative to the nominal
    (paper-scale) cardinalities used by the cost model.
    """
    rng = np.random.default_rng(seed)
    sizes = nominal_rows(scale_factor)
    db = Database("ssb_sf{}".format(scale_factor))

    # -- date -----------------------------------------------------------
    n_dates = sizes["date"]
    date_table = db.create_table("date", nominal_rows=n_dates)
    start = datetime.date(1992, 1, 1)
    days = [start + datetime.timedelta(days=i) for i in range(n_dates)]
    date_table.add_column(
        "d_datekey", ColumnType.INT32,
        np.array([d.year * 10000 + d.month * 100 + d.day for d in days]),
    )
    date_table.add_column(
        "d_year", ColumnType.INT32, np.array([d.year for d in days])
    )
    date_table.add_column(
        "d_yearmonthnum", ColumnType.INT32,
        np.array([d.year * 100 + d.month for d in days]),
    )
    date_table.add_string_column(
        "d_yearmonth",
        ["{}{}".format(MONTH_NAMES[d.month - 1], d.year) for d in days],
    )
    date_table.add_column(
        "d_weeknuminyear", ColumnType.INT32,
        np.array([(d.timetuple().tm_yday - 1) // 7 + 1 for d in days]),
    )
    date_table.add_column(
        "d_monthnuminyear", ColumnType.INT32, np.array([d.month for d in days])
    )
    datekeys = date_table.column("d_datekey").values

    # -- customer ---------------------------------------------------------
    n_customer = _actual_rows(sizes["customer"], data_scale, 1500)
    customer = db.create_table("customer", nominal_rows=sizes["customer"])
    customer.add_column(
        "c_custkey", ColumnType.INT32, np.arange(1, n_customer + 1)
    )
    c_nation_idx = rng.integers(0, len(NATION_LIST), n_customer)
    c_nations = [NATION_LIST[i] for i in c_nation_idx]
    customer.add_string_column("c_nation", c_nations)
    customer.add_string_column(
        "c_region", [REGION_OF_NATION[n] for n in c_nations]
    )
    customer.add_string_column(
        "c_city",
        [_city(n, d) for n, d in zip(c_nations, rng.integers(0, 10, n_customer))],
    )

    # -- supplier --------------------------------------------------------
    n_supplier = _actual_rows(sizes["supplier"], data_scale, 800)
    supplier = db.create_table("supplier", nominal_rows=sizes["supplier"])
    supplier.add_column(
        "s_suppkey", ColumnType.INT32, np.arange(1, n_supplier + 1)
    )
    s_nation_idx = rng.integers(0, len(NATION_LIST), n_supplier)
    s_nations = [NATION_LIST[i] for i in s_nation_idx]
    supplier.add_string_column("s_nation", s_nations)
    supplier.add_string_column(
        "s_region", [REGION_OF_NATION[n] for n in s_nations]
    )
    supplier.add_string_column(
        "s_city",
        [_city(n, d) for n, d in zip(s_nations, rng.integers(0, 10, n_supplier))],
    )

    # -- part -------------------------------------------------------------
    n_part = _actual_rows(sizes["part"], data_scale, 2500)
    part = db.create_table("part", nominal_rows=sizes["part"])
    part.add_column("p_partkey", ColumnType.INT32, np.arange(1, n_part + 1))
    mfgr_num = rng.integers(1, 6, n_part)
    category_num = rng.integers(1, 6, n_part)
    brand_num = rng.integers(1, 41, n_part)
    part.add_string_column(
        "p_mfgr", ["MFGR#{}".format(m) for m in mfgr_num]
    )
    part.add_string_column(
        "p_category",
        ["MFGR#{}{}".format(m, c) for m, c in zip(mfgr_num, category_num)],
    )
    part.add_string_column(
        "p_brand1",
        [
            "MFGR#{}{}{:02d}".format(m, c, b)
            for m, c, b in zip(mfgr_num, category_num, brand_num)
        ],
    )

    # -- lineorder --------------------------------------------------------
    n_fact = _actual_rows(sizes["lineorder"], data_scale, 5000)
    lineorder = db.create_table("lineorder", nominal_rows=sizes["lineorder"])
    lineorder.add_column(
        "lo_orderkey", ColumnType.INT32, np.arange(1, n_fact + 1)
    )
    lineorder.add_column(
        "lo_custkey", ColumnType.INT32, rng.integers(1, n_customer + 1, n_fact)
    )
    lineorder.add_column(
        "lo_partkey", ColumnType.INT32, rng.integers(1, n_part + 1, n_fact)
    )
    lineorder.add_column(
        "lo_suppkey", ColumnType.INT32, rng.integers(1, n_supplier + 1, n_fact)
    )
    lineorder.add_column(
        "lo_orderdate", ColumnType.INT32,
        datekeys[rng.integers(0, n_dates, n_fact)],
    )
    lineorder.add_column(
        "lo_quantity", ColumnType.INT32, rng.integers(1, 51, n_fact)
    )
    lineorder.add_column(
        "lo_discount", ColumnType.INT32, rng.integers(0, 11, n_fact)
    )
    lineorder.add_column(
        "lo_tax", ColumnType.INT32, rng.integers(0, 9, n_fact)
    )
    lineorder.add_column(
        "lo_extendedprice", ColumnType.INT32,
        rng.integers(90_000, 10_000_000, n_fact),
    )
    lineorder.add_column(
        "lo_ordtotalprice", ColumnType.INT32,
        rng.integers(100_000, 40_000_000, n_fact),
    )
    lineorder.add_column(
        "lo_revenue", ColumnType.INT32,
        rng.integers(80_000, 9_000_000, n_fact),
    )
    lineorder.add_column(
        "lo_supplycost", ColumnType.INT32,
        rng.integers(50_000, 120_000, n_fact),
    )
    lineorder.add_column(
        "lo_shippriority", ColumnType.INT32, np.zeros(n_fact, dtype=np.int32)
    )
    return db


#: The 13 SSB queries (flights 1-4), as the paper runs them.
QUERIES: Dict[str, str] = {
    "Q1.1": (
        "select sum(lo_extendedprice * lo_discount) as revenue "
        "from lineorder, date where lo_orderdate = d_datekey "
        "and d_year = 1993 and lo_discount between 1 and 3 "
        "and lo_quantity < 25"
    ),
    "Q1.2": (
        "select sum(lo_extendedprice * lo_discount) as revenue "
        "from lineorder, date where lo_orderdate = d_datekey "
        "and d_yearmonthnum = 199401 and lo_discount between 4 and 6 "
        "and lo_quantity between 26 and 35"
    ),
    "Q1.3": (
        "select sum(lo_extendedprice * lo_discount) as revenue "
        "from lineorder, date where lo_orderdate = d_datekey "
        "and d_weeknuminyear = 6 and d_year = 1994 "
        "and lo_discount between 5 and 7 and lo_quantity between 26 and 35"
    ),
    "Q2.1": (
        "select sum(lo_revenue) as revenue, d_year, p_brand1 "
        "from lineorder, date, part, supplier "
        "where lo_orderdate = d_datekey and lo_partkey = p_partkey "
        "and lo_suppkey = s_suppkey and p_category = 'MFGR#12' "
        "and s_region = 'AMERICA' group by d_year, p_brand1 "
        "order by d_year, p_brand1"
    ),
    "Q2.2": (
        "select sum(lo_revenue) as revenue, d_year, p_brand1 "
        "from lineorder, date, part, supplier "
        "where lo_orderdate = d_datekey and lo_partkey = p_partkey "
        "and lo_suppkey = s_suppkey "
        "and p_brand1 between 'MFGR#2221' and 'MFGR#2228' "
        "and s_region = 'ASIA' group by d_year, p_brand1 "
        "order by d_year, p_brand1"
    ),
    "Q2.3": (
        "select sum(lo_revenue) as revenue, d_year, p_brand1 "
        "from lineorder, date, part, supplier "
        "where lo_orderdate = d_datekey and lo_partkey = p_partkey "
        "and lo_suppkey = s_suppkey and p_brand1 = 'MFGR#2239' "
        "and s_region = 'EUROPE' group by d_year, p_brand1 "
        "order by d_year, p_brand1"
    ),
    "Q3.1": (
        "select c_nation, s_nation, d_year, sum(lo_revenue) as revenue "
        "from customer, lineorder, supplier, date "
        "where lo_custkey = c_custkey and lo_suppkey = s_suppkey "
        "and lo_orderdate = d_datekey and c_region = 'ASIA' "
        "and s_region = 'ASIA' and d_year >= 1992 and d_year <= 1997 "
        "group by c_nation, s_nation, d_year "
        "order by d_year asc, revenue desc"
    ),
    "Q3.2": (
        "select c_city, s_city, d_year, sum(lo_revenue) as revenue "
        "from customer, lineorder, supplier, date "
        "where lo_custkey = c_custkey and lo_suppkey = s_suppkey "
        "and lo_orderdate = d_datekey and c_nation = 'UNITED STATES' "
        "and s_nation = 'UNITED STATES' and d_year >= 1992 and d_year <= 1997 "
        "group by c_city, s_city, d_year order by d_year asc, revenue desc"
    ),
    "Q3.3": (
        "select c_city, s_city, d_year, sum(lo_revenue) as revenue "
        "from customer, lineorder, supplier, date "
        "where lo_custkey = c_custkey and lo_suppkey = s_suppkey "
        "and lo_orderdate = d_datekey "
        "and c_city in ('UNITED KI1', 'UNITED KI5') "
        "and s_city in ('UNITED KI1', 'UNITED KI5') "
        "and d_year >= 1992 and d_year <= 1997 "
        "group by c_city, s_city, d_year order by d_year asc, revenue desc"
    ),
    "Q3.4": (
        "select c_city, s_city, d_year, sum(lo_revenue) as revenue "
        "from customer, lineorder, supplier, date "
        "where lo_custkey = c_custkey and lo_suppkey = s_suppkey "
        "and lo_orderdate = d_datekey "
        "and c_city in ('UNITED KI1', 'UNITED KI5') "
        "and s_city in ('UNITED KI1', 'UNITED KI5') "
        "and d_yearmonth = 'Dec1997' "
        "group by c_city, s_city, d_year order by d_year asc, revenue desc"
    ),
    "Q4.1": (
        "select d_year, c_nation, "
        "sum(lo_revenue - lo_supplycost) as profit "
        "from date, customer, supplier, part, lineorder "
        "where lo_custkey = c_custkey and lo_suppkey = s_suppkey "
        "and lo_partkey = p_partkey and lo_orderdate = d_datekey "
        "and c_region = 'AMERICA' and s_region = 'AMERICA' "
        "and p_mfgr in ('MFGR#1', 'MFGR#2') "
        "group by d_year, c_nation order by d_year, c_nation"
    ),
    "Q4.2": (
        "select d_year, s_nation, p_category, "
        "sum(lo_revenue - lo_supplycost) as profit "
        "from date, customer, supplier, part, lineorder "
        "where lo_custkey = c_custkey and lo_suppkey = s_suppkey "
        "and lo_partkey = p_partkey and lo_orderdate = d_datekey "
        "and c_region = 'AMERICA' and s_region = 'AMERICA' "
        "and d_year in (1997, 1998) and p_mfgr in ('MFGR#1', 'MFGR#2') "
        "group by d_year, s_nation, p_category "
        "order by d_year, s_nation, p_category"
    ),
    "Q4.3": (
        "select d_year, s_city, p_brand1, "
        "sum(lo_revenue - lo_supplycost) as profit "
        "from date, customer, supplier, part, lineorder "
        "where lo_custkey = c_custkey and lo_suppkey = s_suppkey "
        "and lo_partkey = p_partkey and lo_orderdate = d_datekey "
        "and c_region = 'AMERICA' and s_nation = 'UNITED STATES' "
        "and d_year in (1997, 1998) and p_category = 'MFGR#14' "
        "group by d_year, s_city, p_brand1 order by d_year, s_city, p_brand1"
    ),
}

#: Per-query selectivity class used in the paper's discussion
#: (Fig. 17: low-selectivity queries benefit less from Data-Driven
#: Chopping than high-selectivity ones).
HIGH_SELECTIVITY = ("Q1.3", "Q2.3", "Q3.4", "Q4.3")


def workload(database: Database, names: List[str] = None) -> List[WorkloadQuery]:
    """WorkloadQuery objects for all (or the named) SSB queries."""
    selected = QUERIES if names is None else {n: QUERIES[n] for n in names}
    return sql_workload(database, selected)
