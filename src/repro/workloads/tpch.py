"""TPC-H: data generator and the modified Q2-Q7 workload.

The paper runs TPC-H Q2-Q7 with modifications (Appendix C.2): CoGaDB
does not support case statements, arbitrary join conditions, substring
functions, or correlated subqueries, so the queries are simplified to
the relational core they benchmark.  Our variants follow the same
spirit; the differences to the official queries are documented on each
query string:

* Q2: the correlated min-cost subquery is replaced by a direct
  min-aggregation over the filtered join.
* Q3: unchanged in structure (dates are integer-coded yyyymmdd).
* Q4: the EXISTS subquery is replaced by a join with the commit/receipt
  comparison as a lineitem filter.
* Q5: the cyclic c_nationkey = s_nationkey condition is dropped
  (CoGaDB-style acyclic join graphs).
* Q6: unchanged (discount is stored as integer percent).
* Q7: the nation self-join is reduced to the supplier side, grouped by
  the pre-computed ship year.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.storage import ColumnType, Database
from repro.workloads.base import WorkloadQuery, sql_workload
from repro.workloads.ssb import NATION_LIST, REGION_OF_NATION, REGIONS

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]


def nominal_rows(scale_factor: float) -> Dict[str, int]:
    """TPC-H table cardinalities at ``scale_factor``."""
    sf = scale_factor
    return {
        "lineitem": int(6_000_000 * sf),
        "orders": int(1_500_000 * sf),
        "partsupp": int(800_000 * sf),
        "part": int(200_000 * sf),
        "customer": int(150_000 * sf),
        "supplier": int(10_000 * sf),
        "nation": 25,
        "region": 5,
    }


def _actual_rows(nominal: int, data_scale: float, floor: int) -> int:
    return max(min(nominal, floor), int(nominal * data_scale))


def _random_date(rng, n, start_year=1992, end_year=1998):
    """Integer yyyymmdd dates, uniform over months/days (28-day months
    keep the encoding trivially valid)."""
    years = rng.integers(start_year, end_year + 1, n)
    months = rng.integers(1, 13, n)
    days = rng.integers(1, 29, n)
    return (years * 10000 + months * 100 + days).astype(np.int32), years


def generate(
    scale_factor: float = 1.0,
    data_scale: float = 1e-4,
    seed: int = 7,
) -> Database:
    """Generate a TPC-H database (columns needed by Q2-Q7)."""
    rng = np.random.default_rng(seed)
    sizes = nominal_rows(scale_factor)
    db = Database("tpch_sf{}".format(scale_factor))

    region = db.create_table("region", nominal_rows=sizes["region"])
    region.add_column("r_regionkey", ColumnType.INT32, np.arange(5))
    region.add_string_column("r_name", REGIONS)

    nation = db.create_table("nation", nominal_rows=sizes["nation"])
    nation.add_column("n_nationkey", ColumnType.INT32, np.arange(25))
    nation.add_string_column("n_name", NATION_LIST)
    nation.add_column(
        "n_regionkey", ColumnType.INT32,
        np.array([REGIONS.index(REGION_OF_NATION[n]) for n in NATION_LIST]),
    )

    n_supplier = _actual_rows(sizes["supplier"], data_scale, 600)
    supplier = db.create_table("supplier", nominal_rows=sizes["supplier"])
    supplier.add_column("s_suppkey", ColumnType.INT32,
                        np.arange(1, n_supplier + 1))
    supplier.add_column("s_nationkey", ColumnType.INT32,
                        rng.integers(0, 25, n_supplier))
    supplier.add_column("s_acctbal", ColumnType.INT32,
                        rng.integers(-1000, 10_000, n_supplier))

    n_customer = _actual_rows(sizes["customer"], data_scale, 1200)
    customer = db.create_table("customer", nominal_rows=sizes["customer"])
    customer.add_column("c_custkey", ColumnType.INT32,
                        np.arange(1, n_customer + 1))
    customer.add_column("c_nationkey", ColumnType.INT32,
                        rng.integers(0, 25, n_customer))
    customer.add_string_column(
        "c_mktsegment",
        [SEGMENTS[i] for i in rng.integers(0, len(SEGMENTS), n_customer)],
    )

    n_part = _actual_rows(sizes["part"], data_scale, 1500)
    part = db.create_table("part", nominal_rows=sizes["part"])
    part.add_column("p_partkey", ColumnType.INT32, np.arange(1, n_part + 1))
    part.add_column("p_size", ColumnType.INT32, rng.integers(1, 51, n_part))
    part.add_column("p_retailprice", ColumnType.INT32,
                    rng.integers(900, 2100, n_part))

    n_partsupp = _actual_rows(sizes["partsupp"], data_scale, 3000)
    partsupp = db.create_table("partsupp", nominal_rows=sizes["partsupp"])
    partsupp.add_column("ps_partkey", ColumnType.INT32,
                        rng.integers(1, n_part + 1, n_partsupp))
    partsupp.add_column("ps_suppkey", ColumnType.INT32,
                        rng.integers(1, n_supplier + 1, n_partsupp))
    partsupp.add_column("ps_supplycost", ColumnType.INT32,
                        rng.integers(1, 1001, n_partsupp))
    partsupp.add_column("ps_availqty", ColumnType.INT32,
                        rng.integers(1, 10_000, n_partsupp))

    n_orders = _actual_rows(sizes["orders"], data_scale, 2500)
    orders = db.create_table("orders", nominal_rows=sizes["orders"])
    orders.add_column("o_orderkey", ColumnType.INT32,
                      np.arange(1, n_orders + 1))
    orders.add_column("o_custkey", ColumnType.INT32,
                      rng.integers(1, n_customer + 1, n_orders))
    o_dates, _ = _random_date(rng, n_orders)
    orders.add_column("o_orderdate", ColumnType.INT32, o_dates)
    orders.add_string_column(
        "o_orderpriority",
        [PRIORITIES[i] for i in rng.integers(0, len(PRIORITIES), n_orders)],
    )

    n_lineitem = _actual_rows(sizes["lineitem"], data_scale, 6000)
    lineitem = db.create_table("lineitem", nominal_rows=sizes["lineitem"])
    lineitem.add_column("l_orderkey", ColumnType.INT32,
                        rng.integers(1, n_orders + 1, n_lineitem))
    lineitem.add_column("l_partkey", ColumnType.INT32,
                        rng.integers(1, n_part + 1, n_lineitem))
    lineitem.add_column("l_suppkey", ColumnType.INT32,
                        rng.integers(1, n_supplier + 1, n_lineitem))
    lineitem.add_column("l_quantity", ColumnType.INT32,
                        rng.integers(1, 51, n_lineitem))
    lineitem.add_column("l_extendedprice", ColumnType.INT32,
                        rng.integers(900, 100_000, n_lineitem))
    lineitem.add_column("l_discount", ColumnType.INT32,
                        rng.integers(0, 11, n_lineitem))
    ship_dates, ship_years = _random_date(rng, n_lineitem)
    lineitem.add_column("l_shipdate", ColumnType.INT32, ship_dates)
    lineitem.add_column("l_shipyear", ColumnType.INT32, ship_years)
    commit_dates, _ = _random_date(rng, n_lineitem)
    receipt_dates, _ = _random_date(rng, n_lineitem)
    lineitem.add_column("l_commitdate", ColumnType.INT32, commit_dates)
    lineitem.add_column("l_receiptdate", ColumnType.INT32, receipt_dates)
    return db


#: The modified TPC-H queries Q2-Q7 (see module docstring).
QUERIES: Dict[str, str] = {
    "Q2": (
        "select n_name, min(ps_supplycost) as min_cost "
        "from partsupp, supplier, nation, region, part "
        "where ps_suppkey = s_suppkey and s_nationkey = n_nationkey "
        "and n_regionkey = r_regionkey and ps_partkey = p_partkey "
        "and r_name = 'EUROPE' and p_size = 15 "
        "group by n_name order by min_cost"
    ),
    "Q3": (
        "select l_orderkey, "
        "sum(l_extendedprice * (100 - l_discount)) as revenue "
        "from customer, orders, lineitem "
        "where c_mktsegment = 'BUILDING' and c_custkey = o_custkey "
        "and l_orderkey = o_orderkey and o_orderdate < 19950315 "
        "and l_shipdate > 19950315 "
        "group by l_orderkey order by revenue desc limit 10"
    ),
    "Q4": (
        "select o_orderpriority, count(*) as order_count "
        "from orders, lineitem "
        "where o_orderdate >= 19930701 and o_orderdate <= 19930930 "
        "and l_orderkey = o_orderkey and l_commitdate < l_receiptdate "
        "group by o_orderpriority order by o_orderpriority"
    ),
    "Q5": (
        "select n_name, "
        "sum(l_extendedprice * (100 - l_discount)) as revenue "
        "from customer, orders, lineitem, supplier, nation, region "
        "where c_custkey = o_custkey and l_orderkey = o_orderkey "
        "and l_suppkey = s_suppkey and s_nationkey = n_nationkey "
        "and n_regionkey = r_regionkey and r_name = 'ASIA' "
        "and o_orderdate >= 19940101 and o_orderdate <= 19941231 "
        "group by n_name order by revenue desc"
    ),
    "Q6": (
        "select sum(l_extendedprice * l_discount) as revenue "
        "from lineitem "
        "where l_shipdate >= 19940101 and l_shipdate <= 19941231 "
        "and l_discount between 5 and 7 and l_quantity < 24"
    ),
    "Q7": (
        "select n_name, l_shipyear, "
        "sum(l_extendedprice * (100 - l_discount)) as revenue "
        "from supplier, lineitem, nation "
        "where s_suppkey = l_suppkey and s_nationkey = n_nationkey "
        "and n_name in ('FRANCE', 'GERMANY') "
        "and l_shipyear in (1995, 1996) "
        "group by n_name, l_shipyear order by n_name, l_shipyear"
    ),
}


def workload(database: Database, names: List[str] = None) -> List[WorkloadQuery]:
    """WorkloadQuery objects for the modified TPC-H queries."""
    selected = QUERIES if names is None else {n: QUERIES[n] for n in names}
    return sql_workload(database, selected)
