"""Execution tracing: a per-operator timeline of a simulated run.

Tracing is opt-in (it records one event per operator execution) and
feeds two views:

* :meth:`ExecutionTrace.timeline_text` — an ASCII Gantt chart per
  processor, handy to *see* thrashing, contention, and fallbacks;
* :meth:`ExecutionTrace.summary` — aggregate busy time per processor
  and per operator kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class TraceEvent:
    """One operator execution (or abort attempt).

    Aborted attempts carry the fault class that killed them ("oom",
    "pcie", "kernel", "stall", "heap", "reset"), and ``processor``
    names the device the attempt ran on — so a trace shows *which*
    device failed and why.
    """

    label: str
    kind: str
    processor: str
    query: str
    start: float
    end: float
    aborted: bool = False
    fault: Optional[str] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ExecutionTrace:
    """Recorded operator timeline of one workload run."""

    events: List[TraceEvent] = field(default_factory=list)

    def record(self, label: str, kind: str, processor: str, query: str,
               start: float, end: float, aborted: bool = False,
               fault: Optional[str] = None) -> None:
        self.events.append(
            TraceEvent(label, kind, processor, query, start, end, aborted,
                       fault)
        )

    def __len__(self) -> int:
        return len(self.events)

    # -- views ----------------------------------------------------------

    def processors(self) -> List[str]:
        names = sorted({e.processor for e in self.events})
        # host first, then the co-processors
        return sorted(names, key=lambda n: (n != "cpu", n))

    def busy_seconds(self) -> Dict[str, float]:
        """Total traced execution time per processor."""
        totals: Dict[str, float] = {}
        for event in self.events:
            totals[event.processor] = (
                totals.get(event.processor, 0.0) + event.duration
            )
        return totals

    def aborted_events(self) -> List[TraceEvent]:
        return [e for e in self.events if e.aborted]

    def summary(self) -> str:
        """Aggregate text summary (busy time, slowest operators)."""
        lines = ["trace: {} operator executions".format(len(self.events))]
        for processor, busy in sorted(self.busy_seconds().items()):
            count = sum(1 for e in self.events if e.processor == processor)
            lines.append(
                "  {:6s} {:6d} ops, {:.4f}s busy".format(
                    processor, count, busy
                )
            )
        aborted = self.aborted_events()
        if aborted:
            wasted = sum(e.duration for e in aborted)
            lines.append(
                "  {} aborted attempts, {:.4f}s wasted".format(
                    len(aborted), wasted
                )
            )
            by_fault: Dict[str, int] = {}
            for event in aborted:
                key = "{}@{}".format(event.fault or "?", event.processor)
                by_fault[key] = by_fault.get(key, 0) + 1
            lines.append(
                "  aborts by fault@device: "
                + ", ".join(
                    "{}={}".format(key, count)
                    for key, count in sorted(by_fault.items())
                )
            )
        slowest = sorted(self.events, key=lambda e: -e.duration)[:5]
        if slowest:
            lines.append("  slowest operators:")
            for event in slowest:
                lines.append(
                    "    {:.4f}s {} [{}] ({})".format(
                        event.duration, event.label, event.processor,
                        event.query,
                    )
                )
        return "\n".join(lines)

    def timeline_text(self, width: int = 78) -> str:
        """ASCII Gantt chart: one row per processor.

        ``#`` marks executed work, ``x`` marks aborted attempts.
        """
        if not self.events:
            return "(empty trace)"
        t0 = min(e.start for e in self.events)
        t1 = max(e.end for e in self.events)
        span = max(t1 - t0, 1e-12)
        lines = ["timeline {:.4f}s .. {:.4f}s".format(t0, t1)]
        for processor in self.processors():
            row = [" "] * width
            for event in self.events:
                if event.processor != processor:
                    continue
                lo = int((event.start - t0) / span * (width - 1))
                hi = max(int((event.end - t0) / span * (width - 1)), lo)
                mark = "x" if event.aborted else "#"
                for i in range(lo, hi + 1):
                    if row[i] != "x":  # aborts stay visible
                        row[i] = mark
            lines.append("{:>6s} |{}|".format(processor, "".join(row)))
        return "\n".join(lines)
