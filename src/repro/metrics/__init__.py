"""Measurement infrastructure for experiments."""

from repro.metrics.collector import (
    CancelledQueryRecord,
    MetricsCollector,
    QueryRecord,
)
from repro.metrics.trace import ExecutionTrace, TraceEvent

__all__ = [
    "CancelledQueryRecord",
    "ExecutionTrace",
    "MetricsCollector",
    "QueryRecord",
    "TraceEvent",
]
