"""Measurement infrastructure for experiments."""

from repro.metrics.collector import MetricsCollector, QueryRecord
from repro.metrics.trace import ExecutionTrace, TraceEvent

__all__ = ["ExecutionTrace", "MetricsCollector", "QueryRecord", "TraceEvent"]
