"""Collects the measurements the paper reports.

One :class:`MetricsCollector` instance accompanies one workload run and
records everything Figures 1–25 need:

* per-query latencies,
* PCIe transfer time and volume per direction, plus the channel
  queueing delay contended transfers spent waiting,
* copy-engine accounting: coalesced duplicate copies, background
  prefetch traffic and hits, and wire time overlapped with compute,
* operator abort counts and the *wasted time* metric (Sec. 6.2.2:
  time from operator begin to abort, accumulated),
* per-processor operator execution counts and busy time,
* peak device heap usage and cache hit statistics,
* fault-injection accounting: observed faults per class, retries,
  circuit-breaker transitions, and per-query abort attribution.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class QueryRecord:
    """Latency record for one executed query.

    Abort/retry attribution is keyed by query *name* at recording time,
    so when several in-flight queries share a name the counts land on
    whichever finishes next — exact for distinct names, name-level
    approximate under self-concurrency.
    """

    name: str
    user: int
    start: float
    end: float
    #: co-processor aborts attributed to this query
    aborts: int = 0
    #: accumulated begin-to-abort time attributed to this query
    wasted_seconds: float = 0.0
    #: transient-fault retries attributed to this query
    retries: int = 0
    #: service-mode attribution (None for batch runs)
    tenant: Optional[str] = None
    slo_class: Optional[str] = None
    #: when fair-share admission dispatched the query (``start`` is the
    #: arrival time, so ``admitted_at - start`` is the admission wait
    #: and ``end - admitted_at`` the service time)
    admitted_at: Optional[float] = None

    @property
    def latency(self) -> float:
        return self.end - self.start

    @property
    def wait_seconds(self) -> float:
        """Admission wait (zero for batch runs without service mode)."""
        if self.admitted_at is None:
            return 0.0
        return self.admitted_at - self.start

    @property
    def service_seconds(self) -> float:
        """Time from dispatch to completion."""
        if self.admitted_at is None:
            return self.latency
        return self.end - self.admitted_at


@dataclass
class CancelledQueryRecord:
    """One query that was cancelled (deadline or explicit) mid-flight."""

    name: str
    user: int
    start: float
    end: float
    reason: str = "cancelled"
    #: service-mode attribution (None for batch runs)
    tenant: Optional[str] = None
    slo_class: Optional[str] = None

    @property
    def latency(self) -> float:
        return self.end - self.start


@dataclass
class MetricsCollector:
    """Accumulates measurements during one simulated workload run."""

    #: seconds spent copying host -> device, and bytes moved
    cpu_to_gpu_seconds: float = 0.0
    cpu_to_gpu_bytes: int = 0
    #: seconds spent copying device -> host, and bytes moved
    gpu_to_cpu_seconds: float = 0.0
    gpu_to_cpu_bytes: int = 0
    #: time transfers spent *waiting* for a channel, per direction —
    #: contention, recorded separately from the wire time above
    h2d_queue_seconds: float = 0.0
    d2h_queue_seconds: float = 0.0
    #: copy-engine accounting: duplicate copies absorbed by in-flight
    #: coalescing, background prefetch copies, and demand accesses
    #: served from prefetched cache content
    coalesced_transfers: int = 0
    coalesced_bytes: int = 0
    prefetch_transfers: int = 0
    prefetch_bytes: int = 0
    prefetch_hits: int = 0
    #: wire seconds that elapsed while the destination device was
    #: computing — the transfer/compute overlap the engine buys
    overlapped_transfer_seconds: float = 0.0
    #: number of operators that aborted on the co-processor
    aborts: int = 0
    #: accumulated time from operator begin to abort (paper's metric)
    wasted_seconds: float = 0.0
    #: cache behaviour
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    #: operator counts per processor name
    operators_per_processor: Counter = field(default_factory=Counter)
    #: executions per selected algorithm (HyPE's algorithm selection)
    algorithms: Counter = field(default_factory=Counter)
    #: busy seconds per processor name
    busy_seconds: Dict[str, float] = field(default_factory=dict)
    #: peak bytes allocated on the device heap
    peak_heap_bytes: int = 0
    #: observed fault aborts per fault class ("oom", "pcie", ...)
    faults: Counter = field(default_factory=Counter)
    #: observed fault aborts per (fault class, device)
    faults_per_device: Counter = field(default_factory=Counter)
    #: transient-fault retries (total and per device)
    retries: int = 0
    retries_per_device: Counter = field(default_factory=Counter)
    #: circuit-breaker transitions: (device, old_state, new_state, time)
    breaker_transitions: List[Tuple[str, str, str, float]] = field(
        default_factory=list
    )
    #: operator attempts denied because a device's breaker was open
    breaker_skips: Counter = field(default_factory=Counter)
    #: per-query latency records
    queries: List[QueryRecord] = field(default_factory=list)
    #: abort/wasted/retry totals per query name not yet attributed to a
    #: finished QueryRecord (drained by record_query)
    _pending_aborts: Counter = field(default_factory=Counter, repr=False)
    _pending_wasted: Dict[str, float] = field(default_factory=dict, repr=False)
    _pending_retries: Counter = field(default_factory=Counter, repr=False)
    #: query-lifecycle accounting (admission control / deadlines /
    #: hedging; all zero when the lifecycle layer is off)
    admission_waits: int = 0
    admission_wait_seconds: float = 0.0
    admission_queue_peak: int = 0
    sheds: Counter = field(default_factory=Counter)
    degraded_to_cpu: Counter = field(default_factory=Counter)
    deadline_misses: Counter = field(default_factory=Counter)
    cancels: int = 0
    cancel_seconds: float = 0.0
    cancelled_queries: List[CancelledQueryRecord] = field(
        default_factory=list
    )
    cancelled_task_skips: int = 0
    hedges_started: int = 0
    hedge_wins: int = 0
    hedge_losses: int = 0
    #: straggler-hedging wasted time: seconds the losing copy of a
    #: hedged operator had already executed when the race resolved
    hedge_wasted_seconds: float = 0.0
    #: intra-operator split-execution accounting
    #: (repro.engine.execution.split; all zero when --split is off)
    split_operators: int = 0
    split_rebalances: int = 0
    split_degrades: int = 0
    split_declines: Counter = field(default_factory=Counter)
    split_chosen_ratio_sum: float = 0.0
    split_realized_ratio_sum: float = 0.0
    split_gpu_seconds: float = 0.0
    split_cpu_seconds: float = 0.0
    split_wasted_seconds: float = 0.0
    #: fused morsel-execution accounting (repro.engine.morsel; all zero
    #: when the morsel path is off)
    morsels_executed: int = 0
    fused_queries: int = 0
    fused_operators: int = 0
    partial_merges: int = 0
    declined_queries: int = 0
    shm_attach_seconds: float = 0.0
    shm_attaches: int = 0
    #: self-healing morsel-pool accounting (harness.parallel.MorselPool;
    #: all zero when no pool ran or no process faults fired)
    worker_crashes: int = 0
    worker_hangs: int = 0
    heartbeat_misses: int = 0
    worker_restarts: int = 0
    worker_slow_exits: int = 0
    worker_init_failures: int = 0
    chunk_requeues: int = 0
    chunk_quarantines: int = 0
    pool_degrades: int = 0
    pool_degrade_reason: Optional[str] = None
    degraded_chunks: int = 0
    pool_fallbacks: int = 0
    float_gate_declines: int = 0
    shm_reexports: int = 0
    shm_integrity_failures: int = 0
    shm_orphans_reaped: int = 0
    #: planned process faults per class (crash/hang/slowexit/unlinkrace)
    process_faults: Counter = field(default_factory=Counter)
    #: order-sensitive digest of the planned process-fault schedule
    process_fault_digest: Optional[str] = None
    #: service-mode accounting (harness.service; all zero/empty when no
    #: service harness ran — the batch path never touches these)
    arrivals_by_tenant: Counter = field(default_factory=Counter)
    arrivals_by_class: Counter = field(default_factory=Counter)
    sheds_by_tenant: Counter = field(default_factory=Counter)
    sheds_by_class: Counter = field(default_factory=Counter)
    degraded_by_tenant: Counter = field(default_factory=Counter)
    degraded_by_class: Counter = field(default_factory=Counter)
    #: chaos blame per tenant: fault aborts, wasted time, retries
    aborts_by_tenant: Counter = field(default_factory=Counter)
    wasted_by_tenant: Dict[str, float] = field(default_factory=dict)
    retries_by_tenant: Counter = field(default_factory=Counter)
    faults_by_tenant: Counter = field(default_factory=Counter)
    #: table epochs advanced by concurrent appends, and snapshots whose
    #: caches were invalidated through the registry after draining
    service_epochs: int = 0
    snapshots_retired: int = 0
    #: starvation-guard activations (an aged head request served out of
    #: deficit order)
    starvation_promotions: int = 0
    #: makespan of the run (set by the harness)
    workload_seconds: float = 0.0
    #: *wall-clock* seconds per harness phase (plan / des / numpy /
    #: validate) — the real time the host spends producing a run, as
    #: opposed to every other field, which is simulated time.  This is
    #: what the throughput benchmarks optimise.
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    # -- recording hooks ---------------------------------------------

    def record_transfer(self, direction: str, nbytes: int, seconds: float) -> None:
        """Record one PCIe transfer; direction is 'h2d' or 'd2h'."""
        if direction == "h2d":
            self.cpu_to_gpu_seconds += seconds
            self.cpu_to_gpu_bytes += nbytes
        elif direction == "d2h":
            self.gpu_to_cpu_seconds += seconds
            self.gpu_to_cpu_bytes += nbytes
        else:
            raise ValueError("unknown transfer direction {!r}".format(direction))

    def record_transfer_queueing(self, direction: str, seconds: float) -> None:
        """Record time one transfer spent queued for a channel."""
        if direction == "h2d":
            self.h2d_queue_seconds += seconds
        elif direction == "d2h":
            self.d2h_queue_seconds += seconds
        else:
            raise ValueError("unknown transfer direction {!r}".format(direction))

    def record_coalesced(self, nbytes: int) -> None:
        """Record a copy absorbed by an identical in-flight transfer."""
        self.coalesced_transfers += 1
        self.coalesced_bytes += nbytes

    def record_prefetch(self, nbytes: int) -> None:
        """Record one completed background prefetch copy."""
        self.prefetch_transfers += 1
        self.prefetch_bytes += nbytes

    def record_prefetch_hit(self) -> None:
        """Record a demand access served from prefetched cache content."""
        self.prefetch_hits += 1

    def record_overlapped_transfer(self, seconds: float) -> None:
        """Record wire time that overlapped compute on its device."""
        self.overlapped_transfer_seconds += seconds

    def record_abort(self, wasted_seconds: float,
                     query: Optional[str] = None,
                     device: Optional[str] = None,
                     fault: Optional[str] = None,
                     tenant: Optional[str] = None) -> None:
        """Record a co-processor operator abort and its wasted time.

        ``query``/``device``/``fault`` (the fault class, e.g. ``"oom"``
        or ``"pcie"``) attribute the abort for the per-query and
        per-fault-class reports; ``tenant`` additionally blames service
        chaos to the owning tenant (exact, unlike the name-keyed query
        attribution).  Legacy call sites passing only the wasted time
        keep recording the global totals.
        """
        self.aborts += 1
        self.wasted_seconds += wasted_seconds
        if fault is not None:
            self.faults[fault] += 1
            if device is not None:
                self.faults_per_device[(fault, device)] += 1
            if tenant is not None:
                self.faults_by_tenant[(fault, tenant)] += 1
        if tenant is not None:
            self.aborts_by_tenant[tenant] += 1
            self.wasted_by_tenant[tenant] = (
                self.wasted_by_tenant.get(tenant, 0.0) + wasted_seconds
            )
        if query is not None:
            self._pending_aborts[query] += 1
            self._pending_wasted[query] = (
                self._pending_wasted.get(query, 0.0) + wasted_seconds
            )

    def record_retry(self, device: Optional[str] = None,
                     fault: Optional[str] = None,
                     query: Optional[str] = None,
                     tenant: Optional[str] = None) -> None:
        """Record one transient-fault retry of a device attempt."""
        self.retries += 1
        if device is not None:
            self.retries_per_device[device] += 1
        if query is not None:
            self._pending_retries[query] += 1
        if tenant is not None:
            self.retries_by_tenant[tenant] += 1

    def record_breaker_transition(self, device: str, old_state: str,
                                  new_state: str, now: float) -> None:
        """Record a circuit-breaker state change on ``device``."""
        self.breaker_transitions.append((device, old_state, new_state, now))

    def record_breaker_skip(self, device: str) -> None:
        """Record an attempt denied because the device's breaker was open."""
        self.breaker_skips[device] += 1

    def record_cache_hit(self) -> None:
        self.cache_hits += 1

    def record_cache_miss(self) -> None:
        self.cache_misses += 1

    def record_cache_eviction(self) -> None:
        self.cache_evictions += 1

    def record_operator(self, processor_name: str, busy_seconds: float) -> None:
        """Record one completed operator execution."""
        self.operators_per_processor[processor_name] += 1
        self.busy_seconds[processor_name] = (
            self.busy_seconds.get(processor_name, 0.0) + busy_seconds
        )

    def record_algorithm(self, cost_key: str) -> None:
        """Record the algorithm HyPE selected for one execution."""
        self.algorithms[cost_key] += 1

    def record_heap_usage(self, used_bytes: int) -> None:
        if used_bytes > self.peak_heap_bytes:
            self.peak_heap_bytes = used_bytes

    def record_query(self, name: str, user: int, start: float, end: float,
                     tenant: Optional[str] = None,
                     slo_class: Optional[str] = None,
                     admitted_at: Optional[float] = None) -> None:
        """Record one finished query, draining the abort/retry totals
        attributed to its name since the previous record."""
        self.queries.append(QueryRecord(
            name=name, user=user, start=start, end=end,
            aborts=self._pending_aborts.pop(name, 0),
            wasted_seconds=self._pending_wasted.pop(name, 0.0),
            retries=self._pending_retries.pop(name, 0),
            tenant=tenant, slo_class=slo_class, admitted_at=admitted_at,
        ))

    # -- query-lifecycle hooks ----------------------------------------

    def record_admission_wait(self, name: str, seconds: float) -> None:
        """Record one query admitted after queueing behind the gate."""
        self.admission_waits += 1
        self.admission_wait_seconds += seconds

    def record_admission_queue_depth(self, depth: int) -> None:
        """Track the deepest the admission queue ever got."""
        if depth > self.admission_queue_peak:
            self.admission_queue_peak = depth

    def record_shed(self, name: str, tenant: Optional[str] = None,
                    slo_class: Optional[str] = None) -> None:
        """Record one query rejected by the shed overload policy."""
        self.sheds[name] += 1
        if tenant is not None:
            self.sheds_by_tenant[tenant] += 1
        if slo_class is not None:
            self.sheds_by_class[slo_class] += 1

    def record_degraded(self, name: str, tenant: Optional[str] = None,
                        slo_class: Optional[str] = None) -> None:
        """Record one query admitted under degrade-to-cpu."""
        self.degraded_to_cpu[name] += 1
        if tenant is not None:
            self.degraded_by_tenant[tenant] += 1
        if slo_class is not None:
            self.degraded_by_class[slo_class] += 1

    def record_deadline_miss(self, name: str) -> None:
        """Record one query whose deadline elapsed before it finished."""
        self.deadline_misses[name] += 1

    def record_cancel(self, name: str, latency_seconds: float) -> None:
        """Record one completed cancellation and its latency (cancel
        request to the last in-flight worker fully stopped)."""
        self.cancels += 1
        self.cancel_seconds += latency_seconds

    def record_cancelled_query(self, name: str, user: int, start: float,
                               end: float, reason: str,
                               tenant: Optional[str] = None,
                               slo_class: Optional[str] = None) -> None:
        """Record a query that was cancelled instead of finishing;
        drains the pending per-name fault attribution like
        :meth:`record_query` so counts cannot leak onto a later run."""
        self._pending_aborts.pop(name, 0)
        self._pending_wasted.pop(name, 0.0)
        self._pending_retries.pop(name, 0)
        self.cancelled_queries.append(CancelledQueryRecord(
            name=name, user=user, start=start, end=end, reason=reason,
            tenant=tenant, slo_class=slo_class,
        ))

    def record_cancelled_skip(self) -> None:
        """Record a queued operator task skipped because its query was
        cancelled before a worker picked it up."""
        self.cancelled_task_skips += 1

    def record_hedge_started(self) -> None:
        """Record a straggling operator hedged onto the CPU pool."""
        self.hedges_started += 1

    def record_hedge_win(self) -> None:
        """Record a hedge whose CPU copy finished first."""
        self.hedge_wins += 1

    def record_hedge_loss(self) -> None:
        """Record a hedge whose original placement finished first."""
        self.hedge_losses += 1

    def record_hedge_wasted(self, seconds: float) -> None:
        """Record time the losing copy of a hedged operator had spent
        executing when the race resolved — hedging's wasted work."""
        self.hedge_wasted_seconds += seconds

    # -- split-execution hooks ----------------------------------------

    def record_split(self, chosen_ratio: float, realized_ratio: float,
                     rebalances: int, gpu_seconds: float,
                     cpu_seconds: float, degraded: bool = False) -> None:
        """Record one operator executed on the CPU/GPU split path.

        ``chosen_ratio`` is the GPU work fraction the cost model picked
        up front; ``realized_ratio`` the fraction the GPU actually
        completed (lower when the split degraded mid-operator)."""
        self.split_operators += 1
        self.split_rebalances += rebalances
        if degraded:
            self.split_degrades += 1
        self.split_chosen_ratio_sum += chosen_ratio
        self.split_realized_ratio_sum += realized_ratio
        self.split_gpu_seconds += gpu_seconds
        self.split_cpu_seconds += cpu_seconds

    def record_split_decline(self, reason: str) -> None:
        """Record one operator the split path declined (ran pure)."""
        self.split_declines[reason] += 1

    def record_split_wasted(self, seconds: float) -> None:
        """Record GPU time lost when a split half aborted mid-round."""
        self.split_wasted_seconds += seconds

    # -- service-mode hooks -------------------------------------------

    def record_arrival(self, tenant: str, slo_class: str) -> None:
        """Record one streaming query arrival (before admission)."""
        self.arrivals_by_tenant[tenant] += 1
        self.arrivals_by_class[slo_class] += 1

    def record_service_epoch(self) -> None:
        """Record one append batch advancing the table epoch."""
        self.service_epochs += 1

    def record_snapshot_retired(self) -> None:
        """Record one drained snapshot invalidated via the registry."""
        self.snapshots_retired += 1

    def record_starvation_promotion(self) -> None:
        """Record the starvation guard serving an aged tenant queue
        head ahead of the deficit round-robin order."""
        self.starvation_promotions += 1

    def record_phase(self, phase: str, wall_seconds: float) -> None:
        """Accumulate wall-clock time into one harness phase bucket."""
        self.phase_seconds[phase] = (
            self.phase_seconds.get(phase, 0.0) + wall_seconds
        )

    # -- derived views -----------------------------------------------

    @property
    def transfer_seconds(self) -> float:
        """Total PCIe time in both directions."""
        return self.cpu_to_gpu_seconds + self.gpu_to_cpu_seconds

    @property
    def transfer_queue_seconds(self) -> float:
        """Total channel-queueing delay in both directions."""
        return self.h2d_queue_seconds + self.d2h_queue_seconds

    @property
    def overlap_ratio(self) -> float:
        """Fraction of wire time overlapped with device compute."""
        if self.transfer_seconds <= 0:
            return 0.0
        return self.overlapped_transfer_seconds / self.transfer_seconds

    @property
    def bus_utilization(self) -> float:
        """Wire seconds per makespan second.  Above 1.0 means the
        full-duplex channels moved data faster than one serialized bus
        ever could."""
        if self.workload_seconds <= 0:
            return 0.0
        return self.transfer_seconds / self.workload_seconds

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        if total == 0:
            return 0.0
        return self.cache_hits / total

    def mean_latency(self, query_name: Optional[str] = None) -> float:
        """Mean latency over all queries (optionally one query name)."""
        records = [
            q for q in self.queries if query_name is None or q.name == query_name
        ]
        if not records:
            return 0.0
        return sum(q.latency for q in records) / len(records)

    def latencies_by_query(self) -> Dict[str, float]:
        """Mean latency keyed by query name."""
        names = sorted({q.name for q in self.queries})
        return {name: self.mean_latency(name) for name in names}

    def latency_percentile(self, fraction: float,
                           query_name: Optional[str] = None) -> float:
        """Latency percentile over all (or one query's) executions.

        ``fraction`` in [0, 1]; uses the nearest-rank method, so the
        returned value is always an observed latency.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("percentile fraction must be in [0, 1]")
        latencies = sorted(
            q.latency for q in self.queries
            if query_name is None or q.name == query_name
        )
        if not latencies:
            return 0.0
        rank = min(int(fraction * len(latencies)), len(latencies) - 1)
        return latencies[rank]

    def tail_latency_report(self) -> Dict[str, Dict[str, float]]:
        """p50/p95/p99 per query — the robustness view the paper's
        worst-case-execution-time goal implies."""
        report: Dict[str, Dict[str, float]] = {}
        for name in sorted({q.name for q in self.queries}):
            report[name] = {
                "p50": self.latency_percentile(0.50, name),
                "p95": self.latency_percentile(0.95, name),
                "p99": self.latency_percentile(0.99, name),
            }
        return report

    def summary(self) -> Dict[str, float]:
        """Flat dictionary used by the harness table printers."""
        return {
            "workload_seconds": self.workload_seconds,
            "cpu_to_gpu_seconds": self.cpu_to_gpu_seconds,
            "gpu_to_cpu_seconds": self.gpu_to_cpu_seconds,
            "cpu_to_gpu_gib": self.cpu_to_gpu_bytes / float(1 << 30),
            "gpu_to_cpu_gib": self.gpu_to_cpu_bytes / float(1 << 30),
            "transfer_queue_seconds": self.transfer_queue_seconds,
            "bus_utilization": self.bus_utilization,
            "overlap_ratio": self.overlap_ratio,
            "coalesced_transfers": float(self.coalesced_transfers),
            "prefetch_transfers": float(self.prefetch_transfers),
            "prefetch_hits": float(self.prefetch_hits),
            "aborts": float(self.aborts),
            "wasted_seconds": self.wasted_seconds,
            "cache_hit_rate": self.cache_hit_rate,
            "peak_heap_gib": self.peak_heap_bytes / float(1 << 30),
        }

    def breaker_transition_counts(self) -> Dict[str, int]:
        """Breaker transitions by target state (open / half_open / closed)."""
        counts: Counter = Counter()
        for _device, _old, new_state, _now in self.breaker_transitions:
            counts[new_state] += 1
        return dict(counts)

    def breaker_open_seconds(
        self, until: Optional[float] = None
    ) -> Dict[str, float]:
        """Simulated seconds each device's breaker spent OPEN.

        Rebuilt from the transition log; an interval still open at the
        end of the run is closed at ``until`` (default: the makespan,
        or the last transition when no makespan was recorded yet).
        Deadline-miss attribution uses this to distinguish
        breaker-open waits from genuine stalls.
        """
        if until is None:
            until = self.workload_seconds
            if not until and self.breaker_transitions:
                until = max(now for _, _, _, now in self.breaker_transitions)
        open_since: Dict[str, float] = {}
        totals: Dict[str, float] = {}
        for device, _old, new_state, now in self.breaker_transitions:
            if new_state == "open":
                open_since.setdefault(device, now)
            elif device in open_since:
                totals[device] = (
                    totals.get(device, 0.0) + now - open_since.pop(device)
                )
        for device, since in open_since.items():
            totals[device] = (
                totals.get(device, 0.0) + max(until - since, 0.0)
            )
        return totals

    def fault_summary(self) -> Dict[str, float]:
        """Fault/resilience view: observed fault aborts per class plus
        retry and breaker totals (all zero when injection is off)."""
        open_seconds = self.breaker_open_seconds()
        summary: Dict[str, float] = {
            "fault_aborts": float(sum(self.faults.values())),
            "retries": float(self.retries),
            "breaker_skips": float(sum(self.breaker_skips.values())),
            "breaker_open_seconds": sum(open_seconds.values()),
        }
        for fault_class, count in sorted(self.faults.items()):
            summary["fault_{}".format(fault_class)] = float(count)
        for state, count in sorted(self.breaker_transition_counts().items()):
            summary["breaker_to_{}".format(state)] = float(count)
        for device, seconds in sorted(open_seconds.items()):
            summary["breaker_open_seconds_{}".format(device)] = seconds
        # service mode: blame chaos to the affected tenant, not just
        # the device (keys absent for batch runs — nothing recorded)
        for tenant, count in sorted(self.aborts_by_tenant.items()):
            summary["fault_aborts_{}".format(tenant)] = float(count)
        for tenant, seconds in sorted(self.wasted_by_tenant.items()):
            summary["wasted_seconds_{}".format(tenant)] = seconds
        return summary

    @staticmethod
    def _rank(sorted_values: List[float], fraction: float) -> float:
        """Nearest-rank percentile over a pre-sorted list."""
        if not sorted_values:
            return 0.0
        rank = min(int(fraction * len(sorted_values)),
                   len(sorted_values) - 1)
        return sorted_values[rank]

    def slo_ledger(
        self, targets: Optional[Dict[str, float]] = None
    ) -> Dict[str, Dict[str, float]]:
        """Per-SLO-class service ledger (empty for batch runs).

        For every class that saw traffic: arrival/completion/shed/
        degrade/cancel counts, completed-latency percentiles
        (p50/p99/p999 over arrival-to-completion), admission wait vs
        service time, chaos attribution, and — when ``targets`` maps
        the class to a latency target in simulated seconds — the
        attainment: the fraction of *arrived* queries that completed
        within the target, so shed and cancelled queries count against
        it."""
        targets = targets or {}
        classes = set(self.arrivals_by_class)
        classes.update(q.slo_class for q in self.queries
                       if q.slo_class is not None)
        ledger: Dict[str, Dict[str, float]] = {}
        for cls in sorted(classes):
            records = [q for q in self.queries if q.slo_class == cls]
            cancelled = [c for c in self.cancelled_queries
                         if c.slo_class == cls]
            latencies = sorted(q.latency for q in records)
            arrived = self.arrivals_by_class.get(cls, len(records))
            entry = {
                "arrivals": float(arrived),
                "completed": float(len(records)),
                "shed": float(self.sheds_by_class.get(cls, 0)),
                "degraded": float(self.degraded_by_class.get(cls, 0)),
                "cancelled": float(len(cancelled)),
                "p50": self._rank(latencies, 0.50),
                "p99": self._rank(latencies, 0.99),
                "p999": self._rank(latencies, 0.999),
                "mean_wait": (
                    sum(q.wait_seconds for q in records) / len(records)
                    if records else 0.0
                ),
                "mean_service": (
                    sum(q.service_seconds for q in records) / len(records)
                    if records else 0.0
                ),
                "aborts": float(sum(q.aborts for q in records)),
                "wasted_seconds": sum(q.wasted_seconds for q in records),
                "retries": float(sum(q.retries for q in records)),
            }
            if cls in targets:
                target = targets[cls]
                within = sum(1 for q in records if q.latency <= target)
                entry["target"] = target
                entry["attainment"] = (
                    within / arrived if arrived else 1.0
                )
            ledger[cls] = entry
        return ledger

    def tenant_ledger(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant service ledger (empty for batch runs)."""
        tenants = set(self.arrivals_by_tenant)
        tenants.update(q.tenant for q in self.queries
                       if q.tenant is not None)
        ledger: Dict[str, Dict[str, float]] = {}
        for tenant in sorted(tenants):
            records = [q for q in self.queries if q.tenant == tenant]
            latencies = sorted(q.latency for q in records)
            ledger[tenant] = {
                "arrivals": float(self.arrivals_by_tenant.get(
                    tenant, len(records))),
                "completed": float(len(records)),
                "shed": float(self.sheds_by_tenant.get(tenant, 0)),
                "degraded": float(self.degraded_by_tenant.get(tenant, 0)),
                "cancelled": float(sum(
                    1 for c in self.cancelled_queries
                    if c.tenant == tenant)),
                "p50": self._rank(latencies, 0.50),
                "p99": self._rank(latencies, 0.99),
                "mean_wait": (
                    sum(q.wait_seconds for q in records) / len(records)
                    if records else 0.0
                ),
                "aborts": float(self.aborts_by_tenant.get(tenant, 0)),
                "wasted_seconds": self.wasted_by_tenant.get(tenant, 0.0),
                "retries": float(self.retries_by_tenant.get(tenant, 0)),
            }
        return ledger

    def tenant_fault_report(self) -> Dict[str, Dict[str, float]]:
        """Chaos blame per tenant: fault-class counts plus abort,
        wasted-time, and retry totals (empty when nothing faulted under
        a tenant-attributed query)."""
        report: Dict[str, Dict[str, float]] = {}
        for (fault_class, tenant), count in sorted(
                self.faults_by_tenant.items()):
            entry = report.setdefault(tenant, {})
            entry["fault_{}".format(fault_class)] = float(count)
        for tenant in sorted(self.aborts_by_tenant):
            entry = report.setdefault(tenant, {})
            entry["aborts"] = float(self.aborts_by_tenant[tenant])
            entry["wasted_seconds"] = self.wasted_by_tenant.get(
                tenant, 0.0)
        for tenant, count in sorted(self.retries_by_tenant.items()):
            report.setdefault(tenant, {})["retries"] = float(count)
        return report

    def service_summary(self) -> Dict[str, float]:
        """Service-mode view: open-system traffic, fair-share, and
        epoch-mutation totals (all zero when no service harness ran)."""
        return {
            "arrivals": float(sum(self.arrivals_by_tenant.values())),
            "tenants": float(len(self.arrivals_by_tenant)),
            "tenant_sheds": float(sum(self.sheds_by_tenant.values())),
            "tenant_degrades": float(sum(
                self.degraded_by_tenant.values())),
            "starvation_promotions": float(self.starvation_promotions),
            "service_epochs": float(self.service_epochs),
            "snapshots_retired": float(self.snapshots_retired),
        }

    def lifecycle_summary(self) -> Dict[str, float]:
        """Query-lifecycle view: backpressure, deadline, cancel, and
        hedging totals (all zero when the lifecycle layer is off)."""
        return {
            "admission_waits": float(self.admission_waits),
            "admission_wait_seconds": self.admission_wait_seconds,
            "admission_queue_peak": float(self.admission_queue_peak),
            "shed_queries": float(sum(self.sheds.values())),
            "degraded_queries": float(sum(self.degraded_to_cpu.values())),
            "deadline_misses": float(sum(self.deadline_misses.values())),
            "cancelled_queries": float(len(self.cancelled_queries)),
            "cancels_drained": float(self.cancels),
            "cancel_seconds": self.cancel_seconds,
            "mean_cancel_latency": (
                self.cancel_seconds / self.cancels if self.cancels else 0.0
            ),
            "cancelled_task_skips": float(self.cancelled_task_skips),
            "hedges_started": float(self.hedges_started),
            "hedge_wins": float(self.hedge_wins),
            "hedge_losses": float(self.hedge_losses),
            "hedge_wasted_seconds": self.hedge_wasted_seconds,
        }

    def split_summary(self) -> Dict[str, float]:
        """Split-execution view: operators split, mean chosen/realized
        GPU ratios, rebalances, degrades, per-side busy time, and
        decline totals (all zero when the split path is off)."""
        ops = self.split_operators
        return {
            "split_operators": float(ops),
            "split_mean_chosen_ratio": (
                self.split_chosen_ratio_sum / ops if ops else 0.0
            ),
            "split_mean_realized_ratio": (
                self.split_realized_ratio_sum / ops if ops else 0.0
            ),
            "split_rebalances": float(self.split_rebalances),
            "split_degrades": float(self.split_degrades),
            "split_declines": float(sum(self.split_declines.values())),
            "split_gpu_seconds": self.split_gpu_seconds,
            "split_cpu_seconds": self.split_cpu_seconds,
            "split_wasted_seconds": self.split_wasted_seconds,
        }

    def per_query_fault_report(self) -> Dict[str, Dict[str, float]]:
        """Aborts, wasted time, and retries aggregated per query name."""
        report: Dict[str, Dict[str, float]] = {}
        for record in self.queries:
            entry = report.setdefault(record.name, {
                "executions": 0.0, "aborts": 0.0,
                "wasted_seconds": 0.0, "retries": 0.0,
            })
            entry["executions"] += 1
            entry["aborts"] += record.aborts
            entry["wasted_seconds"] += record.wasted_seconds
            entry["retries"] += record.retries
        return report

    def phase_report(self) -> Dict[str, float]:
        """Wall-clock phase breakdown, with a computed total."""
        report = dict(self.phase_seconds)
        report["total"] = sum(self.phase_seconds.values())
        return report

    def record_morsel_stats(self, delta: Dict[str, float],
                            shm_delta: Optional[Dict[str, float]] = None
                            ) -> None:
        """Absorb a morsel-stats delta (and optionally an shm-stats
        delta) measured around one workload run."""
        self.morsels_executed += int(delta.get("morsels", 0))
        self.fused_queries += int(delta.get("fused_queries", 0))
        self.fused_operators += int(delta.get("fused_operators", 0))
        self.partial_merges += int(delta.get("partial_merges", 0))
        self.declined_queries += int(delta.get("declined_queries", 0))
        if shm_delta:
            self.shm_attach_seconds += float(
                shm_delta.get("attach_seconds", 0.0)
            )
            self.shm_attaches += int(shm_delta.get("attaches", 0))

    def morsel_summary(self) -> Dict[str, float]:
        """Fused-execution view: morsel/fusion counters plus mean fused
        chain length (all zero when the morsel path is off)."""
        return {
            "morsels_executed": float(self.morsels_executed),
            "fused_queries": float(self.fused_queries),
            "fused_operators": float(self.fused_operators),
            "fused_chain_length": (
                self.fused_operators / self.fused_queries
                if self.fused_queries else 0.0
            ),
            "partial_merges": float(self.partial_merges),
            "declined_queries": float(self.declined_queries),
            "shm_attaches": float(self.shm_attaches),
            "shm_attach_seconds": self.shm_attach_seconds,
        }

    def record_pool(self, counters: Dict[str, int],
                    process_faults: Optional[Dict[str, int]] = None,
                    process_fault_digest: Optional[str] = None,
                    degraded: Optional[str] = None,
                    fallbacks: int = 0,
                    orphans_reaped: int = 0) -> None:
        """Absorb one MorselPool run's self-healing counters."""
        self.worker_crashes += int(counters.get("worker_crashes", 0))
        self.worker_hangs += int(counters.get("worker_hangs", 0))
        self.heartbeat_misses += int(counters.get("heartbeat_misses", 0))
        self.worker_restarts += int(counters.get("worker_restarts", 0))
        self.worker_slow_exits += int(counters.get("worker_slow_exits", 0))
        self.worker_init_failures += int(
            counters.get("worker_init_failures", 0))
        self.chunk_requeues += int(counters.get("chunk_requeues", 0))
        self.chunk_quarantines += int(counters.get("chunk_quarantines", 0))
        self.pool_degrades += int(counters.get("pool_degrades", 0))
        self.degraded_chunks += int(counters.get("degraded_chunks", 0))
        self.float_gate_declines += int(
            counters.get("float_gate_declines", 0))
        self.shm_reexports += int(counters.get("shm_reexports", 0))
        self.shm_integrity_failures += int(
            counters.get("shm_integrity_failures", 0))
        self.pool_fallbacks += int(fallbacks)
        self.shm_orphans_reaped += int(orphans_reaped)
        if degraded is not None:
            self.pool_degrade_reason = degraded
        if process_faults:
            self.process_faults.update(process_faults)
        if process_fault_digest is not None:
            self.process_fault_digest = process_fault_digest

    def pool_summary(self) -> Dict[str, float]:
        """Self-healing pool view: crash/hang recovery, quarantine, and
        shm-integrity counters (all zero when no pool ran faulted)."""
        return {
            "worker_crashes": float(self.worker_crashes),
            "worker_hangs": float(self.worker_hangs),
            "heartbeat_misses": float(self.heartbeat_misses),
            "worker_restarts": float(self.worker_restarts),
            "worker_slow_exits": float(self.worker_slow_exits),
            "worker_init_failures": float(self.worker_init_failures),
            "chunk_requeues": float(self.chunk_requeues),
            "chunk_quarantines": float(self.chunk_quarantines),
            "pool_degrades": float(self.pool_degrades),
            "degraded_chunks": float(self.degraded_chunks),
            "pool_fallbacks": float(self.pool_fallbacks),
            "float_gate_declines": float(self.float_gate_declines),
            "shm_reexports": float(self.shm_reexports),
            "shm_integrity_failures": float(self.shm_integrity_failures),
            "shm_orphans_reaped": float(self.shm_orphans_reaped),
            "process_faults_planned": float(sum(
                self.process_faults.values())),
        }
