"""Learned cost models.

HyPE fits ``time = a + b * input_bytes`` per (operator kind, processor
kind) by least squares over the observation history.  Before enough
observations exist, estimates fall back to the analytical calibration
profile — mirroring how HyPE bootstraps its learning-based models.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.hardware.calibration import EngineProfile
from repro.hardware.processor import ProcessorKind
from repro.hype.observation import ObservationStore


class LearnedCostModel:
    """Per-operator-kind linear regression with analytical fallback."""

    def __init__(
        self,
        profile: EngineProfile,
        store: Optional[ObservationStore] = None,
        min_observations: int = 8,
        refit_interval: int = 16,
    ):
        self.profile = profile
        self.store = store if store is not None else ObservationStore()
        self.min_observations = min_observations
        self.refit_interval = refit_interval
        self._fits: Dict[Tuple[str, ProcessorKind], Tuple[float, float]] = {}
        self._since_fit: Dict[Tuple[str, ProcessorKind], int] = {}

    # -- learning -------------------------------------------------------

    def observe(self, op_kind: str, processor_kind: ProcessorKind,
                input_bytes: float, seconds: float) -> None:
        """Record a measured execution and refit lazily."""
        self.store.add(op_kind, processor_kind, input_bytes, seconds)
        key = (op_kind, processor_kind)
        self._since_fit[key] = self._since_fit.get(key, 0) + 1
        if key not in self._fits or self._since_fit[key] >= self.refit_interval:
            self._refit(key)

    def _refit(self, key: Tuple[str, ProcessorKind]) -> None:
        observations = self.store.get(*key)
        if len(observations) < self.min_observations:
            return
        x = np.array([o.input_bytes for o in observations])
        y = np.array([o.seconds for o in observations])
        if np.ptp(x) == 0:
            # Degenerate input sizes: constant model.
            self._fits[key] = (float(y.mean()), 0.0)
        else:
            design = np.vstack([np.ones_like(x), x]).T
            (a, b), *_ = np.linalg.lstsq(design, y, rcond=None)
            self._fits[key] = (float(a), float(b))
        self._since_fit[key] = 0

    # -- estimation -------------------------------------------------------

    def is_learned(self, op_kind: str, processor_kind: ProcessorKind) -> bool:
        """True once a fitted model (not the fallback) is in use."""
        return (op_kind, processor_kind) in self._fits

    def estimate(self, op_kind: str, processor_kind: ProcessorKind,
                 input_bytes: float) -> float:
        """Estimated runtime; never negative."""
        fit = self._fits.get((op_kind, processor_kind))
        if fit is None:
            return self.profile.compute_seconds(
                op_kind, processor_kind, input_bytes
            )
        a, b = fit
        return max(a + b * input_bytes, 0.0)
