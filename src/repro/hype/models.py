"""Learned cost models.

HyPE fits ``time = a + b * input_bytes`` per (operator kind, processor
kind) by least squares over the observation history.  Before enough
observations exist, estimates fall back to the analytical calibration
profile — mirroring how HyPE bootstraps its learning-based models.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.hardware.calibration import EngineProfile
from repro.hardware.processor import ProcessorKind
from repro.hype.observation import ObservationStore


class LearnedCostModel:
    """Per-operator-kind linear regression with analytical fallback."""

    def __init__(
        self,
        profile: EngineProfile,
        store: Optional[ObservationStore] = None,
        min_observations: int = 8,
        refit_interval: int = 16,
    ):
        self.profile = profile
        self.store = store if store is not None else ObservationStore()
        self.min_observations = min_observations
        self.refit_interval = refit_interval
        self._fits: Dict[Tuple[str, ProcessorKind], Tuple[float, float]] = {}
        self._since_fit: Dict[Tuple[str, ProcessorKind], int] = {}

    # -- learning -------------------------------------------------------

    def observe(self, op_kind: str, processor_kind: ProcessorKind,
                input_bytes: float, seconds: float,
                source: str = "pure") -> None:
        """Record a measured execution and refit lazily."""
        self.store.add(op_kind, processor_kind, input_bytes, seconds,
                       source=source)
        key = (op_kind, processor_kind)
        self._since_fit[key] = self._since_fit.get(key, 0) + 1
        if key not in self._fits or self._since_fit[key] >= self.refit_interval:
            self._refit(key)

    def _refit(self, key: Tuple[str, ProcessorKind]) -> None:
        observations = self.store.get(*key)
        if len(observations) < self.min_observations:
            return
        x = np.array([o.input_bytes for o in observations])
        y = np.array([o.seconds for o in observations])
        if np.ptp(x) == 0:
            # Degenerate input sizes: constant model.
            self._fits[key] = (float(y.mean()), 0.0)
        else:
            design = np.vstack([np.ones_like(x), x]).T
            (a, b), *_ = np.linalg.lstsq(design, y, rcond=None)
            self._fits[key] = (float(a), float(b))
        self._since_fit[key] = 0

    # -- estimation -------------------------------------------------------

    def is_learned(self, op_kind: str, processor_kind: ProcessorKind) -> bool:
        """True once a fitted model (not the fallback) is in use."""
        return (op_kind, processor_kind) in self._fits

    def estimate(self, op_kind: str, processor_kind: ProcessorKind,
                 input_bytes: float) -> float:
        """Estimated runtime; never negative."""
        fit = self._fits.get((op_kind, processor_kind))
        if fit is None:
            return self.profile.compute_seconds(
                op_kind, processor_kind, input_bytes
            )
        a, b = fit
        return max(a + b * input_bytes, 0.0)


class SplitCostModel:
    """Choose the GPU work fraction for a split operator execution.

    With ``t_c``/``t_g`` the learned whole-operator runtimes on CPU
    and GPU and ``t_x`` the transfer time of the operator's full input
    over PCIe, shipping fraction ``r`` to the GPU costs
    ``max(r * (t_g + t_x), (1 - r) * t_c)`` — the two devices run
    concurrently, so the split finishes when the slower side does.
    The minimising ratio equalises the sides::

        r* = t_c / (t_c + t_g + t_x)

    On a coupled (integrated-GPU) system ``t_x`` is ~0 and ``r*``
    collapses to the pure throughput ratio — exactly the shift
    arXiv 1307.1955 reports when the PCIe hop disappears.
    """

    def __init__(self, cost_model: LearnedCostModel):
        self.cost_model = cost_model

    @staticmethod
    def balance(t_cpu: float, t_gpu: float, t_x: float = 0.0) -> float:
        """Equalising GPU fraction for measured side runtimes."""
        denominator = t_cpu + t_gpu + t_x
        if denominator <= 0.0:
            return 0.5
        return min(max(t_cpu / denominator, 0.0), 1.0)

    def ratio(self, op_kind: str, input_bytes: float,
              transfer_seconds: float,
              hint: Optional[float] = None) -> float:
        """GPU fraction for one operator; ``hint`` (e.g. the fraction
        of inputs already device-resident, from the placement strategy)
        is blended in at half weight."""
        t_cpu = self.cost_model.estimate(op_kind, ProcessorKind.CPU,
                                         input_bytes)
        t_gpu = self.cost_model.estimate(op_kind, ProcessorKind.GPU,
                                         input_bytes)
        ratio = self.balance(t_cpu, t_gpu, max(transfer_seconds, 0.0))
        if hint is not None:
            ratio = 0.5 * (ratio + min(max(hint, 0.0), 1.0))
        return min(max(ratio, 0.0), 1.0)

    def rebalance(self, remaining: float, ratio: float,
                  t_cpu: float, t_gpu: float, t_x: float,
                  load_cpu: float, load_gpu: float) -> float:
        """Adjusted GPU fraction *of the remaining work* given current
        per-device queue depths.  ``remaining`` is the untouched
        fraction of the operator; the absolute GPU share that equalises
        finish times is::

            r_abs = (load_cpu - load_gpu + remaining * t_cpu)
                    / (t_cpu + t_gpu + t_x)

        normalised back to a fraction of ``remaining``.  An infinite
        ``load_gpu`` (open breaker) yields 0.0 — degrade to pure CPU.
        """
        if remaining <= 0.0:
            return ratio
        if load_gpu == float("inf"):
            return 0.0
        if load_cpu == float("inf"):
            return 1.0
        denominator = t_cpu + t_gpu + t_x
        if denominator <= 0.0:
            return ratio
        r_abs = (load_cpu - load_gpu + remaining * t_cpu) / denominator
        return min(max(r_abs / remaining, 0.0), 1.0)
