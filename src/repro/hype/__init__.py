"""HyPE: the hardware-oblivious tactical optimizer.

CoGaDB delegates operator placement and algorithm selection to HyPE
(Sec. 2.5), which learns cost models from observed executions and
balances load across processors by estimating the completion time of
each processor's ready queue (Sec. 5.2).

* :class:`ObservationStore` — (operator kind, processor) -> observed
  (input bytes, runtime) pairs.
* :class:`LearnedCostModel` — least-squares linear models refit as
  observations arrive, with the analytical calibration profile as the
  bootstrap fallback.
* :class:`LoadTracker` — outstanding estimated seconds per processor.
* :class:`SplitCostModel` — CPU/GPU work-ratio chooser for
  intra-operator split execution.
"""

from repro.hype.observation import Observation, ObservationStore
from repro.hype.models import LearnedCostModel, SplitCostModel
from repro.hype.load import LoadTracker
from repro.hype.algorithms import choose_algorithm

__all__ = [
    "LearnedCostModel",
    "LoadTracker",
    "Observation",
    "ObservationStore",
    "SplitCostModel",
    "choose_algorithm",
]
