"""Processor load tracking.

"To balance the load between CPU and GPU, we keep track of the load on
each processor by estimating the completion time of each processor's
ready queue" (Sec. 5.2).  The tracker holds the sum of estimated
runtimes of all operators assigned to but not yet finished on each
processor.
"""

from __future__ import annotations

from typing import Dict


class LoadTracker:
    """Outstanding estimated work per processor.

    With a resilience manager attached (fault injection active), the
    estimated completion of a device whose circuit breaker is open is
    infinite — cost-based placement then routes around the flaky device
    without every strategy needing breaker-specific code.
    """

    def __init__(self):
        self._outstanding: Dict[str, float] = {}
        self._resilience = None
        self._clock = None

    def attach_resilience(self, resilience, clock) -> None:
        """Penalise devices with open breakers in the load estimates."""
        self._resilience = resilience
        self._clock = clock

    def assign(self, processor_name: str, estimated_seconds: float) -> None:
        """An operator was queued on ``processor_name``."""
        self._outstanding[processor_name] = (
            self._outstanding.get(processor_name, 0.0) + estimated_seconds
        )

    def finish(self, processor_name: str, estimated_seconds: float) -> None:
        """The operator completed (or moved elsewhere)."""
        remaining = self._outstanding.get(processor_name, 0.0) - estimated_seconds
        self._outstanding[processor_name] = max(remaining, 0.0)

    def estimated_completion(self, processor_name: str) -> float:
        """Estimated seconds until the ready queue drains."""
        outstanding = self._outstanding.get(processor_name, 0.0)
        if self._resilience is not None and self._resilience.enabled:
            outstanding += self._resilience.placement_penalty(
                processor_name, self._clock()
            )
        return outstanding

    def reset(self) -> None:
        self._outstanding.clear()
