"""Processor load tracking.

"To balance the load between CPU and GPU, we keep track of the load on
each processor by estimating the completion time of each processor's
ready queue" (Sec. 5.2).  The tracker holds the sum of estimated
runtimes of all operators assigned to but not yet finished on each
processor.
"""

from __future__ import annotations

from typing import Dict


class LoadTracker:
    """Outstanding estimated work per processor.

    With a resilience manager attached (fault injection active), the
    estimated completion of a device whose circuit breaker is open is
    infinite — cost-based placement then routes around the flaky device
    without every strategy needing breaker-specific code.
    """

    def __init__(self):
        self._outstanding: Dict[str, float] = {}
        self._resilience = None
        self._clock = None
        #: breaker-penalty snapshots, refreshed explicitly so a long
        #: operator (or the split rebalancer) re-reads breaker state at
        #: its own boundaries instead of once at placement time
        self._penalty: Dict[str, float] = {}

    def attach_resilience(self, resilience, clock) -> None:
        """Penalise devices with open breakers in the load estimates."""
        self._resilience = resilience
        self._clock = clock
        self._penalty.clear()

    def refresh(self, processor_name: str = None) -> None:
        """Re-snapshot the breaker penalty for one processor (or all
        known ones).  Placement strategies call this at choose time and
        the split rebalancer at every round boundary, so mid-operator
        breaker transitions show up in :meth:`estimated_completion`
        instead of the stale placement-time reading."""
        if self._resilience is None or not self._resilience.enabled:
            self._penalty.clear()
            return
        now = self._clock()
        names = ([processor_name] if processor_name is not None
                 else list(self._penalty) or list(self._outstanding))
        for name in names:
            self._penalty[name] = self._resilience.placement_penalty(
                name, now)

    def assign(self, processor_name: str, estimated_seconds: float) -> None:
        """An operator was queued on ``processor_name``."""
        self._outstanding[processor_name] = (
            self._outstanding.get(processor_name, 0.0) + estimated_seconds
        )

    def finish(self, processor_name: str, estimated_seconds: float) -> None:
        """The operator completed (or moved elsewhere)."""
        remaining = self._outstanding.get(processor_name, 0.0) - estimated_seconds
        self._outstanding[processor_name] = max(remaining, 0.0)

    def estimated_completion(self, processor_name: str) -> float:
        """Estimated seconds until the ready queue drains."""
        outstanding = self._outstanding.get(processor_name, 0.0)
        if self._resilience is not None and self._resilience.enabled:
            penalty = self._penalty.get(processor_name)
            if penalty is None:
                # First read snapshots the penalty; it stays until the
                # next refresh() so repeated reads inside one placement
                # decision agree with each other.
                penalty = self._resilience.placement_penalty(
                    processor_name, self._clock()
                )
                self._penalty[processor_name] = penalty
            outstanding += penalty
        return outstanding

    def reset(self) -> None:
        self._outstanding.clear()
        self._penalty.clear()
