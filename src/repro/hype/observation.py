"""Runtime observations feeding the learned cost models."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, NamedTuple, Tuple

from repro.hardware.processor import ProcessorKind


class Observation(NamedTuple):
    """One measured operator execution.

    ``source`` tags where the measurement came from: ``"pure"`` for a
    whole-operator execution on one device, ``"split"`` for the
    per-device share of a split execution (PR9).  Split shares are
    real throughput measurements of the device, so they feed the same
    regressions — the tag exists so diagnostics can tell them apart.
    """

    input_bytes: float
    seconds: float
    source: str = "pure"


class ObservationStore:
    """Bounded per-(operator kind, processor kind) observation history."""

    def __init__(self, max_observations_per_key: int = 512):
        self._max = max_observations_per_key
        self._data: Dict[Tuple[str, ProcessorKind], List[Observation]] = (
            defaultdict(list)
        )

    def add(self, op_kind: str, processor_kind: ProcessorKind,
            input_bytes: float, seconds: float,
            source: str = "pure") -> None:
        """Record one execution."""
        observations = self._data[(op_kind, processor_kind)]
        observations.append(
            Observation(float(input_bytes), float(seconds), source)
        )
        if len(observations) > self._max:
            # Keep the most recent window (workload drift).
            del observations[: len(observations) - self._max]

    def get(self, op_kind: str,
            processor_kind: ProcessorKind) -> List[Observation]:
        return self._data.get((op_kind, processor_kind), [])

    def count(self, op_kind: str, processor_kind: ProcessorKind) -> int:
        return len(self.get(op_kind, processor_kind))

    def keys(self):
        return list(self._data)

    def clear(self) -> None:
        self._data.clear()
