"""HyPE's algorithm selection.

Beyond placing operators on processors, HyPE "selects for each operator
a suitable algorithm" (Sec. 5.2).  Operator kinds with several physical
algorithms (hash vs. nested-loop join, radix vs. insertion sort, hash
vs. sort aggregation) carry per-algorithm cost curves in the
calibration profile; the chooser picks the candidate with the lowest
*learned* estimate for the actual input size, so small inputs get the
low-startup variant and bulk inputs the high-throughput one.
"""

from __future__ import annotations

from typing import Tuple

from repro.hardware.calibration import EngineProfile
from repro.hardware.processor import ProcessorKind
from repro.hype.models import LearnedCostModel


def choose_algorithm(
    cost_model: LearnedCostModel,
    profile: EngineProfile,
    op_kind: str,
    processor_kind: ProcessorKind,
    input_bytes: float,
) -> Tuple[str, float]:
    """Pick the cheapest algorithm for an operator execution.

    Returns ``(cost key, estimated seconds)``; the key is
    ``kind#algorithm`` for kinds with variants and the plain kind
    otherwise, and addresses both the analytical curve and the learned
    observation history.
    """
    names = profile.algorithm_names(op_kind)
    if not names:
        return op_kind, cost_model.estimate(
            op_kind, processor_kind, input_bytes
        )
    best_key = op_kind
    best_estimate = float("inf")
    for name in names:
        key = "{}#{}".format(op_kind, name)
        estimate = cost_model.estimate(key, processor_kind, input_bytes)
        if estimate < best_estimate:
            best_key = key
            best_estimate = estimate
    return best_key, best_estimate
