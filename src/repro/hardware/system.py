"""System configuration and assembly.

:class:`SystemConfig` mirrors the paper's experimentation platform
(Sec. 6.1): a four-core Xeon host with 32 GB RAM and a GTX 770 with
4 GB device memory behind PCIe.  :class:`HardwareSystem` instantiates
the simulated devices against one DES environment and one metrics
collector.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Generator, Optional

from repro.hardware.bus import PCIeBus
from repro.hardware.cache import DeviceCache
from repro.hardware.calibration import COGADB_PROFILE, GIB, MIB, EngineProfile
from repro.hardware.copy_engine import CopyEngine
from repro.hardware.memory import DeviceHeap
from repro.hardware.processor import Processor, ProcessorKind
from repro.metrics import MetricsCollector
from repro.sim import Environment


@dataclass(frozen=True)
class SystemConfig:
    """Dimensions and calibration of the simulated platform."""

    #: host memory (bytes); the host never runs out in our experiments
    host_memory_bytes: int = 32 * GIB
    #: number of co-processors (Sec. 6.3: multiple GPUs scale the
    #: approach to larger databases and more users); sizes below are
    #: per device
    gpu_count: int = 1
    #: total device memory (bytes); GTX 770: 4 GiB.  The selection
    #: micro-benchmarks of Sec. 2.3/3.4 assume a 5 GiB device.
    gpu_memory_bytes: int = 4 * GIB
    #: slice of device memory used as column cache ("GPU buffer size");
    #: the remainder is operator heap
    gpu_cache_bytes: int = 2 * GIB
    #: cache eviction policy: "lru" or "lfu"
    gpu_cache_policy: str = "lru"
    #: effective PCIe bandwidth and latency (page-locked, async streams)
    pcie_bandwidth_bytes_per_second: float = 2.4 * GIB
    pcie_latency_seconds: float = 15e-6
    #: overlap input transfers with kernel execution (the
    #: vector-at-a-time optimization of Sec. 5.5: "overlap data
    #: transfer and computation on the co-processor"); CoGaDB's
    #: operator-at-a-time engine stages first, so the default is off
    streaming_transfers: bool = False
    #: asynchronous copy engine (repro.hardware.copy_engine):
    #: independent h2d/d2h DMA channels per device, in-flight transfer
    #: coalescing, double-buffered vector streaming, and
    #: placement-driven prefetch.  Off by default — the serialized
    #: single-channel bus is the paper-faithful baseline.
    copy_engine: bool = False
    #: DMA chunk size: fault granularity, prefetch preemption points,
    #: and the vector size of double-buffered streaming
    copy_chunk_bytes: int = 32 * MIB
    #: attach concurrent operators to an in-flight copy of the same
    #: column instead of queueing a duplicate transfer
    copy_coalescing: bool = True
    #: columns the prefetcher pulls per idle bus window (0 disables the
    #: prefetcher; only meaningful with the copy engine on)
    prefetch_depth: int = 2
    #: fused morsel-driven functional execution (repro.engine.morsel):
    #: scan→join→aggregate chains run as per-morsel pipelines over
    #: cache-sized row ranges, byte-identical to the reference path.
    #: Off by default — the operator-at-a-time engine is the baseline.
    morsels: bool = False
    #: rows per morsel (None = $REPRO_MORSEL_ROWS or the 64K default)
    morsel_rows: Optional[int] = None
    #: intra-operator split execution (repro.engine.execution.split):
    #: one operator's morsel range divided between CPU and GPU by a
    #: HyPE-chosen ratio, rebalanced mid-operator by the load tracker.
    #: Off by default — placement stays all-or-nothing per operator.
    split: bool = False
    #: fixed GPU work fraction in [0, 1] (None = let the split cost
    #: model choose and the rebalancer adjust)
    split_ratio: Optional[float] = None
    #: rebalance points per split operator (ratio is re-evaluated at
    #: each round boundary; 1 = choose once, never rebalance)
    split_rounds: int = 4
    #: coupled/integrated-GPU platform (arXiv 1307.1955): CPU and GPU
    #: share one physical memory, so staging to the device and merging
    #: results back skip the PCIe hop entirely
    coupled: bool = False
    #: "nearing deadline" degradation threshold: a deadline-carrying
    #: query keeps its GPU share only while the remaining margin covers
    #: this multiple of the estimated remaining work (service mode
    #: overrides it per SLO class via ``QueryContext.deadline_safety``)
    deadline_safety: float = 2.0
    #: cost calibration
    profile: EngineProfile = COGADB_PROFILE

    def __post_init__(self):
        if self.gpu_cache_bytes > self.gpu_memory_bytes:
            raise ValueError("cache cannot exceed device memory")
        if self.gpu_cache_bytes < 0 or self.gpu_memory_bytes < 0:
            raise ValueError("memory sizes must be >= 0")
        if self.gpu_count < 1:
            raise ValueError("at least one co-processor is required")
        if self.copy_chunk_bytes <= 0:
            raise ValueError("copy chunk size must be positive")
        if self.prefetch_depth < 0:
            raise ValueError("prefetch depth must be >= 0")
        if self.morsel_rows is not None and self.morsel_rows < 1:
            raise ValueError("morsel_rows must be >= 1")
        if self.split_ratio is not None and not (
                0.0 <= self.split_ratio <= 1.0):
            raise ValueError("split_ratio must be in [0, 1]")
        if self.split_rounds < 1:
            raise ValueError("split_rounds must be >= 1")
        if self.deadline_safety <= 0:
            raise ValueError("deadline_safety must be > 0")

    @property
    def gpu_heap_bytes(self) -> int:
        """Device memory left for operator intermediates and results."""
        return self.gpu_memory_bytes - self.gpu_cache_bytes

    def with_cache_bytes(self, gpu_cache_bytes: int) -> "SystemConfig":
        """Copy of this config with a different GPU buffer size."""
        return replace(self, gpu_cache_bytes=int(gpu_cache_bytes))

    def with_profile(self, profile: EngineProfile) -> "SystemConfig":
        return replace(self, profile=profile)

    def with_copy_engine(self, enabled: bool = True,
                         **overrides) -> "SystemConfig":
        """Copy of this config with the copy engine toggled (plus any
        engine knob overrides: chunk size, coalescing, prefetch depth)."""
        return replace(self, copy_engine=enabled, **overrides)

    def with_morsels(self, enabled: bool = True,
                     morsel_rows: Optional[int] = None) -> "SystemConfig":
        """Copy of this config with fused morsel execution toggled."""
        return replace(self, morsels=enabled, morsel_rows=morsel_rows)

    def with_split(self, enabled: bool = True,
                   **overrides) -> "SystemConfig":
        """Copy of this config with split execution toggled (plus any
        split knob overrides: ``split_ratio``, ``split_rounds``)."""
        return replace(self, split=enabled, **overrides)

    @classmethod
    def coupled_gpu(cls, **overrides) -> "SystemConfig":
        """The coupled CPU-GPU platform of arXiv 1307.1955: an
        integrated GPU sharing the host's physical memory.  The PCIe
        hop disappears (modelled as shared-memory bandwidth with
        negligible latency, and split staging/merging skipping the bus
        entirely), so the split cost model's transfer term vanishes and
        ratios shift toward the GPU.  Compute calibration is left
        unchanged on purpose: the ratio shift then isolates the
        transfer effect."""
        defaults = dict(
            coupled=True,
            split=True,
            pcie_bandwidth_bytes_per_second=25.6 * GIB,
            pcie_latency_seconds=1e-7,
        )
        defaults.update(overrides)
        return cls(**defaults)


@dataclass
class GpuDevice:
    """One co-processor: compute, heap, and column cache."""

    name: str
    processor: Processor
    heap: DeviceHeap
    cache: DeviceCache


class HardwareSystem:
    """All simulated devices wired to one environment.

    With ``config.gpu_count > 1`` the system carries several identical
    co-processors (named ``gpu``, ``gpu2``, ``gpu3``, ...) sharing one
    PCIe bus; ``gpu``/``gpu_heap``/``gpu_cache`` keep referring to the
    first device so single-GPU code is unaffected.
    """

    def __init__(
        self,
        env: Environment,
        config: Optional[SystemConfig] = None,
        metrics: Optional[MetricsCollector] = None,
    ):
        self.env = env
        self.config = config if config is not None else SystemConfig()
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.cpu = Processor(env, "cpu", ProcessorKind.CPU, metrics=self.metrics)
        self.bus = PCIeBus(
            env,
            bandwidth_bytes_per_second=self.config.pcie_bandwidth_bytes_per_second,
            latency_seconds=self.config.pcie_latency_seconds,
            metrics=self.metrics,
        )
        self.gpus = []
        for index in range(self.config.gpu_count):
            name = "gpu" if index == 0 else "gpu{}".format(index + 1)
            self.gpus.append(
                GpuDevice(
                    name=name,
                    processor=Processor(env, name, ProcessorKind.GPU,
                                        metrics=self.metrics),
                    heap=DeviceHeap(self.config.gpu_heap_bytes,
                                    metrics=self.metrics, name=name),
                    cache=DeviceCache(
                        self.config.gpu_cache_bytes,
                        policy=self.config.gpu_cache_policy,
                        metrics=self.metrics,
                        clock=lambda: env.now,
                    ),
                )
            )
        self.profile = self.config.profile
        #: asynchronous copy engine; None in the (default) serialized
        #: baseline mode, so disabled runs construct nothing extra
        self.copy_engine = None
        if self.config.copy_engine:
            self.copy_engine = CopyEngine(
                env,
                bandwidth_bytes_per_second=(
                    self.config.pcie_bandwidth_bytes_per_second),
                latency_seconds=self.config.pcie_latency_seconds,
                chunk_bytes=self.config.copy_chunk_bytes,
                coalescing=self.config.copy_coalescing,
                metrics=self.metrics,
                busy_probe=self._device_computing,
            )
        #: fault injector shared by every device (None = faults off)
        self.injector = None

    def _device_computing(self, name: str) -> bool:
        """True while the named device has kernels in flight (the copy
        engine's overlap classifier)."""
        try:
            return self.processor(name).active_jobs > 0
        except KeyError:
            return False

    # -- transfers ------------------------------------------------------

    def device_transfer(self, nbytes: int, direction: str, device: str,
                        key=None) -> Generator:
        """DES process: a demand transfer to/from the named device.

        Routed over the copy engine's per-device channel when the
        engine is on (``key`` makes it coalescable), or the serialized
        bus otherwise.  Either way the copy is a PCIe fault-injection
        site attributed to ``device``."""
        if self.copy_engine is not None:
            yield from self.copy_engine.transfer(nbytes, direction,
                                                 device=device, key=key)
        else:
            yield from self.bus.transfer(nbytes, direction, device=device)

    def host_transfer(self, nbytes: int, direction: str = "d2h",
                      device: Optional[str] = None) -> Generator:
        """DES process: a guaranteed (never fault-injected) transfer —
        the CPU fallback path and final result delivery.

        With the copy engine on and a device named, the copy contends
        on that device's channel for the direction; it still cannot
        fault, so the CPU-only floor stays reachable."""
        if self.copy_engine is not None and device is not None:
            yield from self.copy_engine.transfer(nbytes, direction,
                                                 device=device, inject=False)
        else:
            yield from self.bus.transfer(nbytes, direction)

    # -- fault injection ------------------------------------------------

    def install_faults(self, injector) -> None:
        """Hook a :class:`~repro.faults.FaultInjector` into every
        injection site: the PCIe bus, the copy engine's channels, each
        co-processor's submission path, and each device heap.  Injected
        device resets flush the owning device's column cache."""
        self.injector = injector
        self.bus.injector = injector
        if self.copy_engine is not None:
            self.copy_engine.injector = injector
        for gpu_device in self.gpus:
            gpu_device.processor.injector = injector
            gpu_device.processor.on_reset = gpu_device.cache.reset
            gpu_device.heap.injector = injector

    @property
    def fault_config(self):
        """The active :class:`~repro.faults.FaultConfig`, or None."""
        return self.injector.config if self.injector is not None else None

    # -- first-device aliases (single-GPU code paths) ------------------

    @property
    def gpu(self) -> Processor:
        return self.gpus[0].processor

    @property
    def gpu_heap(self) -> DeviceHeap:
        return self.gpus[0].heap

    @property
    def gpu_cache(self) -> DeviceCache:
        return self.gpus[0].cache

    # -- lookups ----------------------------------------------------------

    @property
    def processors(self):
        """All processors, CPU first."""
        return (self.cpu,) + tuple(d.processor for d in self.gpus)

    @property
    def gpu_names(self):
        return [d.name for d in self.gpus]

    def processor(self, name: str) -> Processor:
        for proc in self.processors:
            if proc.name == name:
                return proc
        raise KeyError("unknown processor {!r}".format(name))

    def device(self, name: str) -> GpuDevice:
        """The co-processor with the given name."""
        for gpu_device in self.gpus:
            if gpu_device.name == name:
                return gpu_device
        raise KeyError("unknown co-processor {!r}".format(name))
