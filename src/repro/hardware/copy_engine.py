"""Asynchronous per-device copy engine.

The baseline :class:`~repro.hardware.bus.PCIeBus` serialises *every*
copy — both directions, all devices, demand and background — on one
blocking channel, the way CoGaDB's synchronous ``cudaMemcpy`` path
behaves.  Real PCIe is full duplex and modern GPUs expose independent
DMA engines per direction; engines built around that (asynchronous
streams, Sec. 2.5.3) overlap data movement with compute and with the
opposite direction.  This module models that machinery:

* **Independent channels.**  One serialised channel per
  ``(device, direction)`` pair: host-to-device copies no longer block
  device-to-host result returns, and devices do not block each other.
* **Chunked transfers.**  Copies move in ``chunk_bytes`` chunks.  Demand
  copies hold their channel for the whole transfer (one DMA job), but
  chunking is observable in two places: injected PCIe faults land
  *mid-chunk* (the partial progress is chunk-aligned and its burned bus
  time is recorded), and prefetch copies re-arbitrate the channel at
  every chunk boundary so a demand transfer never waits for more than
  one chunk of background traffic.
* **In-flight coalescing.**  A copy issued with a ``key`` registers a
  :class:`TransferHandle`; concurrent operators needing the same column
  attach to the in-flight copy's completion event instead of queueing a
  duplicate transfer — the request-coalescing shape of an
  inference-serving batcher.  A failed copy propagates its
  :class:`PCIeTransferFault` to every attached waiter, so each of them
  retries under its own resilience policy.
* **Completion futures.**  ``transfer()`` is a DES generator; executors
  that want overlap wrap it in a background process and join it later,
  and the per-key handles double as futures for attached waiters.

The engine is constructed by :class:`~repro.hardware.system
.HardwareSystem` only when ``SystemConfig.copy_engine`` is set; the
default remains the serialized single-channel bus, which is the
paper-faithful baseline.  Timing is calibrated identically to the bus
(``latency + nbytes / bandwidth`` per copy), so enabling the engine
changes *scheduling*, never per-copy cost — query results are
byte-identical in both modes.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional, Set, Tuple

from repro.hardware.errors import PCIeTransferFault
from repro.metrics import MetricsCollector
from repro.sim import Environment, Event, Resource

#: channel key for transfers that name no device endpoint
_HOST = "host"


class _Channel:
    """One serialised DMA channel with idle-transition notification."""

    __slots__ = ("env", "resource", "_idle_event")

    def __init__(self, env: Environment):
        self.env = env
        self.resource = Resource(env, capacity=1)
        self._idle_event: Optional[Event] = None

    @property
    def busy(self) -> bool:
        """True while a copy holds or waits for the channel."""
        return self.resource.in_use > 0 or self.resource.queue_length > 0

    @property
    def queue_length(self) -> int:
        return self.resource.queue_length

    def request(self):
        return self.resource.request()

    def release(self, request) -> None:
        self.resource.release(request)
        if not self.busy and self._idle_event is not None:
            event, self._idle_event = self._idle_event, None
            event.succeed()

    def wait_idle(self) -> Event:
        """Event firing on the channel's *next* drain-to-idle transition.

        Deliberately not satisfied by an already-idle channel: the
        prefetcher sweeps its candidates once, then sleeps here until
        new traffic completes (each completed copy may have changed
        what is worth fetching next).  Blocking forever is safe — a
        process waiting on a never-fired event does not keep the event
        queue alive.
        """
        if self._idle_event is None:
            self._idle_event = Event(self.env)
        return self._idle_event


class TransferHandle:
    """Future for one in-flight keyed copy (the coalescing target)."""

    __slots__ = ("key", "device", "direction", "nbytes", "event", "waiters")

    def __init__(self, env: Environment, key, device: Optional[str],
                 direction: str, nbytes: int):
        self.key = key
        self.device = device
        self.direction = direction
        self.nbytes = nbytes
        self.event = Event(env)
        #: attached waiters consume a failure through their own yield,
        #: and with zero waiters nobody ever observes the event — either
        #: way the event loop must not escalate it
        self.event.defused = True
        self.waiters = 0


class CopyEngine:
    """Per-device asynchronous DMA channels over one PCIe link model."""

    def __init__(
        self,
        env: Environment,
        bandwidth_bytes_per_second: float,
        latency_seconds: float = 0.0,
        chunk_bytes: int = 32 * (1 << 20),
        coalescing: bool = True,
        metrics: Optional[MetricsCollector] = None,
        busy_probe: Optional[Callable[[str], bool]] = None,
    ):
        if bandwidth_bytes_per_second <= 0:
            raise ValueError("bandwidth must be positive")
        if chunk_bytes <= 0:
            raise ValueError("chunk size must be positive")
        self.env = env
        self.bandwidth = float(bandwidth_bytes_per_second)
        self.latency = float(latency_seconds)
        self.chunk_bytes = int(chunk_bytes)
        self.coalescing = bool(coalescing)
        self.metrics = metrics
        #: answers "is this device computing right now?" — used to
        #: classify completed wire time as overlapped with compute
        self.busy_probe = busy_probe
        #: fault injector (installed by HardwareSystem.install_faults)
        self.injector = None
        #: optional ExecutionTrace; records one event per copy
        self.trace = None
        self._channels: Dict[Tuple[str, str], _Channel] = {}
        self._inflight: Dict[Tuple[str, str, object], TransferHandle] = {}
        self._prefetched: Dict[str, Set] = {}

    # -- channel / handle lookups --------------------------------------

    def channel(self, device: Optional[str], direction: str) -> _Channel:
        """The DMA channel serving ``(device, direction)``."""
        key = (device if device is not None else _HOST, direction)
        chan = self._channels.get(key)
        if chan is None:
            chan = self._channels[key] = _Channel(self.env)
        return chan

    def in_flight(self, device: Optional[str], direction: str, key) -> bool:
        """True while a keyed copy of ``key`` is on the wire."""
        return (device, direction, key) in self._inflight

    def attach(self, device: Optional[str], direction: str,
               key) -> Optional[Event]:
        """Coalesce onto an in-flight copy of ``key``; None if there is
        none (or coalescing is disabled).  Yielding the returned event
        waits for the one copy already on the wire — it raises the
        copy's :class:`PCIeTransferFault` if that copy dies."""
        if not self.coalescing or key is None:
            return None
        handle = self._inflight.get((device, direction, key))
        if handle is None:
            return None
        handle.waiters += 1
        if self.metrics is not None:
            self.metrics.record_coalesced(handle.nbytes)
        return handle.event

    # -- transfers ------------------------------------------------------

    def transfer_time(self, nbytes: int) -> float:
        """Pure wire time for ``nbytes`` (identical to the bus model)."""
        return self.latency + nbytes / self.bandwidth

    def transfer(self, nbytes: int, direction: str,
                 device: Optional[str] = None, key=None,
                 inject: bool = True, prefetch: bool = False) -> Generator:
        """DES process: move ``nbytes`` on the ``(device, direction)``
        channel.

        ``key`` (a column key) makes the copy coalescable: a concurrent
        ``transfer()`` or :meth:`attach` for the same key on the same
        channel rides this copy instead of queueing its own.

        ``inject=False`` marks guaranteed transfers (the CPU fallback
        path) that must never fault; ``prefetch=True`` uses the
        chunk-preemptible pump that yields the channel to queued demand
        copies at chunk boundaries.
        """
        if nbytes < 0:
            raise ValueError("cannot transfer a negative volume")
        if direction not in ("h2d", "d2h"):
            raise ValueError(
                "unknown transfer direction {!r}".format(direction))
        if nbytes == 0:
            return
        event = self.attach(device, direction, key)
        if event is not None:
            yield event
            return
        handle = None
        if key is not None:
            handle = TransferHandle(self.env, key, device, direction,
                                    int(nbytes))
            self._inflight[(device, direction, key)] = handle
        try:
            if prefetch:
                yield from self._pump_preemptible(
                    int(nbytes), direction, device, inject)
            else:
                yield from self._pump(int(nbytes), direction, device, inject)
        except BaseException as error:
            if handle is not None:
                self._inflight.pop((device, direction, key), None)
                if (handle.waiters > 0
                        and not isinstance(error, PCIeTransferFault)):
                    # The owning query was cancelled mid-copy.  Its
                    # coalesced waiters belong to *other* queries and
                    # must not inherit the cancellation: fail them with
                    # a transfer fault so each retries the copy under
                    # its own resilience policy.
                    handle.event.fail(
                        PCIeTransferFault(nbytes, direction, device=device))
                else:
                    handle.event.fail(error)
            raise
        else:
            if handle is not None:
                self._inflight.pop((device, direction, key), None)
                handle.event.succeed()

    def _record_queueing(self, direction: str, queued_at: float) -> None:
        waited = self.env.now - queued_at
        if waited > 0.0 and self.metrics is not None:
            self.metrics.record_transfer_queueing(direction, waited)

    def _record_wire(self, direction: str, nbytes: int, seconds: float,
                     device: Optional[str]) -> None:
        if self.metrics is None:
            return
        self.metrics.record_transfer(direction, nbytes, seconds)
        if (self.busy_probe is not None and device is not None
                and self.busy_probe(device)):
            self.metrics.record_overlapped_transfer(seconds)

    def _trace_copy(self, kind: str, direction: str,
                    device: Optional[str], key, start: float,
                    aborted: bool = False) -> None:
        if self.trace is None:
            return
        self.trace.record(
            label=str(key) if key is not None else "copy",
            kind=kind, processor="{}:{}".format(device or _HOST, direction),
            query="-", start=start, end=self.env.now,
            aborted=aborted, fault="pcie" if aborted else None,
        )

    def _roll_fault(self, device: Optional[str], inject: bool):
        """Fault decision for one copy; returns the burned wire fraction
        (in [0, 1)) when the copy is doomed, else None."""
        injector = self.injector
        if (inject and injector is not None and device is not None
                and injector.roll("pcie", device)):
            return injector.fraction("pcie")
        return None

    def _chunk_aligned_bytes(self, nbytes: int, fraction: float) -> int:
        """Bytes of whole chunks completed before a copy died at
        ``fraction`` of its wire time — the fault lands mid-chunk."""
        chunks = -(-nbytes // self.chunk_bytes)
        return min(int(fraction * chunks) * self.chunk_bytes, nbytes)

    def _pump(self, nbytes: int, direction: str, device: Optional[str],
              inject: bool) -> Generator:
        """Demand copy: hold the channel for the whole transfer."""
        channel = self.channel(device, direction)
        queued_at = self.env.now
        request = channel.request()
        # the channel-wait yield sits inside the try: an interrupt
        # (query cancellation) while queued must not leak the slot
        try:
            yield request
            self._record_queueing(direction, queued_at)
            start = self.env.now
            wire_time = self.transfer_time(nbytes)
            fraction = self._roll_fault(device, inject)
            if fraction is not None:
                # the copy dies mid-chunk: the bus time it burned and
                # the whole chunks that landed are still recorded
                burned = wire_time * fraction
                yield self.env.timeout(burned)
                self._record_wire(
                    direction, self._chunk_aligned_bytes(nbytes, fraction),
                    burned, device)
                self._trace_copy("copy", direction, device, None, start,
                                 aborted=True)
                raise PCIeTransferFault(nbytes, direction, device=device)
            wire_started = self.env.now
            try:
                yield self.env.timeout(wire_time)
            except BaseException:
                # Cancellation landed mid-copy: the wire time already
                # burned is real occupancy, and the whole chunks that
                # landed stay on the books (same accounting as a fault).
                elapsed = self.env.now - wire_started
                if wire_time > 0.0 and elapsed > 0.0:
                    self._record_wire(
                        direction,
                        self._chunk_aligned_bytes(nbytes,
                                                  elapsed / wire_time),
                        elapsed, device)
                    self._trace_copy("copy", direction, device, None,
                                     start, aborted=True)
                raise
            self._record_wire(direction, nbytes, wire_time, device)
            self._trace_copy("copy", direction, device, None, start)
        finally:
            channel.release(request)

    def _pump_preemptible(self, nbytes: int, direction: str,
                          device: Optional[str], inject: bool) -> Generator:
        """Background copy: re-arbitrate at every chunk boundary.

        Whenever a demand copy is queued on the channel, the pump
        releases it after the current chunk and re-requests — the
        channel's FIFO queue then serves the demand copy first.
        """
        channel = self.channel(device, direction)
        chunk = self.chunk_bytes
        total_chunks = max(1, -(-nbytes // chunk))
        wire_time = self.transfer_time(nbytes)
        per_chunk = wire_time / total_chunks
        fraction = self._roll_fault(device, inject)
        fail_after = None if fraction is None else wire_time * fraction
        start = self.env.now
        elapsed = 0.0
        done = 0
        while done < total_chunks:
            queued_at = self.env.now
            request = channel.request()
            try:
                yield request
                self._record_queueing(direction, queued_at)
                while done < total_chunks:
                    if (fail_after is not None
                            and elapsed + per_chunk > fail_after):
                        burn = max(fail_after - elapsed, 0.0)
                        yield self.env.timeout(burn)
                        # burned bus time inside the failing chunk;
                        # completed chunks were recorded as they landed
                        self._record_wire(direction, 0, burn, device)
                        self._trace_copy("prefetch", direction, device,
                                         None, start, aborted=True)
                        raise PCIeTransferFault(nbytes, direction,
                                                device=device)
                    yield self.env.timeout(per_chunk)
                    elapsed += per_chunk
                    done += 1
                    landed = (chunk if done < total_chunks
                              else nbytes - chunk * (total_chunks - 1))
                    self._record_wire(direction, landed, per_chunk, device)
                    if channel.queue_length > 0:
                        break  # yield the channel to a demand copy
            finally:
                channel.release(request)
        self._trace_copy("prefetch", direction, device, None, start)

    # -- prefetch bookkeeping ------------------------------------------

    def mark_prefetched(self, device: str, key) -> None:
        """Remember that ``key`` reached ``device`` by prefetch, so the
        next demand access can be attributed as a prefetch hit."""
        self._prefetched.setdefault(device, set()).add(key)

    def was_prefetched(self, device: str, key) -> bool:
        return key in self._prefetched.get(device, ())
