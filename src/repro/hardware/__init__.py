"""Simulated heterogeneous hardware platform.

This package substitutes the paper's physical testbed (Intel Xeon
E5-1607 v2, NVIDIA GTX 770, PCIe) with a deterministic model running
inside the DES kernel:

* :class:`Processor` — CPU or GPU with a bounded number of kernel slots.
* :class:`DeviceHeap` — the co-processor heap; allocations can fail with
  :class:`DeviceOutOfMemory`, which drives the paper's abort/fallback path.
* :class:`DeviceCache` — the co-processor column cache with LRU/LFU
  eviction, pinning, and reference counts.
* :class:`PCIeBus` — a shared, contended transfer channel.
* :class:`CopyEngine` — optional asynchronous per-device DMA channels
  with in-flight transfer coalescing and prefetch support
  (``SystemConfig.copy_engine``); the serialized bus stays the default.
* :class:`HardwareSystem` — wires everything to one environment, based
  on a :class:`SystemConfig` mirroring the paper's platform.
"""

from repro.hardware.errors import (
    DeviceFault,
    DeviceOutOfMemory,
    DeviceReset,
    DeviceStall,
    HeapPressureFault,
    INJECTABLE_FAULTS,
    KernelLaunchFault,
    PCIeTransferFault,
    TransientDeviceFault,
)
from repro.hardware.memory import Allocation, DeviceHeap
from repro.hardware.cache import CacheEntry, DeviceCache
from repro.hardware.bus import PCIeBus
from repro.hardware.copy_engine import CopyEngine, TransferHandle
from repro.hardware.processor import Processor, ProcessorKind
from repro.hardware.calibration import (
    COGADB_PROFILE,
    OCELOT_PROFILE,
    EngineProfile,
    OperatorCosts,
)
from repro.hardware.system import GpuDevice, HardwareSystem, SystemConfig

__all__ = [
    "Allocation",
    "CacheEntry",
    "COGADB_PROFILE",
    "CopyEngine",
    "DeviceCache",
    "DeviceFault",
    "DeviceHeap",
    "DeviceOutOfMemory",
    "DeviceReset",
    "DeviceStall",
    "EngineProfile",
    "GpuDevice",
    "HardwareSystem",
    "HeapPressureFault",
    "INJECTABLE_FAULTS",
    "KernelLaunchFault",
    "OCELOT_PROFILE",
    "OperatorCosts",
    "PCIeBus",
    "Processor",
    "ProcessorKind",
    "SystemConfig",
    "TransferHandle",
    "TransientDeviceFault",
]
