"""PCIe bus model.

The bus is the usual bottleneck between host and co-processor
(Sec. 2.1).  We model it as a single shared channel: transfers acquire
the bus exclusively, so concurrent queries queue up — this is exactly
the contention that amplifies cache thrashing under parallel load.

The bandwidth constant folds in the paper's transfer optimizations
(page-locked staging buffers, asynchronous CUDA streams, Sec. 2.5.3);
we model their *achieved* effective bandwidth rather than each
mechanism individually.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.hardware.errors import PCIeTransferFault
from repro.metrics import MetricsCollector
from repro.sim import Environment, Resource


class PCIeBus:
    """A shared, serialised transfer channel between host and device."""

    def __init__(
        self,
        env: Environment,
        bandwidth_bytes_per_second: float,
        latency_seconds: float = 0.0,
        metrics: Optional[MetricsCollector] = None,
    ):
        if bandwidth_bytes_per_second <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_seconds < 0:
            raise ValueError("latency must be >= 0")
        self.env = env
        self.bandwidth = float(bandwidth_bytes_per_second)
        self.latency = float(latency_seconds)
        self.metrics = metrics
        #: fault injector (installed by HardwareSystem.install_faults);
        #: None means no injection and zero overhead
        self.injector = None
        self._channel = Resource(env, capacity=1)

    def transfer_time(self, nbytes: int) -> float:
        """Pure wire time for ``nbytes`` (excluding queueing)."""
        return self.latency + nbytes / self.bandwidth

    def transfer(self, nbytes: int, direction: str,
                 device: Optional[str] = None) -> Generator:
        """DES process: move ``nbytes`` across the bus.

        ``direction`` is ``"h2d"`` (host to device) or ``"d2h"``.
        Yields until the bus is free and the wire time has elapsed.
        Only the wire time (not the queueing delay) is charged to the
        transfer counters, matching how the paper reports copy times;
        the time spent waiting for the channel is recorded separately
        (``record_transfer_queueing``), so contention is measurable
        instead of silently folded into copy time.

        ``device`` names the co-processor endpoint for fault
        attribution; transfers that name one are injection sites for
        transient :class:`PCIeTransferFault`s (the failing copy burns a
        deterministic fraction of its wire time before raising).  The
        CPU fallback path never passes a device, so the guaranteed
        CPU-only floor stays fault-free.
        """
        if nbytes < 0:
            raise ValueError("cannot transfer a negative volume")
        if direction not in ("h2d", "d2h"):
            raise ValueError("unknown transfer direction {!r}".format(direction))
        if nbytes == 0:
            return
        injector = self.injector
        queued_at = self.env.now
        request = self._channel.request()
        # The request must already be covered by the release: an
        # interrupt (query cancellation) delivered while this process
        # waits for the channel would otherwise leak the granted slot
        # and deadlock every later transfer.
        try:
            yield request
            waited = self.env.now - queued_at
            if waited > 0.0 and self.metrics is not None:
                self.metrics.record_transfer_queueing(direction, waited)
            wire_time = self.transfer_time(nbytes)
            if (injector is not None and device is not None
                    and injector.roll("pcie", device)):
                # Partial progress: the copy dies part-way down the
                # wire.  The bus time it burned is real occupancy and
                # stays on the books along with the bytes that landed.
                fraction = injector.fraction("pcie")
                yield self.env.timeout(wire_time * fraction)
                if self.metrics is not None:
                    self.metrics.record_transfer(
                        direction, int(nbytes * fraction),
                        wire_time * fraction,
                    )
                raise PCIeTransferFault(nbytes, direction, device=device)
            yield self.env.timeout(wire_time)
            if self.metrics is not None:
                self.metrics.record_transfer(direction, nbytes, wire_time)
        finally:
            self._channel.release(request)

    @property
    def queue_length(self) -> int:
        """Transfers currently waiting for the channel."""
        return self._channel.queue_length
