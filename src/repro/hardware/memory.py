"""Device heap allocator.

The co-processor's memory that is not used as column cache serves as
heap for operator intermediates and results (Sec. 2.1).  Operators
allocate their footprint up front; a failed allocation raises
:class:`DeviceOutOfMemory` immediately — the paper explicitly rejects
wait-and-admit because partially allocated operators would deadlock
(Sec. 2.5.1).
"""

from __future__ import annotations

from typing import Optional, Set

from repro.hardware.errors import DeviceOutOfMemory, HeapPressureFault
from repro.metrics import MetricsCollector


class Allocation:
    """A handle for one heap allocation; free exactly once."""

    __slots__ = ("nbytes", "owner", "_heap", "freed")

    def __init__(self, nbytes: int, owner: str, heap: "DeviceHeap"):
        self.nbytes = nbytes
        self.owner = owner
        self._heap = heap
        self.freed = False

    def free(self) -> None:
        """Return this allocation to the heap (idempotent)."""
        if not self.freed:
            self._heap._release(self)

    def shrink(self, new_nbytes: int) -> None:
        """Reduce the allocation (e.g. working memory freed, result kept)."""
        if new_nbytes > self.nbytes:
            raise ValueError("shrink cannot grow an allocation")
        if self.freed:
            raise RuntimeError("allocation already freed")
        self._heap._shrink(self, new_nbytes)


class DeviceHeap:
    """Bump-count allocator with exact accounting (no fragmentation model).

    Fragmentation is not modelled: the paper's contention effect is
    purely capacity-driven (sum of operator footprints vs. heap size).
    """

    def __init__(self, capacity_bytes: int,
                 metrics: Optional[MetricsCollector] = None,
                 name: Optional[str] = None):
        if capacity_bytes < 0:
            raise ValueError("heap capacity must be >= 0")
        self.capacity = int(capacity_bytes)
        self.used = 0
        self.metrics = metrics
        #: owning device name, used for fault attribution
        self.name = name
        #: fault injector (installed by HardwareSystem.install_faults);
        #: None means no injection and zero overhead
        self.injector = None
        self._live: Set[Allocation] = set()

    @property
    def available(self) -> int:
        """Bytes currently free."""
        return self.capacity - self.used

    @property
    def live_allocations(self) -> int:
        """Number of outstanding allocations."""
        return len(self._live)

    def allocate(self, nbytes: int, owner: str = "?") -> Allocation:
        """Allocate ``nbytes``; raises :class:`DeviceOutOfMemory` on failure.

        With a fault injector installed, each nonzero allocation may
        instead fail with a transient :class:`HeapPressureFault` — a
        spurious pressure spike that a retry can survive, unlike a
        genuine out-of-memory condition.
        """
        if nbytes < 0:
            raise ValueError("cannot allocate a negative size")
        if (self.injector is not None and nbytes > 0
                and self.injector.roll("heap", self.name or "?")):
            raise HeapPressureFault(requested=nbytes, available=self.available,
                                    device=self.name)
        if nbytes > self.available:
            raise DeviceOutOfMemory(requested=nbytes, available=self.available,
                                    device=self.name)
        allocation = Allocation(nbytes, owner, self)
        self.used += nbytes
        self._live.add(allocation)
        if self.metrics is not None:
            self.metrics.record_heap_usage(self.used)
        return allocation

    def can_allocate(self, nbytes: int) -> bool:
        """True if an allocation of ``nbytes`` would currently succeed."""
        return 0 <= nbytes <= self.available

    def _release(self, allocation: Allocation) -> None:
        if allocation not in self._live:
            raise RuntimeError("double free of {} bytes".format(allocation.nbytes))
        self._live.remove(allocation)
        self.used -= allocation.nbytes
        allocation.freed = True
        assert self.used >= 0, "heap accounting went negative"

    def _shrink(self, allocation: Allocation, new_nbytes: int) -> None:
        if allocation not in self._live:
            raise RuntimeError("shrinking a freed allocation")
        delta = allocation.nbytes - new_nbytes
        allocation.nbytes = new_nbytes
        self.used -= delta
