"""Processor model: an egalitarian processor-sharing queue.

A processor executes any number of operators concurrently, sharing its
device-level throughput equally among them — the behaviour of CUDA
kernels from concurrent streams, and of CoGaDB's intra-operator
parallelism timesharing the CPU cores.  An operator submitting
``seconds`` of work (its full-device execution time) finishes after
``seconds * n`` wall-clock when ``n`` operators run throughout.

This model has two properties the experiments rely on:

* total throughput is independent of concurrency (an ideal system
  executes a fixed workload in the same time regardless of the number
  of user sessions, Sec. 2.3), and
* concurrency stretches *residency*: operators hold their device heap
  allocations for longer under load, which is exactly what sustains
  the heap-contention effect.
"""

from __future__ import annotations

import enum
from typing import Dict, Generator, Optional

from repro.hardware.errors import DeviceReset, DeviceStall, KernelLaunchFault
from repro.metrics import MetricsCollector
from repro.sim import Environment, Event


class ProcessorKind(enum.Enum):
    """CPU or co-processor (GPU-style accelerator)."""

    CPU = "cpu"
    GPU = "gpu"


class _Job:
    __slots__ = ("remaining", "event")

    def __init__(self, work: float, event: Event):
        self.remaining = work
        self.event = event


class Processor:
    """A compute device shared equally among its running operators."""

    #: remaining work below this is considered finished (numerical dust)
    EPSILON = 1e-12

    def __init__(
        self,
        env: Environment,
        name: str,
        kind: ProcessorKind,
        metrics: Optional[MetricsCollector] = None,
    ):
        self.env = env
        self.name = name
        self.kind = kind
        self.metrics = metrics
        #: fault injector (installed by HardwareSystem.install_faults);
        #: None means no injection and zero overhead.  Only co-processor
        #: submissions are injection sites — CPU work never faults, so
        #: the CPU-only floor is always reachable.
        self.injector = None
        #: called when an injected DeviceReset fires (wired to the
        #: device's column-cache flush by HardwareSystem)
        self.on_reset = None
        self._jobs: Dict[int, _Job] = {}
        self._next_job_id = 0
        self._last_update = env.now
        self._timer_generation = 0

    def __repr__(self) -> str:
        return "<Processor {} ({})>".format(self.name, self.kind.value)

    @property
    def is_coprocessor(self) -> bool:
        return self.kind is ProcessorKind.GPU

    @property
    def active_jobs(self) -> int:
        """Operators currently executing."""
        return len(self._jobs)

    # -- public API -----------------------------------------------------

    def submit(self, seconds: float) -> Event:
        """Submit ``seconds`` of full-device work; the returned event
        fires when the work completes under fair sharing.

        When a fault injector is installed and this is a co-processor,
        each nonzero submission is an injection site:

        * ``reset`` — the driver resets the device (flushing its column
          cache via ``on_reset``) and the launch fails immediately;
        * ``kernel`` — the launch is rejected immediately;
        * ``stall`` — the kernel hangs and the returned event *fails*
          with :class:`DeviceStall` after the watchdog interval, so the
          submitting operator pays real simulated time before it can
          react.
        """
        if seconds < 0:
            raise ValueError("negative execution time")
        injector = self.injector
        if (injector is not None and seconds > 0
                and self.kind is ProcessorKind.GPU):
            if injector.roll("reset", self.name):
                if self.on_reset is not None:
                    self.on_reset()
                raise DeviceReset(device=self.name)
            if injector.roll("kernel", self.name):
                raise KernelLaunchFault(device=self.name)
            if injector.roll("stall", self.name):
                stall = injector.config.stall_seconds
                event = Event(self.env)
                fault = DeviceStall(stall, device=self.name)
                timer = self.env.timeout(stall)
                timer.callbacks.append(lambda _evt: event.fail(fault))
                return event
        self._advance()
        event = Event(self.env)
        if seconds == 0:
            event.succeed()
            return event
        self._next_job_id += 1
        self._jobs[self._next_job_id] = _Job(seconds, event)
        self._reschedule()
        return event

    def execute(self, seconds: float, label: str = "op") -> Generator:
        """DES process: run ``seconds`` of work and record the operator."""
        yield self.submit(seconds)
        if self.metrics is not None:
            self.metrics.record_operator(self.name, seconds)

    def estimated_drain_seconds(self) -> float:
        """Wall-clock until all current jobs would finish (no arrivals)."""
        self._advance()
        return sum(job.remaining for job in self._jobs.values())

    # -- internals ----------------------------------------------------------

    def _advance(self) -> None:
        """Account the work done since the last state change."""
        now = self.env.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self._jobs:
            return
        share = elapsed / len(self._jobs)
        for job in self._jobs.values():
            job.remaining -= share

    def _reschedule(self) -> None:
        """Arm a timer for the next job completion."""
        self._timer_generation += 1
        if not self._jobs:
            return
        generation = self._timer_generation
        shortest = min(job.remaining for job in self._jobs.values())
        delay = max(shortest, 0.0) * len(self._jobs)
        timer = self.env.timeout(delay)
        timer.callbacks.append(lambda _evt: self._on_timer(generation))

    def _on_timer(self, generation: int) -> None:
        if generation != self._timer_generation:
            return  # stale timer: the job set changed since it was armed
        self._advance()
        finished = [
            job_id
            for job_id, job in self._jobs.items()
            if job.remaining <= self.EPSILON
        ]
        for job_id in finished:
            job = self._jobs.pop(job_id)
            job.event.succeed()
        self._reschedule()
