"""Co-processor column cache.

Part of the device memory is used as a cache for access structures
(columns); the rest is heap (Sec. 2.1).  The cache supports the two
eviction policies the paper compares (LRU and LFU, Appendix E),
pinning (used by the data-driven placement manager, Sec. 3.2), and
reference counts so entries used by running operators are never evicted
mid-flight.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional

from repro.metrics import MetricsCollector

#: Supported eviction policies.
POLICIES = ("lru", "lfu")


class CacheEntry:
    """Book-keeping for one cached column."""

    __slots__ = (
        "key",
        "nbytes",
        "pinned",
        "refcount",
        "last_access",
        "access_count",
        "inserted_at",
    )

    def __init__(self, key: Hashable, nbytes: int, now: float, pinned: bool):
        self.key = key
        self.nbytes = nbytes
        self.pinned = pinned
        self.refcount = 0
        self.last_access = now
        self.access_count = 1
        self.inserted_at = now

    def __repr__(self) -> str:
        return "<CacheEntry {} {}B pinned={} refs={}>".format(
            self.key, self.nbytes, self.pinned, self.refcount
        )


class DeviceCache:
    """A byte-budgeted cache of columns with LRU/LFU eviction."""

    def __init__(
        self,
        capacity_bytes: int,
        policy: str = "lru",
        metrics: Optional[MetricsCollector] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        if capacity_bytes < 0:
            raise ValueError("cache capacity must be >= 0")
        if policy not in POLICIES:
            raise ValueError("unknown cache policy {!r}".format(policy))
        self.capacity = int(capacity_bytes)
        self.policy = policy
        self.metrics = metrics
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._entries: Dict[Hashable, CacheEntry] = {}
        #: entries invalidated by a device reset while still referenced
        #: by running operators; evicted on their final release
        self._doomed: set = set()
        self.used = 0

    # -- queries ------------------------------------------------------

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def keys(self) -> List[Hashable]:
        """Keys currently cached (no particular order)."""
        return list(self._entries)

    @property
    def available(self) -> int:
        return self.capacity - self.used

    def entry(self, key: Hashable) -> CacheEntry:
        return self._entries[key]

    # -- accesses -----------------------------------------------------

    def touch(self, key: Hashable) -> None:
        """Record an access to a cached column (hit)."""
        entry = self._entries[key]
        entry.last_access = self._clock()
        entry.access_count += 1
        if self.metrics is not None:
            self.metrics.record_cache_hit()

    def record_miss(self) -> None:
        """Record an access that was not served from the cache."""
        if self.metrics is not None:
            self.metrics.record_cache_miss()

    def acquire(self, key: Hashable) -> None:
        """Mark a cached column as in use by a running operator."""
        self._entries[key].refcount += 1

    def release(self, key: Hashable) -> None:
        """Release an in-use mark; entries may be evicted again at zero."""
        entry = self._entries.get(key)
        if entry is None:
            # The entry can have been force-evicted by a placement
            # change after the operator finished staging it; the paper
            # uses reference counts plus deferred cleanup here.
            return
        if entry.refcount <= 0:
            raise RuntimeError("release() without matching acquire()")
        entry.refcount -= 1
        if entry.refcount == 0 and key in self._doomed:
            # Deferred invalidation from a device reset: the last
            # reader is done, drop the entry now.
            self.evict(key)

    # -- admission and eviction ---------------------------------------

    def admit(self, key: Hashable, nbytes: int, pinned: bool = False) -> bool:
        """Insert a column, evicting victims per policy as needed.

        Returns False (and caches nothing) when the column cannot fit
        even after evicting every unpinned, unreferenced entry.
        """
        if key in self._entries:
            self.touch(key)
            return True
        if nbytes > self.capacity:
            return False
        evictable = self._evictable_bytes()
        if nbytes > self.available + evictable:
            return False
        while nbytes > self.available:
            victim = self._select_victim()
            assert victim is not None, "evictable accounting out of sync"
            self.evict(victim.key)
        entry = CacheEntry(key, nbytes, self._clock(), pinned)
        self._entries[key] = entry
        self.used += nbytes
        return True

    def evict(self, key: Hashable) -> None:
        """Remove a column from the cache."""
        entry = self._entries.pop(key)
        self._doomed.discard(key)
        self.used -= entry.nbytes
        if self.metrics is not None:
            self.metrics.record_cache_eviction()

    def evict_all(self) -> None:
        """Drop every entry regardless of pins (used between experiments)."""
        for key in list(self._entries):
            self.evict(key)

    def reset(self) -> None:
        """Flush the cache after an injected device reset.

        Unreferenced entries drop immediately.  Entries still read by
        running operators are *doomed* instead and evicted on their
        final :meth:`release` — memory is never yanked from under a
        running kernel (the paper's latching discussion), but nothing
        survives the reset.
        """
        for key in list(self._entries):
            if self._entries[key].refcount == 0:
                self.evict(key)
            else:
                self._doomed.add(key)

    def pin(self, key: Hashable) -> None:
        self._entries[key].pinned = True

    def unpin(self, key: Hashable) -> None:
        self._entries[key].pinned = False

    def set_capacity(self, capacity_bytes: int) -> None:
        """Change the budget; evicts per policy until within budget."""
        if capacity_bytes < 0:
            raise ValueError("cache capacity must be >= 0")
        self.capacity = int(capacity_bytes)
        while self.used > self.capacity:
            victim = self._select_victim(include_pinned=True)
            if victim is None:
                raise RuntimeError("cannot shrink cache: all entries in use")
            self.evict(victim.key)

    # -- internal -----------------------------------------------------

    def _evictable_bytes(self) -> int:
        return sum(
            e.nbytes
            for e in self._entries.values()
            if not e.pinned and e.refcount == 0
        )

    def _select_victim(self, include_pinned: bool = False) -> Optional[CacheEntry]:
        candidates = [
            e
            for e in self._entries.values()
            if e.refcount == 0 and (include_pinned or not e.pinned)
        ]
        if not candidates:
            return None
        if self.policy == "lfu":
            return min(candidates, key=lambda e: (e.access_count, e.last_access))
        return min(candidates, key=lambda e: (e.last_access, e.inserted_at))
