"""Cost calibration profiles.

Because the GPU is simulated, operator compute times come from
device-level throughput models: ``time = startup + bytes / throughput``.
The constants below are calibrated so the *relationships* the paper
reports hold on the simulated platform:

* a hot-cache GPU accelerates a full workload by roughly 2.5x (Fig. 1),
* a cold-cache GPU is about 3x *slower* than the CPU because PCIe
  transfer dominates (Fig. 1),
* cache thrashing degrades the selection micro-benchmark by roughly a
  factor of 24 (Fig. 2),
* the GPU selection operator of He et al. needs 3.25x its input as heap
  (Sec. 3.4), so heap contention sets in around seven parallel users on
  a 5 GB device.

Two profiles are provided: ``COGADB_PROFILE`` models the paper's
evaluation engine, ``OCELOT_PROFILE`` models the MonetDB/Ocelot
comparator of Appendix A (a somewhat faster CPU backend, a comparable
GPU backend).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.hardware.processor import ProcessorKind

#: Binary byte units.
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Physical operator kinds known to the cost model.
OP_KINDS = (
    "scan",
    "selection",
    "join",
    "groupby",
    "sort",
    "projection",
    "limit",
)


@dataclass(frozen=True)
class OperatorCosts:
    """Throughput model for one operator kind on one processor kind."""

    startup_seconds: float
    bytes_per_second: float

    def seconds(self, input_bytes: float) -> float:
        """Execution time for ``input_bytes`` of input."""
        return self.startup_seconds + input_bytes / self.bytes_per_second


@dataclass(frozen=True)
class EngineProfile:
    """A complete calibration: per-operator costs plus heap footprints.

    Operator kinds with several physical *algorithms* (HyPE selects an
    algorithm as well as a processor, Sec. 2.5/5.2) carry per-algorithm
    cost curves in ``algorithms``; a composite key ``kind#algorithm``
    addresses one curve.
    """

    name: str
    costs: Dict[Tuple[str, ProcessorKind], OperatorCosts]
    #: device heap demand as a multiple of operator input size
    footprint_factors: Dict[str, float] = field(default_factory=dict)
    #: per-algorithm variants: kind -> algorithm -> processor -> costs
    algorithms: Dict[str, Dict[str, Dict[ProcessorKind, OperatorCosts]]] = (
        field(default_factory=dict)
    )

    def algorithm_names(self, op_kind: str) -> Tuple[str, ...]:
        """The candidate algorithms for an operator kind."""
        variants = self.algorithms.get(op_kind)
        if not variants:
            return ()
        return tuple(variants)

    def compute_seconds(
        self, op_kind: str, processor_kind: ProcessorKind, input_bytes: float
    ) -> float:
        """Analytical execution time of an operator (or of one specific
        algorithm when addressed as ``kind#algorithm``)."""
        if "#" in op_kind:
            kind, _, algorithm = op_kind.partition("#")
            model = self.algorithms[kind][algorithm][processor_kind]
            return model.seconds(input_bytes)
        try:
            model = self.costs[(op_kind, processor_kind)]
        except KeyError:
            raise KeyError(
                "no cost model for {} on {}".format(op_kind, processor_kind)
            )
        return model.seconds(input_bytes)

    def footprint_bytes(self, op_kind: str, input_bytes: float) -> int:
        """Device heap an operator of this kind must allocate."""
        factor = self.footprint_factors.get(op_kind, 2.0)
        return int(factor * input_bytes)

    def speedup(self, op_kind: str, input_bytes: float) -> float:
        """CPU-time / GPU-time for one operator (hot cache)."""
        cpu = self.compute_seconds(op_kind, ProcessorKind.CPU, input_bytes)
        gpu = self.compute_seconds(op_kind, ProcessorKind.GPU, input_bytes)
        return cpu / gpu


def _costs(cpu_startup, cpu_tput, gpu_startup, gpu_tput):
    """Build the per-processor cost pair for one operator kind."""
    return {
        ProcessorKind.CPU: OperatorCosts(cpu_startup, cpu_tput),
        ProcessorKind.GPU: OperatorCosts(gpu_startup, gpu_tput),
    }


def _algorithm_variants(table):
    """Derive per-algorithm cost curves from the base calibration.

    The base curve is the engine's default (bulk) algorithm; each
    variant trades lower startup overhead for lower asymptotic
    throughput, so it wins on *small* inputs only — the classic
    size-dependent crossover HyPE's algorithm selection exploits,
    without disturbing the large-input calibration the figures rest on.
    """
    variants = {}
    for op_kind, default_name, variant_name, startup_factor, tput_factor in (
        ("join", "hash_join", "nested_loop_join", 0.25, 0.55),
        ("sort", "radix_sort", "insertion_sort", 0.25, 0.55),
        ("groupby", "hash_aggregate", "sort_aggregate", 0.3, 0.6),
    ):
        base = table[op_kind]
        variants[op_kind] = {
            default_name: dict(base),
            variant_name: {
                kind: OperatorCosts(
                    model.startup_seconds * startup_factor,
                    model.bytes_per_second * tput_factor,
                )
                for kind, model in base.items()
            },
        }
    return variants


def _profile(name, table, footprints):
    costs = {}
    for op_kind, pair in table.items():
        for processor_kind, model in pair.items():
            costs[(op_kind, processor_kind)] = model
    return EngineProfile(
        name=name,
        costs=costs,
        footprint_factors=footprints,
        algorithms=_algorithm_variants(table),
    )


#: Heap demand factors (x input bytes).  The selection factor is the
#: paper's measured 3.25x (Sec. 3.4); the others follow the relative
#: working-space needs of the classic GPU implementations CoGaDB uses
#: (radix join, sort, hash aggregation).
FOOTPRINT_FACTORS = {
    "scan": 0.0,
    "selection": 3.25,
    # The probe side of the hash join streams; working space is the
    # hash table over the (small) build side plus output buffers.
    "join": 1.5,
    "groupby": 2.0,
    "sort": 2.5,
    "projection": 1.5,
    "limit": 0.25,
}

#: CoGaDB on the paper platform (4-core Ivy Bridge Xeon vs. GTX 770).
COGADB_PROFILE = _profile(
    "cogadb",
    {
        "scan": _costs(5e-6, 30.0 * GIB, 20e-6, 160.0 * GIB),
        # Selections are memory-bandwidth bound: ~25 GB/s dual-channel
        # host memory vs ~224 GB/s on the GTX 770.
        "selection": _costs(20e-6, 7.0 * GIB, 60e-6, 60.0 * GIB),
        "join": _costs(30e-6, 2.4 * GIB, 80e-6, 7.0 * GIB),
        "groupby": _costs(25e-6, 5.0 * GIB, 70e-6, 12.0 * GIB),
        "sort": _costs(25e-6, 3.0 * GIB, 70e-6, 9.0 * GIB),
        "projection": _costs(10e-6, 12.0 * GIB, 40e-6, 40.0 * GIB),
        "limit": _costs(5e-6, 50.0 * GIB, 20e-6, 100.0 * GIB),
    },
    FOOTPRINT_FACTORS,
)

#: MonetDB/Ocelot (Appendix A): a faster CPU backend on most operators,
#: a GPU backend on par with CoGaDB's.
OCELOT_PROFILE = _profile(
    "ocelot",
    {
        "scan": _costs(5e-6, 32.0 * GIB, 20e-6, 160.0 * GIB),
        "selection": _costs(20e-6, 8.5 * GIB, 55e-6, 66.0 * GIB),
        "join": _costs(30e-6, 2.9 * GIB, 80e-6, 6.5 * GIB),
        "groupby": _costs(25e-6, 6.0 * GIB, 70e-6, 11.0 * GIB),
        "sort": _costs(25e-6, 3.8 * GIB, 70e-6, 9.0 * GIB),
        "projection": _costs(10e-6, 14.0 * GIB, 40e-6, 40.0 * GIB),
        "limit": _costs(5e-6, 50.0 * GIB, 20e-6, 100.0 * GIB),
    },
    FOOTPRINT_FACTORS,
)

#: Profiles by name, for configuration files and the harness CLI.
PROFILES = {p.name: p for p in (COGADB_PROFILE, OCELOT_PROFILE)}
