"""Hardware fault types.

The paper's only modeled fault is a failed device heap allocation
(Sec. 2.5.1): the operator aborts, its wasted time is recorded, and the
executor restarts it on the CPU.  Real co-processor stacks see a wider
taxonomy — transient PCIe transfer errors, kernel launch failures,
driver stalls, and full device resets — which the fault-injection
subsystem (:mod:`repro.faults`) raises through the hierarchy below.

Every fault carries the ``device`` it occurred on (``None`` when the
raising component cannot attribute it) and a class-level contract:

* ``transient`` — a retry of the same attempt may succeed (PCIe hiccup,
  kernel launch failure, driver stall, spurious heap-pressure spike,
  device reset).  The executors retry these with exponential backoff in
  simulated time before falling back to the CPU, and they feed the
  per-device circuit breakers.
* non-transient (``DeviceOutOfMemory``) — permanent *for this attempt*:
  the heap genuinely cannot fit the footprint right now, so retrying
  immediately would fail again; the operator falls back to the CPU at
  once, exactly the paper's abort-and-restart path.
"""

from __future__ import annotations

from typing import Optional


class DeviceFault(Exception):
    """Base class for every simulated hardware fault."""

    #: short machine-readable class used for metrics and injection rates
    fault_class = "fault"
    #: whether a retry of the same attempt may succeed
    transient = False

    def __init__(self, message: str, device: Optional[str] = None):
        if device is not None:
            message = "[{}] {}".format(device, message)
        super().__init__(message)
        self.device = device


class DeviceOutOfMemory(DeviceFault):
    """A device heap allocation failed.

    This is the fault the paper's fault-tolerance machinery reacts to:
    the operator aborts, its wasted time is recorded, and the executor
    restarts it on the CPU (Sec. 2.5.1).  It is *permanent for this
    attempt* — the heap is genuinely full — so it is never retried and
    never trips a circuit breaker.
    """

    fault_class = "oom"
    transient = False

    def __init__(self, requested: int, available: int,
                 device: Optional[str] = None):
        super().__init__(
            "device allocation of {} bytes failed ({} bytes free)".format(
                requested, available
            ),
            device=device,
        )
        self.requested = requested
        self.available = available


class TransientDeviceFault(DeviceFault):
    """Base class for faults a retry may survive."""

    fault_class = "transient"
    transient = True


class PCIeTransferFault(TransientDeviceFault):
    """A host/device copy was corrupted or dropped mid-flight."""

    fault_class = "pcie"

    def __init__(self, nbytes: int, direction: str,
                 device: Optional[str] = None):
        super().__init__(
            "PCIe {} transfer of {} bytes failed".format(direction, nbytes),
            device=device,
        )
        self.nbytes = nbytes
        self.direction = direction


class KernelLaunchFault(TransientDeviceFault):
    """The driver rejected a kernel launch (spurious launch failure)."""

    fault_class = "kernel"

    def __init__(self, device: Optional[str] = None):
        super().__init__("kernel launch failed", device=device)


class DeviceStall(TransientDeviceFault):
    """The device hung; the watchdog killed the kernel after a delay.

    Unlike a launch failure, a stall *costs simulated time* before it
    surfaces: the submitting operator blocks for the watchdog interval
    and only then observes the fault.
    """

    fault_class = "stall"

    def __init__(self, seconds: float, device: Optional[str] = None):
        super().__init__(
            "device stalled; watchdog fired after {:.4f}s".format(seconds),
            device=device,
        )
        self.seconds = seconds


class HeapPressureFault(TransientDeviceFault):
    """A spurious heap-pressure spike failed an allocation that would
    normally fit (fragmentation burst, driver-internal reservation)."""

    fault_class = "heap"

    def __init__(self, requested: int, available: int,
                 device: Optional[str] = None):
        super().__init__(
            "spurious heap pressure failed a {} byte allocation "
            "({} bytes nominally free)".format(requested, available),
            device=device,
        )
        self.requested = requested
        self.available = available


class DeviceReset(TransientDeviceFault):
    """The driver reset the device, flushing its column cache.

    The submitting operator aborts; the device itself comes back
    immediately (a retry may succeed) but with a cold cache.
    """

    fault_class = "reset"

    def __init__(self, device: Optional[str] = None):
        super().__init__("device reset; column cache flushed", device=device)


#: Every fault class a :class:`~repro.faults.FaultInjector` can raise,
#: keyed by its rate attribute on :class:`~repro.faults.FaultConfig`.
INJECTABLE_FAULTS = {
    PCIeTransferFault.fault_class: PCIeTransferFault,
    KernelLaunchFault.fault_class: KernelLaunchFault,
    DeviceStall.fault_class: DeviceStall,
    HeapPressureFault.fault_class: HeapPressureFault,
    DeviceReset.fault_class: DeviceReset,
}
