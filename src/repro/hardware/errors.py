"""Hardware fault types."""


class DeviceOutOfMemory(Exception):
    """A device heap allocation failed.

    This is the fault the paper's fault-tolerance machinery reacts to:
    the operator aborts, its wasted time is recorded, and the executor
    restarts it on the CPU (Sec. 2.5.1).
    """

    def __init__(self, requested: int, available: int):
        super().__init__(
            "device allocation of {} bytes failed ({} bytes free)".format(
                requested, available
            )
        )
        self.requested = requested
        self.available = available
