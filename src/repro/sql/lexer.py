"""SQL tokenizer."""

from __future__ import annotations

from typing import List, NamedTuple

KEYWORDS = {
    "select", "from", "where", "group", "order", "by", "having",
    "and", "or", "not", "between", "in", "as", "asc", "desc", "limit",
    "sum", "count", "avg", "min", "max", "distinct",
}

SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", "*",
           "+", "-", "/", ".")


class Token(NamedTuple):
    """One lexical token."""

    kind: str  # 'keyword' | 'ident' | 'number' | 'string' | 'symbol' | 'end'
    value: str
    position: int


class SqlSyntaxError(ValueError):
    """Raised for malformed SQL."""


def tokenize(text: str) -> List[Token]:
    """Split ``text`` into tokens (keywords are lower-cased)."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            end = text.find("'", i + 1)
            if end < 0:
                raise SqlSyntaxError("unterminated string at {}".format(i))
            tokens.append(Token("string", text[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit():
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot not followed by a digit belongs to the next
                    # token (e.g. "1.").
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token("number", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("keyword", lowered, i))
            else:
                tokens.append(Token("ident", lowered, i))
            i = j
            continue
        for symbol in SYMBOLS:
            if text.startswith(symbol, i):
                value = "<>" if symbol == "!=" else symbol
                tokens.append(Token("symbol", value, i))
                i += len(symbol)
                break
        else:
            raise SqlSyntaxError(
                "unexpected character {!r} at position {}".format(ch, i)
            )
    tokens.append(Token("end", "", n))
    return tokens
