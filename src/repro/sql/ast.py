"""Unbound parse-tree nodes produced by the parser.

Binding (resolving column names against the catalog and producing
engine :class:`~repro.engine.expressions.Expression` objects) happens
in :mod:`repro.sql.binder`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union


@dataclass
class ParsedColumn:
    """A possibly-qualified column reference."""

    name: str
    table: Optional[str] = None

    def __str__(self) -> str:
        if self.table:
            return "{}.{}".format(self.table, self.name)
        return self.name


@dataclass
class ParsedLiteral:
    """A number or string constant."""

    value: Union[int, float, str]


@dataclass
class ParsedArith:
    """Binary arithmetic."""

    op: str
    left: "ParsedExpr"
    right: "ParsedExpr"


ParsedExpr = Union[ParsedColumn, ParsedLiteral, ParsedArith]


@dataclass
class ParsedComparison:
    op: str
    left: ParsedExpr
    right: ParsedExpr


@dataclass
class ParsedBetween:
    expr: ParsedExpr
    low: ParsedExpr
    high: ParsedExpr


@dataclass
class ParsedIn:
    expr: ParsedExpr
    values: List[Union[int, float, str]]
    negated: bool = False


@dataclass
class ParsedAnd:
    children: List["ParsedPredicate"]


@dataclass
class ParsedOr:
    children: List["ParsedPredicate"]


@dataclass
class ParsedNot:
    child: "ParsedPredicate"


ParsedPredicate = Union[ParsedComparison, ParsedBetween, ParsedIn,
                        ParsedAnd, ParsedOr, ParsedNot]


@dataclass
class ParsedAggregate:
    """``func(expr)``; ``expr`` is None for ``count(*)``."""

    func: str
    expr: Optional[ParsedExpr]


@dataclass
class SelectItem:
    """One entry of the SELECT list."""

    expr: Union[ParsedExpr, ParsedAggregate, None]  # None means '*'
    alias: Optional[str] = None

    @property
    def is_star(self) -> bool:
        return self.expr is None


@dataclass
class OrderItem:
    column: ParsedColumn
    ascending: bool = True


@dataclass
class SelectStatement:
    """A parsed (unbound) SELECT."""

    items: List[SelectItem]
    tables: List[str]
    where: Optional[ParsedPredicate] = None
    group_by: List[ParsedColumn] = field(default_factory=list)
    having: Optional[ParsedPredicate] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False
