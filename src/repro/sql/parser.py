"""Recursive-descent SQL parser."""

from __future__ import annotations

from typing import List, Optional, Union

from repro.sql.ast import (
    OrderItem,
    ParsedAggregate,
    ParsedAnd,
    ParsedArith,
    ParsedBetween,
    ParsedColumn,
    ParsedComparison,
    ParsedIn,
    ParsedLiteral,
    ParsedNot,
    ParsedOr,
    SelectItem,
    SelectStatement,
)
from repro.sql.lexer import SqlSyntaxError, Token, tokenize

AGG_KEYWORDS = ("sum", "count", "avg", "min", "max")
COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")


class _Parser:
    """Token-stream cursor with the usual helpers."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- cursor helpers ----------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self.current
        self._pos += 1
        return token

    def check(self, kind: str, value: Optional[str] = None) -> bool:
        token = self.current
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        if not self.check(kind, value):
            raise SqlSyntaxError(
                "expected {} {!r}, found {!r} at position {}".format(
                    kind, value or "", self.current.value, self.current.position
                )
            )
        return self.advance()

    # -- grammar -------------------------------------------------------

    def statement(self) -> SelectStatement:
        self.expect("keyword", "select")
        distinct = self.accept("keyword", "distinct") is not None
        items = [self.select_item()]
        while self.accept("symbol", ","):
            items.append(self.select_item())
        self.expect("keyword", "from")
        tables = [self.expect("ident").value]
        while self.accept("symbol", ","):
            tables.append(self.expect("ident").value)
        where = None
        if self.accept("keyword", "where"):
            where = self.or_expr()
        group_by: List[ParsedColumn] = []
        if self.accept("keyword", "group"):
            self.expect("keyword", "by")
            group_by.append(self.column_ref())
            while self.accept("symbol", ","):
                group_by.append(self.column_ref())
        having = None
        if self.accept("keyword", "having"):
            having = self.or_expr()
        order_by: List[OrderItem] = []
        if self.accept("keyword", "order"):
            self.expect("keyword", "by")
            order_by.append(self.order_item())
            while self.accept("symbol", ","):
                order_by.append(self.order_item())
        limit = None
        if self.accept("keyword", "limit"):
            limit = int(self.expect("number").value)
        self.expect("end")
        return SelectStatement(
            items=items,
            tables=tables,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def select_item(self) -> SelectItem:
        if self.accept("symbol", "*"):
            return SelectItem(expr=None)
        if self.current.kind == "keyword" and self.current.value in AGG_KEYWORDS:
            func = self.advance().value
            self.expect("symbol", "(")
            if func == "count" and self.accept("symbol", "*"):
                inner = None
            else:
                inner = self.expr()
            self.expect("symbol", ")")
            alias = self._maybe_alias()
            return SelectItem(expr=ParsedAggregate(func, inner), alias=alias)
        expr = self.expr()
        alias = self._maybe_alias()
        return SelectItem(expr=expr, alias=alias)

    def _maybe_alias(self) -> Optional[str]:
        if self.accept("keyword", "as"):
            return self.expect("ident").value
        if self.current.kind == "ident":
            # bare alias (e.g. "sum(x) revenue")
            return self.advance().value
        return None

    def order_item(self) -> OrderItem:
        column = self.column_ref()
        ascending = True
        if self.accept("keyword", "desc"):
            ascending = False
        else:
            self.accept("keyword", "asc")
        return OrderItem(column=column, ascending=ascending)

    def column_ref(self) -> ParsedColumn:
        first = self.expect("ident").value
        if self.accept("symbol", "."):
            second = self.expect("ident").value
            return ParsedColumn(name=second, table=first)
        return ParsedColumn(name=first)

    # -- predicates ------------------------------------------------------

    def or_expr(self):
        children = [self.and_expr()]
        while self.accept("keyword", "or"):
            children.append(self.and_expr())
        if len(children) == 1:
            return children[0]
        return ParsedOr(children)

    def and_expr(self):
        children = [self.unary_pred()]
        while self.accept("keyword", "and"):
            children.append(self.unary_pred())
        if len(children) == 1:
            return children[0]
        return ParsedAnd(children)

    def unary_pred(self):
        if self.accept("keyword", "not"):
            return ParsedNot(self.unary_pred())
        if self.check("symbol", "("):
            # Could be a parenthesised predicate or a parenthesised
            # arithmetic expression starting a comparison: backtrack.
            saved = self._pos
            self.advance()
            try:
                inner = self.or_expr()
                self.expect("symbol", ")")
                return inner
            except SqlSyntaxError:
                self._pos = saved
        return self.predicate()

    def predicate(self):
        left = self.expr()
        if self.current.kind == "symbol" and self.current.value in COMPARISONS:
            op = self.advance().value
            right = self.expr()
            return ParsedComparison(op, left, right)
        if self.accept("keyword", "between"):
            low = self.expr()
            self.expect("keyword", "and")
            high = self.expr()
            return ParsedBetween(left, low, high)
        negated = False
        if self.check("keyword", "not"):
            self.advance()
            negated = True
        if self.accept("keyword", "in"):
            self.expect("symbol", "(")
            values = [self.literal_value()]
            while self.accept("symbol", ","):
                values.append(self.literal_value())
            self.expect("symbol", ")")
            return ParsedIn(left, values, negated=negated)
        raise SqlSyntaxError(
            "expected a predicate at position {}".format(self.current.position)
        )

    def literal_value(self):
        if self.accept("symbol", "-"):
            return -self.literal_value()
        token = self.current
        if token.kind == "string":
            self.advance()
            return token.value
        if token.kind == "number":
            self.advance()
            return _number(token.value)
        raise SqlSyntaxError(
            "expected a literal at position {}".format(token.position)
        )

    # -- arithmetic expressions --------------------------------------------

    def expr(self):
        left = self.term()
        while self.current.kind == "symbol" and self.current.value in ("+", "-"):
            op = self.advance().value
            right = self.term()
            left = ParsedArith(op, left, right)
        return left

    def term(self):
        left = self.factor()
        while self.current.kind == "symbol" and self.current.value in ("*", "/"):
            op = self.advance().value
            right = self.factor()
            left = ParsedArith(op, left, right)
        return left

    def factor(self):
        if self.accept("symbol", "-"):
            inner = self.factor()
            if isinstance(inner, ParsedLiteral) and not isinstance(
                inner.value, str
            ):
                return ParsedLiteral(-inner.value)
            return ParsedArith("-", ParsedLiteral(0), inner)
        if self.accept("symbol", "+"):
            return self.factor()
        if self.accept("symbol", "("):
            inner = self.expr()
            self.expect("symbol", ")")
            return inner
        token = self.current
        if token.kind == "number":
            self.advance()
            return ParsedLiteral(_number(token.value))
        if token.kind == "string":
            self.advance()
            return ParsedLiteral(token.value)
        if token.kind == "ident":
            return self.column_ref()
        raise SqlSyntaxError(
            "unexpected token {!r} at position {}".format(token.value, token.position)
        )


def _number(text: str) -> Union[int, float]:
    if "." in text:
        return float(text)
    return int(text)


def parse(sql: str) -> SelectStatement:
    """Parse one SELECT statement."""
    return _Parser(tokenize(sql)).statement()
