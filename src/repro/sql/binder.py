"""Binder: resolve a parsed statement against the catalog.

Produces a :class:`QuerySpec` — the strategic-optimizer-facing
description of a query: per-table filter predicates, equi-join edges,
aggregates, grouping, ordering.  The planner turns a QuerySpec into a
physical operator tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.engine.expressions import (
    Aggregate,
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    Literal,
    Not,
    Or,
    conjunction,
    conjuncts,
)
from repro.sql.ast import (
    ParsedAggregate,
    ParsedAnd,
    ParsedArith,
    ParsedBetween,
    ParsedColumn,
    ParsedComparison,
    ParsedIn,
    ParsedLiteral,
    ParsedNot,
    ParsedOr,
    SelectStatement,
)
from repro.storage import Database


class BindError(ValueError):
    """Raised when a statement does not resolve against the catalog."""


@dataclass
class QuerySpec:
    """A bound query, ready for planning."""

    name: str
    tables: List[str]
    #: per-table conjunctive filters
    filters: Dict[str, Expression] = field(default_factory=dict)
    #: equi-join edges as (left, right) column pairs
    join_edges: List[Tuple[ColumnRef, ColumnRef]] = field(default_factory=list)
    #: non-aggregate output items
    select_items: List[Tuple[str, Expression]] = field(default_factory=list)
    aggregates: List[Aggregate] = field(default_factory=list)
    group_by: List[ColumnRef] = field(default_factory=list)
    #: predicate over output columns (aggregate aliases / group names)
    having: Optional[Expression] = None
    #: duplicate elimination over the (non-aggregate) output
    distinct: bool = False
    #: output column names with sort direction
    order_by: List[Tuple[str, bool]] = field(default_factory=list)
    limit: Optional[int] = None

    @property
    def is_aggregation(self) -> bool:
        return bool(self.aggregates)

    def required_columns(self):
        """Base columns touched anywhere in the query."""
        keys = set()
        for predicate in self.filters.values():
            keys |= predicate.columns()
        for left, right in self.join_edges:
            keys.add(left.key)
            keys.add(right.key)
        for _, expr in self.select_items:
            keys |= expr.columns()
        for aggregate in self.aggregates:
            keys |= aggregate.columns()
        for ref in self.group_by:
            keys.add(ref.key)
        return keys


class _Binder:
    def __init__(self, statement: SelectStatement, database: Database, name: str):
        self.statement = statement
        self.database = database
        self.name = name
        for table in statement.tables:
            if table not in database:
                raise BindError("unknown table {!r}".format(table))

    # -- column resolution ---------------------------------------------

    def resolve(self, parsed: ParsedColumn) -> ColumnRef:
        if parsed.table is not None:
            if parsed.table not in self.statement.tables:
                raise BindError(
                    "table {!r} not in FROM clause".format(parsed.table)
                )
            if parsed.name not in self.database.table(parsed.table):
                raise BindError("no column {}".format(parsed))
            return ColumnRef(parsed.table, parsed.name)
        owners = [
            t for t in self.statement.tables
            if parsed.name in self.database.table(t)
        ]
        if not owners:
            raise BindError("unknown column {!r}".format(parsed.name))
        if len(owners) > 1:
            raise BindError(
                "ambiguous column {!r} (tables: {})".format(parsed.name, owners)
            )
        return ColumnRef(owners[0], parsed.name)

    # -- expressions ------------------------------------------------------

    def bind_expr(self, parsed) -> Expression:
        if isinstance(parsed, ParsedColumn):
            return self.resolve(parsed)
        if isinstance(parsed, ParsedLiteral):
            return Literal(parsed.value)
        if isinstance(parsed, ParsedArith):
            return Arithmetic(
                parsed.op, self.bind_expr(parsed.left), self.bind_expr(parsed.right)
            )
        raise BindError("unsupported expression {!r}".format(parsed))

    def bind_predicate(self, parsed) -> Expression:
        if isinstance(parsed, ParsedComparison):
            return Comparison(
                parsed.op, self.bind_expr(parsed.left), self.bind_expr(parsed.right)
            )
        if isinstance(parsed, ParsedBetween):
            return Between(
                self.bind_expr(parsed.expr),
                self.bind_expr(parsed.low),
                self.bind_expr(parsed.high),
            )
        if isinstance(parsed, ParsedIn):
            bound = InList(self.bind_expr(parsed.expr), parsed.values)
            if parsed.negated:
                return Not(bound)
            return bound
        if isinstance(parsed, ParsedAnd):
            return And([self.bind_predicate(c) for c in parsed.children])
        if isinstance(parsed, ParsedOr):
            return Or([self.bind_predicate(c) for c in parsed.children])
        if isinstance(parsed, ParsedNot):
            return Not(self.bind_predicate(parsed.child))
        raise BindError("unsupported predicate {!r}".format(parsed))

    # -- output-scope expressions (HAVING) -----------------------------

    def bind_output_expr(self, parsed, output_names) -> Expression:
        """Bind an expression over *output* columns (empty table part)."""
        if isinstance(parsed, ParsedColumn):
            if parsed.table is not None or parsed.name not in output_names:
                raise BindError(
                    "HAVING references {!r}, which is not an output "
                    "column".format(parsed)
                )
            return ColumnRef("", parsed.name)
        if isinstance(parsed, ParsedLiteral):
            if isinstance(parsed.value, str):
                raise BindError("string literals are not supported in HAVING")
            return Literal(parsed.value)
        if isinstance(parsed, ParsedArith):
            return Arithmetic(
                parsed.op,
                self.bind_output_expr(parsed.left, output_names),
                self.bind_output_expr(parsed.right, output_names),
            )
        raise BindError("unsupported HAVING expression {!r}".format(parsed))

    def bind_output_predicate(self, parsed, output_names) -> Expression:
        if isinstance(parsed, ParsedComparison):
            return Comparison(
                parsed.op,
                self.bind_output_expr(parsed.left, output_names),
                self.bind_output_expr(parsed.right, output_names),
            )
        if isinstance(parsed, ParsedBetween):
            return Between(
                self.bind_output_expr(parsed.expr, output_names),
                self.bind_output_expr(parsed.low, output_names),
                self.bind_output_expr(parsed.high, output_names),
            )
        if isinstance(parsed, ParsedIn):
            if any(isinstance(v, str) for v in parsed.values):
                raise BindError("string lists are not supported in HAVING")
            bound = InList(
                self.bind_output_expr(parsed.expr, output_names),
                parsed.values,
            )
            return Not(bound) if parsed.negated else bound
        if isinstance(parsed, ParsedAnd):
            return And([
                self.bind_output_predicate(c, output_names)
                for c in parsed.children
            ])
        if isinstance(parsed, ParsedOr):
            return Or([
                self.bind_output_predicate(c, output_names)
                for c in parsed.children
            ])
        if isinstance(parsed, ParsedNot):
            return Not(self.bind_output_predicate(parsed.child, output_names))
        raise BindError("unsupported HAVING predicate {!r}".format(parsed))

    # -- the statement ------------------------------------------------------

    def bind(self) -> QuerySpec:
        statement = self.statement
        spec = QuerySpec(name=self.name, tables=list(statement.tables))

        # WHERE: split conjuncts into join edges and per-table filters.
        if statement.where is not None:
            predicate = self.bind_predicate(statement.where)
            per_table: Dict[str, List[Expression]] = {}
            for conjunct in conjuncts(predicate):
                if isinstance(conjunct, Comparison) and conjunct.is_join_predicate:
                    spec.join_edges.append((conjunct.left, conjunct.right))
                    continue
                tables = {key.partition(".")[0] for key in conjunct.columns()}
                if len(tables) != 1:
                    raise BindError(
                        "only equi-join predicates may span tables: {}".format(
                            conjunct.to_sql()
                        )
                    )
                per_table.setdefault(tables.pop(), []).append(conjunct)
            for table, predicates in per_table.items():
                spec.filters[table] = conjunction(predicates)

        # SELECT list.
        auto_alias = 0
        for item in statement.items:
            if item.is_star:
                for table in statement.tables:
                    for column in self.database.table(table).columns:
                        spec.select_items.append(
                            (column.name, ColumnRef(table, column.name))
                        )
                continue
            if isinstance(item.expr, ParsedAggregate):
                inner = (
                    self.bind_expr(item.expr.expr)
                    if item.expr.expr is not None
                    else Literal(1)
                )
                alias = item.alias
                if alias is None:
                    auto_alias += 1
                    alias = "{}_{}".format(item.expr.func, auto_alias)
                spec.aggregates.append(Aggregate(item.expr.func, inner, alias))
                continue
            expr = self.bind_expr(item.expr)
            alias = item.alias
            if alias is None:
                if isinstance(expr, ColumnRef):
                    alias = expr.name
                else:
                    auto_alias += 1
                    alias = "expr_{}".format(auto_alias)
            spec.select_items.append((alias, expr))

        # GROUP BY.
        spec.group_by = [self.resolve(c) for c in statement.group_by]
        if spec.aggregates:
            group_names = {ref.name for ref in spec.group_by}
            for alias, expr in spec.select_items:
                if not isinstance(expr, ColumnRef) or expr.name not in group_names:
                    raise BindError(
                        "non-aggregate output {!r} must appear in GROUP BY".format(
                            alias
                        )
                    )

        # HAVING resolves against output column names.
        output_names = {alias for alias, _ in spec.select_items}
        output_names |= {agg.alias for agg in spec.aggregates}
        output_names |= {ref.name for ref in spec.group_by}
        if statement.having is not None:
            if not spec.aggregates:
                raise BindError("HAVING requires an aggregation")
            spec.having = self.bind_output_predicate(
                statement.having, output_names
            )

        # DISTINCT: grouped outputs are already duplicate-free.
        spec.distinct = statement.distinct and not spec.aggregates

        # ORDER BY resolves against output column names.
        for item in statement.order_by:
            name = item.column.name
            if name not in output_names:
                raise BindError("ORDER BY {!r} is not an output column".format(name))
            spec.order_by.append((name, item.ascending))

        spec.limit = statement.limit
        return spec


def bind(statement_or_sql: Union[SelectStatement, str], database: Database,
         name: str = "query") -> QuerySpec:
    """Bind a parsed statement (or SQL text) against ``database``."""
    if isinstance(statement_or_sql, str):
        from repro.sql.parser import parse

        statement = parse(statement_or_sql)
    else:
        statement = statement_or_sql
    return _Binder(statement, database, name).bind()
