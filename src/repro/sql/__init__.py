"""A small SQL front end.

Supports the subset the paper's workloads need (SSBM Q1.1-Q4.3,
modified TPC-H Q2-Q7, and the micro-benchmark selections of
Appendix B):

``SELECT`` lists with expressions and aggregates, multi-table ``FROM``
with implicit join predicates in ``WHERE``, conjunctive/disjunctive
predicates with comparisons, ``BETWEEN``, ``IN``, ``GROUP BY``,
``ORDER BY`` and ``LIMIT``.
"""

from repro.sql.lexer import Token, tokenize
from repro.sql.parser import parse
from repro.sql.binder import QuerySpec, bind

__all__ = ["QuerySpec", "Token", "bind", "parse", "tokenize"]
