"""Shared resources for DES processes.

:class:`Resource` models anything with a bounded number of slots — a
processor's kernel slots, a worker pool, the PCIe bus.  :class:`Store`
models an unbounded FIFO queue of items with blocking consumers — the
ready queues of the query-chopping executor.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Deque, List, Optional

from repro.sim.events import Event


class Request(Event):
    """A pending acquisition of one resource slot.

    The request event succeeds once the slot is granted.  It must be
    passed back to :meth:`Resource.release` exactly once.
    """

    __slots__ = ("resource", "granted")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        self.granted = False


class Resource:
    """A counted resource with a FIFO wait queue."""

    __slots__ = ("env", "capacity", "_in_use", "_waiting")

    def __init__(self, env, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1, got {}".format(capacity))
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiting: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Number of slots currently granted."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Ask for a slot.  Yield the returned event to wait for it."""
        req = Request(self)
        if self._in_use < self.capacity:
            self._in_use += 1
            req.granted = True
            req.succeed(req)
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot."""
        if not request.granted:
            # Never granted: remove from the wait queue (cancellation).
            try:
                self._waiting.remove(request)
            except ValueError:
                raise RuntimeError("releasing a request that was never issued")
            return
        request.granted = False
        if self._waiting:
            nxt = self._waiting.popleft()
            nxt.granted = True
            nxt.succeed(nxt)
        else:
            self._in_use -= 1


class PriorityStore:
    """An unbounded store delivering the lowest-priority item first.

    Ties break in insertion order, so it degenerates to a FIFO when all
    priorities are equal.  Used by the query-chopping executor's
    shortest-job-first ready-queue variant.
    """

    __slots__ = ("env", "_heap", "_seq", "_getters", "_sorted_view")

    def __init__(self, env):
        self.env = env
        self._heap: List = []
        self._seq = 0
        self._getters: Deque[Event] = deque()
        #: memoised delivery-order snapshot; invalidated on put/get so
        #: repeated inspection (scheduling heuristics, traces) does not
        #: re-sort the whole heap on every call
        self._sorted_view: Optional[List[Any]] = None

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def items(self) -> List[Any]:
        """Snapshot of queued items in delivery order.

        The sorted view is computed lazily and cached until the next
        ``put``/``get`` — inspecting an unchanged store is O(1) instead
        of O(n log n) per call.
        """
        if self._sorted_view is None:
            self._sorted_view = [item for _, _, item in sorted(self._heap)]
        return list(self._sorted_view)

    def put(self, item: Any, priority: float = 0.0) -> None:
        """Queue ``item``; wakes the oldest waiting consumer, if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            return
        self._seq += 1
        heappush(self._heap, (priority, self._seq, item))
        self._sorted_view = None

    def get(self) -> Event:
        """Event that succeeds with the lowest-priority item."""
        event = Event(self.env)
        if self._heap:
            _, _, item = heappop(self._heap)
            self._sorted_view = None
            event.succeed(item)
        else:
            self._getters.append(event)
        return event


class Store:
    """An unbounded FIFO store with blocking ``get``."""

    __slots__ = ("env", "_items", "_getters")

    def __init__(self, env):
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> List[Any]:
        """Snapshot of the queued items (oldest first)."""
        return list(self._items)

    def put(self, item: Any, priority: float = 0.0) -> None:
        """Add ``item``; wakes the oldest waiting consumer, if any.

        ``priority`` is accepted (and ignored) so FIFO and priority
        stores are call-compatible.
        """
        del priority
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that succeeds with the next item (FIFO)."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event
