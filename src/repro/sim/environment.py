"""The DES event loop and virtual clock."""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Generator, List, Optional, Tuple

from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    PRIORITY_NORMAL,
    Process,
    Timeout,
)


class EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


class Environment:
    """A deterministic single-threaded discrete-event environment.

    Time is a ``float`` in seconds.  Events scheduled for the same
    instant are processed in (priority, insertion order), which makes
    runs exactly reproducible.
    """

    __slots__ = ("_now", "_queue", "_eid", "_active_process")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """The current virtual time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event construction helpers ----------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` virtual seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start ``generator`` as a new process."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Event that succeeds once all ``events`` succeed."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that succeeds once any of ``events`` succeeds."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------

    def schedule(self, event: Event, priority: int = PRIORITY_NORMAL,
                 delay: float = 0.0) -> None:
        """Queue ``event`` to be processed ``delay`` seconds from now."""
        self._eid += 1
        heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` if none)."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process the next scheduled event."""
        queue = self._queue
        if not queue:
            raise EmptySchedule()
        when, _, _, event = heappop(queue)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            # An error nobody waited for: escalate so bugs do not pass
            # silently.
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue is empty or the clock reaches ``until``."""
        if until is not None and until < self._now:
            raise ValueError("cannot run backwards in time")
        queue = self._queue
        if until is None:
            # Hot path: inline step() without the per-iteration bound
            # check (the common full-drain call of the harness).
            while queue:
                when, _, _, event = heappop(queue)
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event.defused:
                    raise event._value
            return
        while queue:
            if queue[0][0] > until:
                self._now = until
                return
            self.step()
        self._now = until
