"""Deterministic discrete-event simulation (DES) kernel.

This package is the execution substrate for the simulated heterogeneous
hardware platform.  It provides a small, simpy-like coroutine scheduler:
processes are Python generators that ``yield`` events; the environment
advances a virtual clock and resumes processes when the events they wait
on are triggered.

The kernel is intentionally minimal but complete for the needs of the
query-processing simulation:

* :class:`Environment` — the event loop and virtual clock.
* :class:`Event` — one-shot events with success/failure semantics.
* :class:`Process` — a running generator, itself awaitable as an event.
* :class:`Timeout` — an event that fires after a virtual delay.
* :class:`AllOf` / :class:`AnyOf` — condition events over several events.
* :class:`Resource` — a counted resource with a FIFO wait queue (used to
  model processors, worker pools, and the PCIe bus).
* :class:`Store` — an unbounded producer/consumer queue (used to model
  the ready queues of the query-chopping executor).

Everything runs in a single OS thread; concurrency exists only in
virtual time, which makes every experiment in this repository exactly
reproducible.
"""

from repro.sim.events import AllOf, AnyOf, Event, Interrupted, Process, Timeout
from repro.sim.environment import Environment
from repro.sim.resources import PriorityStore, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupted",
    "PriorityStore",
    "Process",
    "Resource",
    "Store",
    "Timeout",
]
