"""Event primitives for the DES kernel.

Events are one-shot: they move from *pending* to *triggered* (a value or
an exception is attached and the event is scheduled) to *processed*
(callbacks have run).  Processes wait on events by yielding them.

The classes here sit on the simulator's hottest path — every simulated
operator, transfer, and queue interaction allocates a handful of them —
so they declare ``__slots__`` and keep ``__init__`` minimal.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List, Optional

#: Scheduling priorities.  Lower values are processed first at equal time.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class Interrupted(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event that processes can wait on.

    An event is created pending.  Calling :meth:`succeed` or
    :meth:`fail` triggers it, which schedules it on the environment's
    event queue; when the environment processes it, all registered
    callbacks run.  Waiting processes register themselves as callbacks.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment"):  # noqa: F821 - circular import
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        #: True once a waiter consumed the failure (prevents the
        #: environment from escalating an unhandled error).
        self.defused = False

    def __repr__(self) -> str:
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        if self.processed:
            state += ",processed"
        return "<{} {}>".format(type(self).__name__, state)

    @property
    def triggered(self) -> bool:
        """True once a value or an exception has been attached."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError("event is not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The value (or exception) attached to the event."""
        if self._ok is None:
            raise RuntimeError("event is not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional ``value``."""
        if self._ok is not None:
            raise RuntimeError("event {!r} already triggered".format(self))
        self._ok = True
        self._value = value
        self.env.schedule(self, priority=PRIORITY_NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._ok is not None:
            raise RuntimeError("event {!r} already triggered".format(self))
        if not isinstance(exception, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=PRIORITY_NORMAL)
        return self


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):  # noqa: F821
        if delay < 0:
            raise ValueError("negative delay {}".format(delay))
        # Inlined Event.__init__ plus immediate scheduling: timeouts are
        # the single most frequent event of the simulation.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self.defused = False
        self.delay = delay
        env.schedule(self, priority=PRIORITY_NORMAL, delay=delay)


class Initialize(Event):
    """Immediate event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):  # noqa: F821
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self.defused = False
        env.schedule(self, priority=PRIORITY_URGENT)


class Process(Event):
    """A running generator.  Itself an event: it triggers when the
    generator returns (successfully, with the return value) or raises.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):  # noqa: F821
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError("Process requires a generator, got {!r}".format(generator))
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at the current time."""
        if not self.is_alive:
            raise RuntimeError("cannot interrupt a finished process")
        if self is self.env.active_process:
            raise RuntimeError("a process cannot interrupt itself")
        # Detach from the event currently waited on, then resume with
        # a failed one-shot event carrying the interrupt.
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            if not target.callbacks:
                # The abandoned event has no waiter left; if it later
                # fails (an injected fault, a stall timer) nobody will
                # consume the failure, so it must not escalate.
                target.defused = True
        wakeup = Event(self.env)
        wakeup.defused = True
        wakeup.fail(Interrupted(cause))
        wakeup.callbacks.append(self._resume)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        if self._ok is not None:
            # A stale wakeup: an interrupt raced the process finishing
            # in the same timestep.  The process is done — consume the
            # event so its failure cannot escalate, and drop it.
            if not event._ok:
                event.defused = True
            return
        env = self.env
        generator = self._generator
        env._active_process = self
        self._target = None
        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    event.defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as stop:
                env._active_process = None
                self.succeed(getattr(stop, "value", None))
                return
            except BaseException as error:  # generator raised
                env._active_process = None
                self.fail(error)
                return

            if not isinstance(next_event, Event):
                env._active_process = None
                error = RuntimeError(
                    "process yielded a non-event: {!r}".format(next_event)
                )
                generator.throw(error)
                return
            callbacks = next_event.callbacks
            if callbacks is None:
                # Already processed: continue immediately with its outcome.
                event = next_event
                continue
            callbacks.append(self._resume)
            self._target = next_event
            env._active_process = None
            return


class Condition(Event):
    """Base for events combining several sub-events.

    A sub-event counts as *done* once it has been processed (its
    callbacks ran), not merely once it is triggered — a ``Timeout`` is
    triggered at creation but only "happens" at its scheduled time.
    """

    __slots__ = ("events", "_done")

    def __init__(self, env: "Environment", events: Iterable[Event]):  # noqa: F821
        super().__init__(env)
        self.events = list(events)
        self._done = 0
        for event in self.events:
            if event.callbacks is None:
                # Already processed before the condition was created.
                if not event._ok:
                    if self._ok is None:
                        self.fail(event._value)
                else:
                    self._done += 1
            else:
                event.callbacks.append(self._observe)
        if self._ok is None and self._satisfied():
            self._finalize()

    def _observe(self, event: Event) -> None:
        if self._ok is not None:
            if not event._ok:
                event.defused = True
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._done += 1
        if self._satisfied():
            self._finalize()

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _finalize(self) -> None:
        values = {
            i: e._value
            for i, e in enumerate(self.events)
            if e.callbacks is None and e._ok
        }
        self.succeed(values)


class AllOf(Condition):
    """Triggers once every sub-event has succeeded (fails fast)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._done == len(self.events)


class AnyOf(Condition):
    """Triggers once any sub-event has succeeded (or immediately when
    created over an empty list)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._done >= 1 or not self.events
