"""The relational query engine.

An interpreter-based, operator-at-a-time engine in the style of
CoGaDB/MonetDB (Sec. 2.5): every physical operator consumes fully
materialised input and materialises its output.  Execution happens
inside the DES; functional results are computed with numpy while
timing is charged from the calibration profile.
"""

from repro.engine.expressions import (
    Aggregate,
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    Literal,
    Not,
    Or,
)
from repro.engine.frame import Frame
from repro.engine.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalHaving,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)
from repro.engine.planner import Planner
from repro.engine.reference import execute_reference

__all__ = [
    "Aggregate",
    "And",
    "Arithmetic",
    "Between",
    "ColumnRef",
    "Comparison",
    "Expression",
    "Frame",
    "InList",
    "Literal",
    "LogicalAggregate",
    "LogicalDistinct",
    "LogicalHaving",
    "LogicalJoin",
    "LogicalLimit",
    "LogicalNode",
    "LogicalProject",
    "LogicalScan",
    "LogicalSort",
    "Not",
    "Or",
    "Planner",
    "execute_reference",
]
