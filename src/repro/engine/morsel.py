"""Fused morsel-driven execution.

The functional layer executes operator-at-a-time: every operator
materialises its full intermediate before the next one runs.  This
module fuses the hot mid-query chain — ``ScanSelect`` →
``RefineSelect``* → ``HashJoin``* → (``GroupByAggregate`` |
``Materialize``) — into a single per-morsel pipeline over cache-sized
row ranges of the fact table:

* the scan predicate is evaluated per morsel over column *slices*
  (elementwise, so restriction commutes with evaluation),
* join probes run through the kernel layer's cached access structures
  (dense positional, unique-key
  :class:`~repro.engine.kernels.PositionLookup`, or the stable sorted
  index), entirely on dictionary codes; cached probe-column bounds
  prove foreign-key containment and elide the range checks,
* grouped aggregates reduce through a mixed-radix *dense group id*
  (radixes from cached column bounds): pool workers ship sparse
  per-morsel partials that merge at the pipeline breaker, the
  sequential path reduces the fused chain's output in one
  ``bincount`` pass — either way skipping the reference path's
  ``np.unique`` sort.

Everything is byte-identical to the reference engine.  The proofs are
local: elementwise predicates commute with slicing; restricting the
stable join order to an ascending morsel and concatenating preserves
the full-run match order; ascending dense group ids enumerate groups in
exactly ``np.unique``'s lexicographic order; and integer sums are exact
in float64, so partial merging cannot reorder rounding (fusion
*declines* float ``sum``/``avg`` rather than risk it).

Sequential execution is *recording*: a fused run fills the
per-template result memo (and the cross-plan cache) of every covered
operator with the identical ``(payload, actual, nominal, width)``
tuples the normal path would produce, then
:func:`~repro.engine.execution.functional.execute_functional`'s
ordinary post-order loop serves them — tail operators
(Sort/Limit/Distinct/FrameFilter) and all bookkeeping run unchanged.
When a plan shape falls outside the fused form the pipeline declines
(reason-counted in :data:`decline_reasons`) and the plan runs on the
unfused path; when only the dense aggregation is ineligible the
scan/join chain still fuses and the breaker runs once at a barrier.

The path is opt-in (``SystemConfig(morsels=True)`` / ``--morsels`` /
:func:`enable`) and costs a single boolean check when disabled.
"""

from __future__ import annotations

import os
from collections import Counter
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine import kernels, plan_cache
from repro.engine.expressions import ColumnRef
from repro.engine.frame import Frame
from repro.engine.intermediates import (
    OperatorResult,
    ResultFrame,
    SelectionVector,
    TidSet,
)
from repro.engine.kernels import _BlockFrame
from repro.engine.operators.aggregate import GroupByAggregate
from repro.engine.operators.base import TID_BYTES, scaled_nominal_rows
from repro.engine.operators.frame_ops import Distinct, FrameFilter
from repro.engine.operators.join import HashJoin
from repro.engine.operators.materialize import Materialize
from repro.engine.operators.scan import RefineSelect, ScanSelect
from repro.engine.operators.sort import Limit, Sort
from repro.storage.types import ColumnType

#: Environment knob: rows per morsel (default 64K, roughly the L2-sized
#: ranges morsel-driven schedulers hand out).
MORSEL_ROWS_ENV = "REPRO_MORSEL_ROWS"
DEFAULT_MORSEL_ROWS = 65536

#: Dense group-id domains above this decline to the barrier aggregate:
#: the accumulators would outweigh the rows they summarise.
GROUP_DOMAIN_CAP = 1 << 21

_enabled = False
_morsel_rows_override: Optional[int] = None

#: Event counters for metrics, benchmarks, and tests.
stats = {
    "fused_queries": 0,
    "declined_queries": 0,
    "morsels": 0,
    "fused_operators": 0,
    "partial_merges": 0,
    "dense_probes": 0,
    "lookup_probes": 0,
    "sorted_probes": 0,
    "dense_aggregates": 0,
    "barrier_breakers": 0,
    "compensated_merges": 0,
    "limit_fused_queries": 0,
    "limit_early_stops": 0,
    "limit_rows_skipped": 0,
}

#: Why fusion declined, by reason (diagnostics; reset with the stats).
decline_reasons: Counter = Counter()


def enable(on: bool = True) -> None:
    """Globally enable or disable the fused morsel path."""
    global _enabled
    _enabled = on


def enabled() -> bool:
    return _enabled


def reset_stats() -> None:
    for key in stats:
        stats[key] = 0
    decline_reasons.clear()


def snapshot_stats() -> Dict[str, int]:
    return dict(stats)


def morsel_rows() -> int:
    """Effective morsel size: override > $REPRO_MORSEL_ROWS > 64K."""
    if _morsel_rows_override is not None:
        return _morsel_rows_override
    raw = os.environ.get(MORSEL_ROWS_ENV, "").strip()
    if raw:
        return max(int(raw), 1)
    return DEFAULT_MORSEL_ROWS


def set_morsel_rows(rows: Optional[int]) -> None:
    """Override the morsel size (None restores env/default)."""
    global _morsel_rows_override
    if rows is not None and int(rows) < 1:
        raise ValueError("morsel_rows must be >= 1")
    _morsel_rows_override = None if rows is None else int(rows)


@contextmanager
def active(rows: Optional[int] = None):
    """Temporarily enable the fused path (optionally at ``rows``/morsel)."""
    prev_enabled = _enabled
    prev_rows = _morsel_rows_override
    enable(True)
    if rows is not None:
        set_morsel_rows(rows)
    try:
        yield
    finally:
        enable(prev_enabled)
        set_morsel_rows(prev_rows)


class Decline(Exception):
    """Raised internally when a plan cannot run on the fused path."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class _EmptyFrame:
    """Zero-row frame: evaluates an expression for its result *dtype*.

    Running the breaker's expressions over empty column slices
    reproduces numpy's promotion (and the engine's int32→int64 widening)
    without interpreting expression trees.
    """

    __slots__ = ("_database",)

    def __init__(self, database):
        self._database = database

    def array(self, key: str) -> np.ndarray:
        return self._database.column(key).values[:0]

    def column_meta(self, key: str):
        return self._database.column(key)


# ---------------------------------------------------------------------------
# Join probers: one per cached access structure, all byte-identical to
# the operator-at-a-time expansion.
# ---------------------------------------------------------------------------

def _empty_match():
    empty = np.empty(0, dtype=np.int64)
    return empty, empty


def _as_int64(array: np.ndarray) -> np.ndarray:
    return array.astype(np.int64, copy=False)


class _DenseProber:
    """Positional probe against a dense ascending key column.

    ``checked`` is False when the cached probe-column bounds prove every
    foreign key lands inside the build key range (referential
    integrity), eliding the range test.  In that case a filtered build
    probes through ``key_mask`` — the selection mask pre-shifted to raw
    key space — so the hot path is one gather plus one ``flatnonzero``;
    the base is subtracted only from the surviving rows.
    """

    __slots__ = ("base", "n_col", "mask", "key_mask", "checked")

    def __init__(self, base: int, n_col: int, mask, checked: bool):
        self.base = base
        self.n_col = n_col
        self.mask = mask
        self.checked = checked
        self.key_mask = None
        if (not checked and mask is not None
                and 0 <= base <= n_col + kernels._LOOKUP_SPAN_SLACK):
            key_mask = np.zeros(base + n_col, dtype=bool)
            key_mask[base:] = mask
            self.key_mask = key_mask

    def probe(self, fk: np.ndarray):
        stats["dense_probes"] += 1
        if self.checked:
            pos = fk - self.base  # key dtype: dimension keys fit it
            hit = (pos >= 0) & (pos < self.n_col)
            if self.mask is not None:
                hit &= self.mask[np.where(hit, pos, 0)]
            return np.flatnonzero(hit), _as_int64(pos[hit])
        if self.key_mask is not None:
            probe_idx = np.flatnonzero(self.key_mask[fk])
            build_tids = fk[probe_idx].astype(np.int64)
            build_tids -= self.base
            return probe_idx, build_tids
        if self.mask is not None:  # large/offset base: no key_mask
            pos = fk - self.base
            hit = self.mask[pos]
            return np.flatnonzero(hit), _as_int64(pos[hit])
        # Unfiltered dense build with containment: every row hits.
        pos = fk.astype(np.int64)
        pos -= self.base
        return np.arange(len(fk), dtype=np.int64), pos


class _LookupProber:
    """O(1) probe through a unique-key position table.

    The build selection mask is folded into a copy of the table at
    pipeline build time (unselected keys map to -1), so the per-morsel
    work is one gather and one sign test.  Unique keys mean at most one
    match per probe row — same outputs as the sorted-index path.
    """

    __slots__ = ("base", "span", "table", "checked")

    def __init__(self, lookup, mask, checked: bool):
        self.base = lookup.base
        self.span = len(lookup.table)
        table = lookup.table
        if mask is not None:
            selected = mask[np.maximum(table, 0)] & (table >= 0)
            table = np.where(selected, table, -1)
        if lookup.n_rows < np.iinfo(np.int32).max:
            table = table.astype(np.int32)  # halve the gather bandwidth
        self.table = table
        self.checked = checked

    def probe(self, fk: np.ndarray):
        stats["lookup_probes"] += 1
        rel = fk - self.base
        if self.checked:
            in_span = (rel >= 0) & (rel < self.span)
            pos = self.table[np.where(in_span, rel, 0)]
            hit = in_span & (pos >= 0)
        else:
            pos = self.table[rel]
            hit = pos >= 0
        return np.flatnonzero(hit), _as_int64(pos[hit])


class _SortedProber:
    """General probe through the cached stable sort order."""

    __slots__ = ("order", "sorted_values", "mask")

    def __init__(self, index, mask):
        self.order = index.order
        self.sorted_values = index.sorted_values
        self.mask = mask

    def probe(self, fk: np.ndarray):
        stats["sorted_probes"] += 1
        lo = np.searchsorted(self.sorted_values, fk, side="left")
        hi = np.searchsorted(self.sorted_values, fk, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            return _empty_match()
        probe_idx = np.repeat(np.arange(len(fk), dtype=np.int64), counts)
        starts = np.repeat(lo, counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        build_tids = self.order[starts + offsets]
        if self.mask is None:
            return probe_idx, build_tids
        keep = self.mask[build_tids]
        return probe_idx[keep], build_tids[keep]


class _Stage:
    """One fused join: probe key lineage plus the build-side prober."""

    __slots__ = ("op", "probe_table", "probe_values", "build_table",
                 "prober", "table_order")

    def __init__(self, op, probe_table, build_table, table_order):
        self.op = op
        self.probe_table = probe_table
        self.probe_values = None
        self.build_table = build_table
        self.prober = None
        self.table_order = table_order


class _GroupTerm:
    __slots__ = ("ref", "low", "radix", "stride", "dtype", "dictionary")

    def __init__(self, ref, low, radix, dtype, dictionary):
        self.ref = ref
        self.low = low
        self.radix = radix
        self.stride = 1  # filled once all radixes are known
        self.dtype = dtype
        self.dictionary = dictionary


class _AggTerm:
    __slots__ = ("aggregate", "is_integer", "compensated")

    def __init__(self, aggregate, is_integer, compensated=False):
        self.aggregate = aggregate
        self.is_integer = is_integer
        #: float sum/avg merged with Neumaier compensation (pool path);
        #: identity with the one-pass reference is gated at runtime
        self.compensated = compensated


class _DenseAggregate:
    """Mixed-radix dense-id plan for a GroupByAggregate breaker."""

    __slots__ = ("terms", "aggs", "domain", "grouped")

    def __init__(self, terms, aggs, domain, grouped):
        self.terms = terms
        self.aggs = aggs
        self.domain = domain
        self.grouped = grouped


class MorselPartial:
    """Picklable per-morsel result shipped from pool workers.

    ``kind`` is ``"agg"`` (sparse partial aggregates: present group
    ids, their row counts, and per-aggregate accumulator slices),
    ``"frame"`` (materialised column chunks), or ``"none"`` (recording
    runs carry their state in the sink instead).
    """

    __slots__ = ("index", "kind", "present", "counts", "values", "frame",
                 "chain_counts")

    def __init__(self, index, kind, present=None, counts=None, values=None,
                 frame=None, chain_counts=None):
        self.index = index
        self.kind = kind
        self.present = present
        self.counts = counts
        self.values = values
        self.frame = frame
        #: output row count per chain operator (scan, refines, joins) —
        #: summed across partials to replay the nominal-row arithmetic
        self.chain_counts = chain_counts


class _Accumulator:
    """Breaker-side merge state for one pooled execution."""

    __slots__ = ("kind", "counts", "sums", "extrema", "comps", "chunks")

    def __init__(self, kind):
        self.kind = kind
        self.counts = None
        self.sums: Dict[str, np.ndarray] = {}
        self.extrema: Dict[str, np.ndarray] = {}
        #: Neumaier compensation terms for float sum/avg aliases
        self.comps: Dict[str, np.ndarray] = {}
        self.chunks: List[MorselPartial] = []


class FusedPipeline:
    """A plan's fused form, bound to one database.

    Build with :func:`build`.  Two consumption styles:

    * *recording* (sequential): :meth:`run_recorded` executes every
      morsel, then fills the covered operators' memos with
      byte-identical result tuples.
    * *pooled*: :meth:`run_morsel` with ``collect=True`` returns a
      small picklable :class:`MorselPartial` per range; the scheduling
      side merges them with :meth:`absorb` / :meth:`finalize` and
      applies :meth:`run_tail`.
    """

    def __init__(self, plan, database):
        self.plan = plan
        self.database = database
        self.fact_table: str = ""
        self.fact_rows: int = 0
        self.scan_op: Optional[ScanSelect] = None
        self.fact_predicate = None
        self.refines: List[RefineSelect] = []
        self.stages: List[_Stage] = []
        self.breaker = None
        self.breaker_kind: str = ""  # "agg" | "frame"
        self.dense: Optional[_DenseAggregate] = None
        self.tail: List = []  # breaker → root, in execution order
        self.covered_ops: List = []

    # -- capability queries -------------------------------------------

    @property
    def supports_partials(self) -> bool:
        """True when morsels reduce to small partials a pool can ship
        (dense aggregation or plain materialisation)."""
        return self.breaker_kind == "frame" or self.dense is not None

    @property
    def compensated(self) -> bool:
        """True when any aggregate merges float partials with Neumaier
        compensation — pooled results then need the byte-identity gate."""
        return (self.dense is not None
                and any(term.compensated for term in self.dense.aggs))

    def ranges(self) -> List[Tuple[int, int]]:
        rows = self.fact_rows
        if rows == 0:
            return [(0, 0)]
        size = morsel_rows()
        return [(start, min(start + size, rows))
                for start in range(0, rows, size)]

    # -- per-morsel execution -----------------------------------------

    def run_morsel(self, start: int, stop: int, index: int = 0,
                   sink: Optional[Dict[int, list]] = None,
                   collect: bool = False) -> MorselPartial:
        """Run the fused chain over fact rows ``[start, stop)``.

        With ``sink`` (op_id → chunk list), records the per-operator
        intermediate chunks the unfused path would have produced.  With
        ``collect``, reduces the breaker over the morsel and returns
        the partial result.
        """
        stats["morsels"] += 1
        database = self.database
        block = _BlockFrame(database)
        block.set_range(start, stop)

        chain_counts: Optional[List[int]] = [] if collect else None

        # Scan + refines: cumulative mask over the morsel's rows.
        fact_tids: Optional[np.ndarray] = None  # None = all of [start, stop)
        if self.fact_predicate is not None or self.refines:
            if self.fact_predicate is not None:
                cum = np.asarray(self.fact_predicate.evaluate(block),
                                 dtype=bool)
                if sink is not None:
                    sink[self.scan_op.op_id].append(cum)
                if chain_counts is not None:
                    chain_counts.append(int(np.count_nonzero(cum)))
            else:
                cum = np.ones(stop - start, dtype=bool)
                if chain_counts is not None:
                    chain_counts.append(stop - start)
            for refine in self.refines:
                cum = cum & np.asarray(refine.predicate.evaluate(block),
                                       dtype=bool)
                if sink is not None:
                    sink[refine.op_id].append(cum)
                if chain_counts is not None:
                    chain_counts.append(int(np.count_nonzero(cum)))
            fact_tids = start + np.flatnonzero(cum)
        elif chain_counts is not None:
            chain_counts.append(stop - start)

        # Join chain: keep aligned absolute tids per reachable table.
        current: Dict[str, Optional[np.ndarray]] = {self.fact_table: fact_tids}
        for stage in self.stages:
            probe_tids = current[stage.probe_table]
            if probe_tids is None:
                fk = stage.probe_values[start:stop]
            else:
                fk = stage.probe_values[probe_tids]
            probe_idx, build_tids = stage.prober.probe(fk)
            advanced: Dict[str, np.ndarray] = {}
            for name, tids in current.items():
                if tids is None:
                    advanced[name] = start + probe_idx
                else:
                    advanced[name] = tids[probe_idx]
            advanced[stage.build_table] = build_tids
            current = advanced
            if sink is not None:
                sink[stage.op.op_id].append(advanced)
            if chain_counts is not None:
                chain_counts.append(len(probe_idx))

        if not collect:
            return MorselPartial(index, "none")
        chain = tuple(chain_counts)

        # Breaker input frame.
        only_fact = len(current) == 1 and current[self.fact_table] is None
        if only_fact:
            frame = block
            n_rows = stop - start
        else:
            positions = {
                name: (np.arange(start, stop, dtype=np.int64)
                       if tids is None else tids)
                for name, tids in current.items()
            }
            frame = Frame(database, positions)
            first = next(iter(current.values()))
            n_rows = (stop - start) if first is None else len(first)

        if self.breaker_kind == "frame":
            partial = self._materialize_partial(index, frame)
        else:
            partial = self._aggregate_partial(index, frame, n_rows)
        partial.chain_counts = chain
        return partial

    def _materialize_partial(self, index, frame) -> MorselPartial:
        columns: Dict[str, np.ndarray] = {}
        gathered: Dict[str, np.ndarray] = {}
        for alias, expr in self.breaker.items:
            if isinstance(expr, ColumnRef):
                array = gathered.get(expr.key)
                if array is None:
                    array = np.asarray(expr.evaluate(frame))
                    gathered[expr.key] = array
                columns[alias] = array
            else:
                columns[alias] = np.asarray(expr.evaluate(frame))
        return MorselPartial(index, "frame", frame=columns)

    def _group_ids(self, frame, n_rows: int) -> np.ndarray:
        ids = np.zeros(n_rows, dtype=np.int64)
        for term in self.dense.terms:
            values = np.asarray(term.ref.evaluate(frame))
            ids += (values.astype(np.int64) - term.low) * term.stride
        return ids

    def _aggregate_partial(self, index, frame, n_rows) -> MorselPartial:
        """Sparse per-morsel partial: group ids compressed through a
        morsel-local ``np.unique`` (tiny — at most one morsel of rows),
        never touching the full dense domain."""
        ids = self._group_ids(frame, n_rows)
        present, inverse = np.unique(ids, return_inverse=True)
        n_local = len(present)
        counts = np.bincount(inverse, minlength=n_local)
        values_out: Dict[str, np.ndarray] = {}
        for term in self.dense.aggs:
            aggregate = term.aggregate
            if aggregate.func == "count":
                continue
            values = np.asarray(aggregate.expr.evaluate(frame))
            if values.dtype == np.int32:
                values = values.astype(np.int64)
            if aggregate.func in ("sum", "avg"):
                partial = np.bincount(inverse, weights=values,
                                      minlength=n_local)
            elif aggregate.func == "min":
                partial = np.full(n_local, np.inf)
                np.minimum.at(partial, inverse, values)
            else:  # max
                partial = np.full(n_local, -np.inf)
                np.maximum.at(partial, inverse, values)
            values_out[aggregate.alias] = partial
        return MorselPartial(index, "agg", present=present, counts=counts,
                             values=values_out)

    # -- merging (pooled) ---------------------------------------------

    def new_accumulator(self) -> _Accumulator:
        if self.breaker_kind == "frame":
            return _Accumulator("frame")
        if self.dense is None:
            raise Decline("no_partials")
        acc = _Accumulator("agg")
        acc.counts = np.zeros(self.dense.domain, dtype=np.int64)
        for term in self.dense.aggs:
            aggregate = term.aggregate
            if aggregate.func in ("sum", "avg"):
                acc.sums[aggregate.alias] = np.zeros(self.dense.domain)
                if term.compensated:
                    acc.comps[aggregate.alias] = np.zeros(self.dense.domain)
            elif aggregate.func == "min":
                acc.extrema[aggregate.alias] = np.full(self.dense.domain,
                                                       np.inf)
            elif aggregate.func == "max":
                acc.extrema[aggregate.alias] = np.full(self.dense.domain,
                                                       -np.inf)
        return acc

    def absorb(self, acc: _Accumulator, partial: MorselPartial) -> None:
        """Merge one morsel partial.  Aggregate merging is order-free
        (integer sums are exact, extrema commute); frame chunks are
        ordered by morsel index at finalisation."""
        if partial.kind == "none":
            return
        stats["partial_merges"] += 1
        if partial.kind == "frame":
            acc.chunks.append(partial)
            return
        present = partial.present
        acc.counts[present] += partial.counts
        for term in self.dense.aggs:
            aggregate = term.aggregate
            if aggregate.func == "count":
                continue
            shipped = partial.values[aggregate.alias]
            if aggregate.func in ("sum", "avg"):
                if term.compensated:
                    # Neumaier: accumulate the rounding error of every
                    # merge so finalisation can add it back in one step.
                    stats["compensated_merges"] += 1
                    target = acc.sums[aggregate.alias]
                    old = target[present]
                    merged = old + shipped
                    lost = np.where(
                        np.abs(old) >= np.abs(shipped),
                        (old - merged) + shipped,
                        (shipped - merged) + old,
                    )
                    acc.comps[aggregate.alias][present] += lost
                    target[present] = merged
                else:
                    acc.sums[aggregate.alias][present] += shipped
            elif aggregate.func == "min":
                target = acc.extrema[aggregate.alias]
                target[present] = np.minimum(target[present], shipped)
            else:
                target = acc.extrema[aggregate.alias]
                target[present] = np.maximum(target[present], shipped)

    # -- finalisation --------------------------------------------------

    def finalize(self, acc: _Accumulator,
                 prev_nominal: int) -> OperatorResult:
        """Breaker result from merged partials (pooled executions)."""
        if acc.kind == "frame":
            return self._finalize_frame(acc, prev_nominal)
        return self._finalize_aggregate(acc.counts, acc.sums, acc.extrema,
                                        acc.comps)

    def _finalize_frame(self, acc: _Accumulator,
                        prev_nominal: int) -> OperatorResult:
        acc.chunks.sort(key=lambda partial: partial.index)
        columns: Dict[str, np.ndarray] = {}
        dictionaries: Dict[str, list] = {}
        merged: Dict[str, np.ndarray] = {}
        for alias, expr in self.breaker.items:
            if isinstance(expr, ColumnRef):
                array = merged.get(expr.key)
                if array is None:
                    array = np.concatenate(
                        [chunk.frame[alias] for chunk in acc.chunks]
                    )
                    merged[expr.key] = array
                columns[alias] = array
                meta = self.database.column(expr.key)
                if meta.ctype is ColumnType.STRING:
                    dictionaries[alias] = meta.dictionary
            else:
                columns[alias] = np.concatenate(
                    [chunk.frame[alias] for chunk in acc.chunks]
                )
        frame_out = ResultFrame(columns, dictionaries)
        return OperatorResult(
            frame_out,
            actual_rows=len(frame_out),
            nominal_rows=prev_nominal,
            row_width_bytes=frame_out.width_bytes,
        )

    def _reduce_dense(self, payload: TidSet, n_rows: int) -> OperatorResult:
        """One-pass dense-id aggregation over the fused chain's output
        (the sequential path's breaker: no sort, no per-morsel work)."""
        frame = Frame(self.database, payload.tables)
        ids = self._group_ids(frame, n_rows)
        dense = self.dense
        counts = np.bincount(ids, minlength=dense.domain)
        sums: Dict[str, np.ndarray] = {}
        extrema: Dict[str, np.ndarray] = {}
        for term in dense.aggs:
            aggregate = term.aggregate
            if aggregate.func == "count":
                continue
            values = np.asarray(aggregate.expr.evaluate(frame))
            if values.dtype == np.int32:
                values = values.astype(np.int64)
            if aggregate.func in ("sum", "avg"):
                sums[aggregate.alias] = np.bincount(
                    ids, weights=values, minlength=dense.domain
                )
            elif aggregate.func == "min":
                out = np.full(dense.domain, np.inf)
                np.minimum.at(out, ids, values)
                extrema[aggregate.alias] = out
            else:
                out = np.full(dense.domain, -np.inf)
                np.maximum.at(out, ids, values)
                extrema[aggregate.alias] = out
        return self._finalize_aggregate(counts, sums, extrema)

    def _finalize_aggregate(self, counts, sums, extrema,
                            comps=None) -> OperatorResult:
        """Build the breaker frame from dense accumulators, replicating
        ``GroupByAggregate._aggregate``'s dtype and rounding rules."""
        dense = self.dense
        comps = comps or {}
        stats["dense_aggregates"] += 1
        if dense.grouped:
            present = np.flatnonzero(counts)
        else:
            present = np.arange(1)
        columns: Dict[str, np.ndarray] = {}
        dictionaries: Dict[str, list] = {}
        for term in dense.terms:
            codes = term.low + (present // term.stride) % term.radix
            columns[term.ref.name] = codes.astype(term.dtype)
            if term.dictionary is not None:
                dictionaries[term.ref.name] = term.dictionary
        group_counts = counts[present]
        for term in dense.aggs:
            aggregate = term.aggregate
            if aggregate.func == "count":
                columns[aggregate.alias] = group_counts.astype(np.int64)
                continue
            if aggregate.func == "sum":
                totals = sums[aggregate.alias][present]
                if aggregate.alias in comps:
                    totals = totals + comps[aggregate.alias][present]
                if term.is_integer:
                    columns[aggregate.alias] = np.round(totals).astype(
                        np.int64
                    )
                else:
                    columns[aggregate.alias] = totals
                continue
            if aggregate.func == "avg":
                totals = sums[aggregate.alias][present]
                if aggregate.alias in comps:
                    totals = totals + comps[aggregate.alias][present]
                columns[aggregate.alias] = totals / np.maximum(
                    group_counts, 1
                )
                continue
            out = extrema[aggregate.alias][present]
            finite = np.isfinite(out)
            if term.is_integer:
                result = np.zeros(len(present), dtype=np.int64)
                result[finite] = out[finite].astype(np.int64)
                columns[aggregate.alias] = result
            else:
                out = out.copy()
                out[~finite] = 0.0
                columns[aggregate.alias] = out
        frame_out = ResultFrame(columns, dictionaries)
        return OperatorResult(
            frame_out,
            actual_rows=len(frame_out),
            nominal_rows=len(frame_out),
            row_width_bytes=frame_out.width_bytes,
        )

    def run_tail(self, result: OperatorResult) -> OperatorResult:
        """Apply the tail operators (Sort/Limit/...) above the breaker."""
        for op in self.tail:
            result = op.run(self.database, [result])
        return result

    # -- chunked execution (worker side of the morsel pool) ------------

    def run_chunk(self, start: int, stop: int,
                  progress=None) -> MorselPartial:
        """Run every morsel of fact rows ``[start, stop)`` and merge
        them locally into ONE picklable partial — the pool ships a
        single message per worker chunk instead of one per morsel.

        ``progress`` (no-arg callable) fires after each morsel; pool
        workers heartbeat through it so the parent's watchdog can tell
        a slow chunk from a hung process.
        """
        acc = self.new_accumulator()
        totals: Optional[Tuple[int, ...]] = None
        size = morsel_rows()
        spans = ([(start, stop)] if start == stop
                 else [(pos, min(pos + size, stop))
                       for pos in range(start, stop, size)])
        for span_start, span_stop in spans:
            partial = self.run_morsel(span_start, span_stop,
                                      index=span_start, collect=True)
            if progress is not None:
                progress()
            self.absorb(acc, partial)
            totals = (partial.chain_counts if totals is None else
                      tuple(a + b for a, b in
                            zip(totals, partial.chain_counts)))
        if totals is None:
            totals = tuple(0 for _ in self.covered_ops[:-1])
        return self._pack_chunk(start, acc, totals)

    def _pack_chunk(self, index: int, acc: _Accumulator,
                    totals: Tuple[int, ...]) -> MorselPartial:
        if acc.kind == "frame":
            acc.chunks.sort(key=lambda partial: partial.index)
            frame = {
                alias: np.concatenate(
                    [chunk.frame[alias] for chunk in acc.chunks]
                )
                for alias, _ in self.breaker.items
            }
            return MorselPartial(index, "frame", frame=frame,
                                 chain_counts=totals)
        present = np.flatnonzero(acc.counts)
        values: Dict[str, np.ndarray] = {}
        for term in self.dense.aggs:
            aggregate = term.aggregate
            if aggregate.func == "count":
                continue
            if aggregate.func in ("sum", "avg"):
                shipped = acc.sums[aggregate.alias][present]
                if aggregate.alias in acc.comps:
                    # Collapse the chunk-local compensation into the
                    # shipped value; the parent re-compensates merges.
                    shipped = shipped + acc.comps[aggregate.alias][present]
                values[aggregate.alias] = shipped
            else:
                values[aggregate.alias] = (
                    acc.extrema[aggregate.alias][present]
                )
        return MorselPartial(index, "agg", present=present,
                             counts=acc.counts[present], values=values,
                             chain_counts=totals)

    def replay_nominal(self, totals: Tuple[int, ...]) -> Tuple[int, int]:
        """(actual, nominal) rows of the chain's last operator, replayed
        from summed per-op output counts — the same arithmetic the
        sequential path applies while recording."""
        table = self.database.table(self.fact_table)
        if self.fact_predicate is None:
            prev_actual, prev_nominal = table.actual_rows, table.nominal_rows
        else:
            n_out = totals[0]
            prev_nominal = scaled_nominal_rows(n_out, table.actual_rows,
                                               table.nominal_rows)
            prev_actual = n_out
        idx = 1
        for _ in self.refines:
            n_out = totals[idx]
            idx += 1
            prev_nominal = scaled_nominal_rows(n_out, max(prev_actual, 1),
                                               prev_nominal)
            prev_actual = n_out
        for _ in self.stages:
            n_out = totals[idx]
            idx += 1
            prev_nominal = scaled_nominal_rows(n_out, max(prev_actual, 1),
                                               prev_nominal)
            prev_actual = n_out
        return prev_actual, prev_nominal

    # -- recording -----------------------------------------------------

    def run_recorded(self) -> None:
        """Sequential fused execution: run every morsel, then fill every
        covered operator's memo with the byte-identical result tuple."""
        sink = {op.op_id: [] for op in self.covered_ops}
        for start, stop in self.ranges():
            self.run_morsel(start, stop, sink=sink)
        self._record(sink)

    def _record(self, sink: Dict[int, list]) -> None:
        database = self.database
        table = database.table(self.fact_table)

        if self.fact_predicate is None:
            entry = SelectionVector(n=table.actual_rows)
            cached = (TidSet({self.fact_table: entry}),
                      table.actual_rows, table.nominal_rows, 0)
        else:
            mask = np.concatenate(sink[self.scan_op.op_id])
            entry = SelectionVector(mask)
            n_out = len(entry)
            nominal = scaled_nominal_rows(n_out, table.actual_rows,
                                          table.nominal_rows)
            cached = (TidSet({self.fact_table: entry}),
                      n_out, nominal, TID_BYTES)
        self._memoise(self.scan_op, cached)
        prev_actual, prev_nominal = cached[1], cached[2]

        for refine in self.refines:
            mask = np.concatenate(sink[refine.op_id])
            entry = SelectionVector(mask)
            n_out = len(entry)
            nominal = scaled_nominal_rows(n_out, max(prev_actual, 1),
                                          prev_nominal)
            cached = (TidSet({self.fact_table: entry}),
                      n_out, nominal, TID_BYTES)
            self._memoise(refine, cached)
            prev_actual, prev_nominal = n_out, nominal

        last_cached = cached
        for stage in self.stages:
            chunks = sink[stage.op.op_id]
            tables = {
                name: np.concatenate([chunk[name] for chunk in chunks])
                for name in stage.table_order
            }
            n_out = len(next(iter(tables.values())))
            nominal = scaled_nominal_rows(n_out, max(prev_actual, 1),
                                          prev_nominal)
            cached = (TidSet(tables), n_out, nominal,
                      TID_BYTES * len(tables))
            self._memoise(stage.op, cached)
            prev_actual, prev_nominal = n_out, nominal
            last_cached = cached

        if self.breaker_kind == "agg" and self.dense is not None:
            stats["partial_merges"] += len(self.ranges())
            result = self._reduce_dense(last_cached[0], last_cached[1])
        else:
            # Materialise / non-dense aggregate: run the breaker once
            # at the barrier over the fused chain's recorded output.
            if self.breaker_kind == "agg":
                stats["barrier_breakers"] += 1
            child = OperatorResult(*last_cached)
            self.breaker.produce(database, [child])
            return  # produce() memoised the breaker itself
        cached = (result.payload, result.actual_rows, result.nominal_rows,
                  result.row_width_bytes)
        self._memoise(self.breaker, cached)

    def _memoise(self, op, cached) -> None:
        op._cached_result = cached
        plan_cache.store(self.database, op.fingerprint(), cached)


# ---------------------------------------------------------------------------
# Pipeline construction
# ---------------------------------------------------------------------------

_TAIL_OPS = (Sort, Limit, FrameFilter, Distinct)


def _analyze_structure(pipe: FusedPipeline) -> None:
    """Peel the plan into tail / breaker / join chain / scan, or decline."""
    node = pipe.plan.root
    tail = []
    while isinstance(node, _TAIL_OPS):
        tail.append(node)
        node = node.children[0]
    pipe.tail = list(reversed(tail))

    if isinstance(node, GroupByAggregate):
        pipe.breaker_kind = "agg"
    elif isinstance(node, Materialize):
        pipe.breaker_kind = "frame"
    else:
        raise Decline("breaker_shape")
    pipe.breaker = node

    joins: List[HashJoin] = []
    node = node.children[0]
    while isinstance(node, HashJoin):
        joins.append(node)
        node = node.children[0]
    while isinstance(node, RefineSelect):
        pipe.refines.append(node)
        node = node.children[0]
    if not isinstance(node, ScanSelect):
        raise Decline("leaf_shape")
    pipe.scan_op = node
    pipe.fact_table = node.table
    pipe.fact_predicate = node.predicate
    pipe.refines.reverse()
    for refine in pipe.refines:
        if refine.table != pipe.fact_table:
            raise Decline("refine_table")

    joins.reverse()  # execution order: bottom-up
    available = [pipe.fact_table]
    for join in joins:
        build = join.children[1]
        if not isinstance(build, ScanSelect):
            raise Decline("build_shape")
        if build.table != join.build_key.table:
            raise Decline("build_shape")
        if join.probe_key.table not in available:
            raise Decline("probe_lineage")
        if build.table in available:
            raise Decline("duplicate_table")
        available.append(build.table)
        pipe.stages.append(_Stage(join, join.probe_key.table, build.table,
                                  list(available)))

    pipe.covered_ops = ([pipe.scan_op] + pipe.refines
                        + [stage.op for stage in pipe.stages]
                        + [pipe.breaker])


def _prepare_probers(pipe: FusedPipeline, cache) -> None:
    """Run the build-side scans (memoised) and pick a prober each."""
    database = pipe.database
    for stage in pipe.stages:
        join = stage.op
        build_result = join.children[1].produce(database, [])
        selection = build_result.payload.selection(stage.build_table)
        if selection is None:
            raise Decline("build_not_lazy")
        build_column = database.column(join.build_key.key)
        if selection.n != len(build_column.values):
            raise Decline("build_stale")
        mask = None if selection.is_all else selection.mask
        probe_column = database.column(join.probe_key.key)
        stage.probe_values = probe_column.values
        index = cache.join_index(build_column)
        integer_probe = probe_column.values.dtype.kind in "iu"
        probe_bounds = (cache.column_bounds(probe_column)
                        if integer_probe else None)
        if index.dense_base is not None and integer_probe:
            base = index.dense_base
            n_col = len(build_column.values)
            checked = not (probe_bounds is not None
                           and probe_bounds[0] >= base
                           and probe_bounds[1] < base + n_col)
            stage.prober = _DenseProber(base, n_col, mask, checked)
            continue
        lookup = cache.position_lookup(build_column) if integer_probe else None
        if lookup is not None:
            checked = not (probe_bounds is not None
                           and probe_bounds[0] >= lookup.base
                           and probe_bounds[1] < lookup.base
                           + len(lookup.table))
            stage.prober = _LookupProber(lookup, mask, checked)
        else:
            stage.prober = _SortedProber(index, mask)


def _prepare_dense_aggregate(pipe: FusedPipeline, cache) -> None:
    """Plan the mixed-radix aggregation, or leave ``dense`` unset (the
    breaker then runs once at a barrier over the fused chain)."""
    breaker = pipe.breaker
    database = pipe.database
    available = ([pipe.fact_table]
                 + [stage.build_table for stage in pipe.stages])
    empty = _EmptyFrame(database)

    terms: List[_GroupTerm] = []
    domain = 1
    for ref in breaker.group_refs:
        if not isinstance(ref, ColumnRef) or ref.table not in available:
            return
        column = database.column(ref.key)
        bounds = cache.column_bounds(column)
        if bounds is None:
            return
        low, high = bounds
        radix = high - low + 1
        domain *= radix
        if domain > GROUP_DOMAIN_CAP:
            return
        dictionary = (column.dictionary
                      if column.ctype is ColumnType.STRING else None)
        terms.append(_GroupTerm(ref, low, radix, column.values.dtype,
                                dictionary))
    stride = 1
    for term in reversed(terms):
        term.stride = stride
        stride *= term.radix

    aggs: List[_AggTerm] = []
    for aggregate in breaker.aggregates:
        if aggregate.func == "count":
            aggs.append(_AggTerm(aggregate, True))
            continue
        try:
            probe = np.asarray(aggregate.expr.evaluate(empty))
        except Exception:
            return
        if probe.dtype == np.int32:
            probe = probe.astype(np.int64)
        is_integer = bool(np.issubdtype(probe.dtype, np.integer))
        if aggregate.func in ("sum", "avg") and not is_integer:
            if probe.dtype.kind not in "f":
                return
            # Float partial sums can reorder rounding across chunks;
            # merge them with Neumaier compensation and let the pool's
            # byte-identity gate decline queries where it still shows.
            aggs.append(_AggTerm(aggregate, False, compensated=True))
            continue
        if aggregate.func in ("min", "max") and probe.dtype.kind not in "iufb":
            return
        aggs.append(_AggTerm(aggregate, is_integer))

    pipe.dense = _DenseAggregate(terms, aggs, domain,
                                 grouped=bool(breaker.group_refs))


def build(plan, database) -> FusedPipeline:
    """Analyse and bind ``plan``; raises :class:`Decline` when the plan
    cannot run fused."""
    cache = kernels.cache_for(database)
    if cache is None:
        raise Decline("kernels_disabled")
    pipe = FusedPipeline(plan, database)
    _analyze_structure(pipe)
    pipe.fact_rows = database.table(pipe.fact_table).actual_rows
    _prepare_probers(pipe, cache)
    if pipe.breaker_kind == "agg":
        _prepare_dense_aggregate(pipe, cache)
    return pipe


def execute_direct(plan, database) -> Optional[OperatorResult]:
    """Serve a ``Limit``-rooted plan straight from the fused chain with
    cross-chunk early termination, or return None.

    Eligible plans have a materialising breaker whose only tail
    operator is the root ``Limit``: morsels are consumed in ascending
    fact order, and once the merged frame holds ``n`` rows the
    remaining ranges never run.  Identity with the reference path is
    structural: the processed prefix's concatenation equals the full
    run's first rows (ascending chunk merge), and ``Limit``'s nominal
    count is ``min(child_nominal, n)`` — when the scan stops early the
    gathered rows already reach ``n`` and ``scaled_nominal_rows`` keeps
    every chain nominal at or above its actual count, so both the
    partial and the full child nominal clamp to ``n``.  Aggregating
    breakers (every input row matters) and extra tail operators (a
    ``Sort`` below the ``Limit`` needs all rows) are declined,
    reason-counted under ``limit_*``.

    The served result is **never memoised**: the covered operators'
    memos would hold prefix-only intermediates, poisoning later plans
    that share the chain.
    """
    root = plan.root
    if not isinstance(root, Limit):
        return None
    try:
        if root.n <= 0:
            raise Decline("limit_nonpositive")
        if (root._cached_result is not None
                or plan_cache.peek(database, root.fingerprint())
                is not None):
            # the ordinary path serves the memo for free — and the
            # direct path must never shadow recorded full results
            raise Decline("limit_memoised")
        pipe = build(plan, database)
        if pipe.breaker_kind != "frame":
            raise Decline("limit_breaker")
        if pipe.tail != [root]:
            raise Decline("limit_tail")
        acc = pipe.new_accumulator()
        totals: Optional[Tuple[int, ...]] = None
        gathered = 0
        stopped_at: Optional[int] = None
        for start, stop in pipe.ranges():
            partial = pipe.run_morsel(start, stop, index=start,
                                      collect=True)
            pipe.absorb(acc, partial)
            totals = (partial.chain_counts if totals is None else
                      tuple(a + b for a, b in
                            zip(totals, partial.chain_counts)))
            gathered += partial.chain_counts[-1]
            if gathered >= root.n:
                stopped_at = stop
                break
        if not acc.chunks:
            raise Decline("limit_empty")
        _, prev_nominal = pipe.replay_nominal(totals)
        result = pipe.run_tail(pipe.finalize(acc, prev_nominal))
    except Decline as decline:
        reason = decline.reason
        if not reason.startswith("limit_"):
            reason = "limit_" + reason
        decline_reasons[reason] += 1
        return None
    except Exception:
        decline_reasons["limit_error"] += 1
        return None
    stats["limit_fused_queries"] += 1
    if stopped_at is not None and stopped_at < pipe.fact_rows:
        stats["limit_early_stops"] += 1
        stats["limit_rows_skipped"] += pipe.fact_rows - stopped_at
    return result


def prepare_fused(plan, database) -> bool:
    """Record-mode fused execution: run the plan's fused chain and fill
    the covered operators' memos.  Returns True when the plan ran fused
    (the executor loop then serves memoised results), False when fusion
    declined or everything was already memoised."""
    try:
        pipe = build(plan, database)
        if all(
            op._cached_result is not None
            or plan_cache.peek(database, op.fingerprint()) is not None
            for op in pipe.covered_ops
        ):
            return False
        pipe.run_recorded()
    except Decline as decline:
        stats["declined_queries"] += 1
        decline_reasons[decline.reason] += 1
        return False
    except Exception:
        # Never let the acceleration layer break a query: anything the
        # fused path trips over, the unfused path will surface properly.
        stats["declined_queries"] += 1
        decline_reasons["error"] += 1
        return False
    stats["fused_queries"] += 1
    stats["fused_operators"] += len(pipe.covered_ops)
    return True
