"""Execution context shared by all simulated executors."""

from __future__ import annotations

from typing import Optional

from repro.engine.execution.resilience import ResilienceManager
from repro.hardware import HardwareSystem
from repro.hype import LearnedCostModel, LoadTracker
from repro.storage import Database


class ExecutionContext:
    """Everything an executor needs: devices, catalog, HyPE state."""

    def __init__(
        self,
        hardware: HardwareSystem,
        database: Database,
        cost_model: Optional[LearnedCostModel] = None,
    ):
        self.hardware = hardware
        self.database = database
        self.env = hardware.env
        self.metrics = hardware.metrics
        self.profile = hardware.profile
        self.cost_model = (
            cost_model
            if cost_model is not None
            else LearnedCostModel(hardware.profile)
        )
        #: retry policy + per-device circuit breakers; inert (always
        #: "go ahead") when the hardware has no fault injector
        self.resilience = ResilienceManager(
            config=getattr(hardware, "fault_config", None),
            metrics=self.metrics,
        )
        self.load = LoadTracker()
        self.load.attach_resilience(self.resilience, clock=lambda: self.env.now)
        #: optional per-operator timeline (set to an ExecutionTrace to
        #: record one; see repro.metrics.trace)
        self.trace = None
        #: intra-operator split execution state (a
        #: :class:`~repro.engine.execution.split.SplitState`); None when
        #: the layer is off, so disabled runs pay one ``is not None``
        self.split = None
        #: HyPE algorithm selection (disable to always run the default
        #: bulk algorithm; see benchmarks/bench_ablation_algorithms.py)
        self.algorithm_selection = True

    def with_database(self, database: Database) -> "ExecutionContext":
        """Shallow fork bound to another catalog snapshot.

        Service mode pins each in-flight query to the table epoch it
        arrived under: the fork shares hardware, cost model, breakers
        and load tracker with the live context, but resolves columns
        against the pinned snapshot.  Split identity gates were proved
        against the base epoch's data, so forks of a *different*
        database drop the split state rather than trust stale gates.
        """
        fork = ExecutionContext.__new__(ExecutionContext)
        fork.__dict__.update(self.__dict__)
        fork.database = database
        if database is not self.database:
            fork.split = None
        return fork

    @property
    def gpu_cache(self):
        return self.hardware.gpu_cache

    @property
    def gpu_heap(self):
        return self.hardware.gpu_heap

    @property
    def bus(self):
        return self.hardware.bus
