"""Vector-at-a-time execution (the alternative processing model of
Sec. 5.5).

The operator-at-a-time engine materialises every intermediate.  A
vectorized engine instead streams cache-resident chunks (vectors)
through *pipelines* — maximal operator chains without a pipeline
breaker — and only materialises at the breakers (hash-table builds,
aggregation, sorting, result delivery).

Consequences modelled here, following the paper's discussion:

* **No column staging**: vectors stream over the bus, overlapping
  compute; an uncached input costs ``max(transfer, compute)`` instead
  of their sum, and never occupies the device heap.
* **Heap demand shrinks to the breakers**: hash tables and
  materialised breaker outputs still need device memory, so heap
  contention persists for "reasonably complex query workloads" —
  exactly the paper's point.
* **Cross-processor vector splitting** (Chen et al.): when both
  processors can run a pipeline, its vectors are split so CPU and GPU
  finish together; the GPU's share is bounded by the PCIe rate when
  the inputs are not cached.

Pipelines are placed as a unit: the data-driven rule requires every
column any member operator reads to be device-resident; the cost-based
rule compares whole-pipeline estimates.

Functional results are produced by the same operator implementations,
so vectorized runs return exactly the same answers.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Set

from repro.engine.execution.context import ExecutionContext
from repro.engine.execution.lifecycle import QueryCancelled
from repro.engine.intermediates import OperatorResult
from repro.engine.operators import (
    HashJoin,
    PhysicalOperator,
    PhysicalPlan,
    RefineSelect,
    ScanSelect,
)
from repro.hardware import DeviceFault
from repro.hardware.processor import ProcessorKind
from repro.sim import Interrupted, Process


def is_pipelineable(op: PhysicalOperator) -> bool:
    """Operators that forward vectors without materialising.

    Selections pipeline trivially; a hash join pipelines its *probe*
    side (the build side is a breaker feeding the hash table).
    """
    return isinstance(op, (ScanSelect, RefineSelect, HashJoin))


class Pipeline:
    """A maximal chain of pipelineable operators ending in a breaker
    (or in the plan root)."""

    def __init__(self, operators: List[PhysicalOperator]):
        if not operators:
            raise ValueError("a pipeline has at least one operator")
        self.operators = operators

    @property
    def terminal(self) -> PhysicalOperator:
        return self.operators[-1]

    def required_columns(self) -> Set[str]:
        keys: Set[str] = set()
        for op in self.operators:
            keys |= op.required_columns()
        return keys

    def __repr__(self) -> str:
        return "<Pipeline {}>".format(
            " -> ".join(op.label for op in self.operators)
        )


def build_pipelines(plan: PhysicalPlan) -> List[List[PhysicalOperator]]:
    """Split a plan into pipelines (post-order list of operator chains).

    Returns chains such that executing them in order respects all
    dependencies: a chain's inputs are either base columns or the
    outputs of earlier chains.
    """
    chains: List[List[PhysicalOperator]] = []

    def walk(op: PhysicalOperator) -> List[PhysicalOperator]:
        """Returns the open chain ending at ``op``."""
        if isinstance(op, HashJoin):
            probe_chain = walk(op.children[0])
            build_chain = walk(op.children[1])
            # the build side breaks here: its chain materialises into
            # the join's hash table
            chains.append(build_chain)
            return probe_chain + [op]
        if isinstance(op, RefineSelect):
            return walk(op.children[0]) + [op]
        if isinstance(op, ScanSelect):
            return [op]
        # breaker: every child chain materialises before it runs
        for child in op.children:
            chains.append(walk(child))
        return [op]

    chains.append(walk(plan.root))
    return chains


class VectorizedExecutor:
    """Runs plans pipeline-at-a-time with vector streaming."""

    def __init__(self, ctx: ExecutionContext, strategy,
                 allow_split: bool = True):
        self.ctx = ctx
        self.strategy = strategy
        self.allow_split = allow_split

    # -- public API ----------------------------------------------------

    def submit(self, plan: PhysicalPlan, qctx=None) -> Process:
        """Execute ``plan``; returns a process yielding the root result.

        With a ``qctx``
        (:class:`~repro.engine.execution.lifecycle.QueryContext`) the
        plan process registers for cooperative cancellation; a cancel
        interrupts it and every device-located intermediate is
        released.
        """
        process = self.ctx.env.process(self._run_plan(plan, qctx))
        if qctx is not None:
            process.defused = True
            qctx.register(process)
        return process

    # -- internals ----------------------------------------------------------

    def _run_plan(self, plan: PhysicalPlan, qctx=None) -> Generator:
        results: Dict[int, OperatorResult] = {}
        pipelines = [Pipeline(chain) for chain in build_pipelines(plan)]
        # map each pipeline to the (later) pipeline consuming its output
        consumers: Dict[int, Pipeline] = {}
        for pipeline in pipelines:
            for op in pipeline.operators:
                for child in op.children:
                    consumers[child.op_id] = pipeline
        try:
            for pipeline in pipelines:
                if qctx is not None:
                    qctx.check()
                consumer = consumers.get(pipeline.terminal.op_id)
                yield from self._run_pipeline(pipeline, results, consumer,
                                              qctx)
            result = results[plan.root.op_id]
            if result.location != "cpu":
                yield from self.ctx.hardware.host_transfer(
                    result.nominal_bytes, "d2h", device=result.location
                )
                result.release_device_memory()
                result.location = "cpu"
        except (Interrupted, QueryCancelled):
            # cancelled mid-plan: every device-located intermediate of
            # this query must leave the heap before we unwind
            for intermediate in results.values():
                intermediate.release_device_memory()
            raise
        return result

    def _device_for(self, pipeline: Pipeline,
                    results: Dict[int, OperatorResult],
                    result: OperatorResult,
                    consumer: Optional[Pipeline],
                    qctx=None) -> Optional[str]:
        """Device placement for a whole pipeline (None = CPU)."""
        ctx = self.ctx
        if qctx is not None and qctx.force_cpu:
            return None
        required = pipeline.required_columns()
        candidates = [
            device for device in ctx.hardware.gpus
            if ctx.resilience.available(device.name, ctx.env.now)
        ]
        if self.strategy.uses_data_placement:
            for device in candidates:
                if all(key in device.cache for key in required):
                    return device.name
            return None
        # cost-based: compare whole-pipeline estimates per device.  The
        # breaker output ships back to the host unless the consuming
        # pipeline could itself run on this device.
        _, compute = self._io_and_compute(pipeline, results, None)
        cpu_cost = compute[ProcessorKind.CPU]
        best: Optional[str] = None
        best_cost = cpu_cost
        for device in candidates:
            stream_bytes, compute = self._io_and_compute(
                pipeline, results, device.name
            )
            cost = max(compute[ProcessorKind.GPU],
                       ctx.bus.transfer_time(stream_bytes))
            consumer_stays = consumer is not None and all(
                key in device.cache
                for key in consumer.required_columns()
            )
            if not consumer_stays:
                cost += ctx.bus.transfer_time(result.nominal_bytes)
            if cost < best_cost:
                best = device.name
                best_cost = cost
        return best

    def _run_pipeline(self, pipeline: Pipeline,
                      results: Dict[int, OperatorResult],
                      consumer: Optional[Pipeline] = None,
                      qctx=None) -> Generator:
        ctx = self.ctx
        env = ctx.env
        database = ctx.database
        start = env.now
        for op in pipeline.operators:
            for key in sorted(op.required_columns()):
                database.statistics.record_access(key, env.now)

        # functional execution first (zero simulated time): run-time
        # placement sees exact input and output cardinalities
        result = self._materialise(pipeline, results)
        device_name = self._device_for(pipeline, results, result, consumer,
                                       qctx)
        placed = None
        if device_name is not None:
            placed = yield from self._attempt_device(
                pipeline, results, result, device_name, start, qctx
            )
        if placed is None:
            yield from self._run_on_cpu(pipeline, results, result)
        # single-consumer plans: release inputs the pipeline consumed
        for op in pipeline.operators:
            for child in op.children:
                child_result = results.get(child.op_id)
                if child_result is not None and child_result is not result:
                    child_result.release_device_memory()

    def _materialise(self, pipeline: Pipeline,
                     results: Dict[int, OperatorResult]) -> OperatorResult:
        """Functional execution of the chain (shared numpy work)."""
        database = self.ctx.database
        result = None
        for op in pipeline.operators:
            child_results = [results[c.op_id] for c in op.children]
            result = op.produce(database, child_results)
            results[op.op_id] = result
        return result

    def _io_and_compute(self, pipeline: Pipeline,
                        results: Dict[int, OperatorResult],
                        device_name: Optional[str]):
        """(bytes to stream over the bus, compute seconds per kind)."""
        ctx = self.ctx
        stream_bytes = 0
        if device_name is not None:
            device = ctx.hardware.device(device_name)
            for key in pipeline.required_columns():
                if key not in device.cache:
                    stream_bytes += ctx.database.column(key).nominal_bytes
            for op in pipeline.operators:
                for child in op.children:
                    child_result = results.get(child.op_id)
                    if (child_result is not None
                            and child_result.location != device_name):
                        stream_bytes += child_result.nominal_bytes
        compute = {}
        for kind in (ProcessorKind.CPU, ProcessorKind.GPU):
            total = 0.0
            for op in pipeline.operators:
                child_results = [results[c.op_id] for c in op.children]
                input_bytes = op.input_nominal_bytes(ctx.database,
                                                     child_results)
                total += ctx.profile.compute_seconds(op.kind, kind,
                                                     input_bytes)
            compute[kind] = total
        return stream_bytes, compute

    def _attempt_device(self, pipeline: Pipeline,
                        results: Dict[int, OperatorResult],
                        result: OperatorResult,
                        device_name: str, start: float,
                        qctx=None) -> Generator:
        """Run the pipeline on a device; None once it must go to CPU.

        Transient injected faults are retried with backoff under the
        device's circuit breaker; a genuine out-of-memory abort falls
        back immediately, as in the operator-at-a-time engine.
        """
        ctx = self.ctx
        env = ctx.env
        resilience = ctx.resilience
        attempt = 0
        while True:
            if not resilience.admit(device_name, env.now):
                ctx.metrics.record_breaker_skip(device_name)
                return None
            outcome = yield from self._attempt_device_once(
                pipeline, results, result, device_name, start, qctx
            )
            if not isinstance(outcome, DeviceFault):
                resilience.record_success(device_name, env.now)
                return outcome
            if not outcome.transient:
                resilience.record_success(device_name, env.now)
                return None
            resilience.record_failure(device_name, env.now)
            if attempt >= resilience.policy.max_retries:
                return None
            ctx.metrics.record_retry(
                device=device_name, fault=outcome.fault_class,
                query=pipeline.terminal.plan_name,
                tenant=qctx.tenant if qctx else None,
            )
            # a cancelled query's backoff aborts early (QueryCancelled)
            yield from resilience.backoff(env, attempt, qctx)
            attempt += 1

    def _attempt_device_once(self, pipeline: Pipeline,
                             results: Dict[int, OperatorResult],
                             result: OperatorResult,
                             device_name: str, start: float,
                             qctx=None) -> Generator:
        """One device attempt; returns the fault when it aborts."""
        ctx = self.ctx
        env = ctx.env
        device = ctx.hardware.device(device_name)
        stream_bytes, compute = self._io_and_compute(
            pipeline, results, device_name
        )
        gpu_seconds = compute[ProcessorKind.GPU]
        cpu_seconds = compute[ProcessorKind.CPU]

        split = 0.0  # fraction of vectors handled by the host
        if self.allow_split and gpu_seconds > 0:
            if ctx.split is not None:
                # the split cost model's balance point: accounts for
                # the PCIe stream (zero on a coupled platform) and any
                # fixed --split-ratio override
                split = ctx.split.vector_ratio(
                    ctx, cpu_seconds, gpu_seconds, stream_bytes
                )
            else:
                # balance completion: the host takes the share that
                # makes both sides finish together
                gpu_rate = 1.0 / gpu_seconds
                cpu_rate = 1.0 / cpu_seconds if cpu_seconds > 0 else 0.0
                split = cpu_rate / (cpu_rate + gpu_rate)

        breaker = None
        delivered = False
        transfers = None
        engine = ctx.hardware.copy_engine
        try:
            # the breaker's materialised output (or hash table) is the
            # pipeline's only heap demand — vectors themselves stream
            breaker = device.heap.allocate(result.nominal_bytes,
                                           owner=pipeline.terminal.label)
            if engine is not None and stream_bytes:
                # double-buffered streaming: the copy engine moves
                # vector k+1 while the kernel consumes vector k
                gpu_done = env.process(self._stream_vectors(
                    device, int(stream_bytes * (1 - split)),
                    gpu_seconds * (1 - split),
                ))
            else:
                if stream_bytes:
                    transfers = env.process(
                        ctx.bus.transfer(int(stream_bytes * (1 - split)),
                                         "h2d", device=device_name)
                    )
                    # joined below; pre-defuse so a fault on the compute
                    # path cannot leave an unwaited transfer failure
                    transfers.defused = True
                gpu_done = device.processor.submit(gpu_seconds * (1 - split))
            cpu_done = ctx.hardware.cpu.submit(cpu_seconds * split)
            yield env.all_of([gpu_done, cpu_done])
            if transfers is not None:
                yield transfers
            ctx.metrics.record_operator(device.processor.name,
                                        gpu_seconds * (1 - split))
            if split > 0:
                ctx.metrics.record_operator("cpu", cpu_seconds * split)
            result.allocation = breaker
            result.location = device_name
            delivered = True
            return result
        except DeviceFault as fault:
            ctx.metrics.record_abort(
                env.now - start, query=pipeline.terminal.plan_name,
                device=fault.device or device_name,
                fault=fault.fault_class,
                tenant=qctx.tenant if qctx else None,
            )
            if ctx.trace is not None:
                ctx.trace.record(
                    pipeline.terminal.label, pipeline.terminal.kind,
                    device_name, pipeline.terminal.plan_name,
                    start, env.now, aborted=True, fault=fault.fault_class,
                )
            return fault
        finally:
            # covers the fault path *and* a cancellation interrupt while
            # blocked on the device — the heap never leaks either way
            if breaker is not None and not delivered:
                breaker.free()

    def _stream_vectors(self, device, stream_bytes: int,
                        compute_seconds: float) -> Generator:
        """DES process: double-buffered vector streaming (Sec. 5.5).

        The pipeline's uncached inputs move one chunk-sized vector at a
        time over the device's h2d channel; vector ``k+1`` is on the
        wire while the kernel consumes vector ``k``, so the pipeline
        costs roughly ``max(transfer, compute)`` plus one vector of
        fill latency.  An injected PCIe fault or a kernel fault fails
        this process, which the caller observes through ``all_of``.
        """
        ctx = self.ctx
        engine = ctx.hardware.copy_engine
        chunk = engine.chunk_bytes
        remaining = int(stream_bytes)
        vectors = max(1, -(-remaining // chunk))
        per_compute = compute_seconds / vectors
        pending = None
        for _ in range(vectors):
            vector_bytes = min(chunk, remaining)
            remaining -= vector_bytes
            yield from engine.transfer(vector_bytes, "h2d",
                                       device=device.name)
            if pending is not None:
                yield pending
            pending = device.processor.submit(per_compute)
            # a stall-failing kernel whose stream dies first must not
            # escalate as an unwaited failure
            pending.defused = True
        if pending is not None:
            yield pending

    def _run_on_cpu(self, pipeline: Pipeline,
                    results: Dict[int, OperatorResult],
                    result: OperatorResult) -> Generator:
        ctx = self.ctx
        # inputs produced on a device stream back to the host
        for op in pipeline.operators:
            for child in op.children:
                child_result = results.get(child.op_id)
                if child_result is not None and child_result.location != "cpu":
                    yield from ctx.hardware.host_transfer(
                        child_result.nominal_bytes, "d2h",
                        device=child_result.location,
                    )
        _, compute = self._io_and_compute(pipeline, results, None)
        yield from ctx.hardware.cpu.execute(compute[ProcessorKind.CPU])
        result.location = "cpu"
