"""Query-lifecycle robustness: admission control, deadlines, hedging.

The paper bounds *operator*-level parallelism (query chopping,
Sec. 5.2) so the system degrades gracefully instead of thrashing, but
the stream of *queries* itself is accepted unbounded and, once a query
is in flight, nothing can stop it.  Production co-processor engines
treat overload and tail latency as first-class concerns; this module
adds the corresponding query-level layer on top of the operator-level
resilience of :mod:`repro.engine.execution.resilience`:

* :class:`AdmissionController` — a gate in front of the executors with
  a configurable in-flight query limit and a device-heap headroom
  check.  Excess queries *queue* (FIFO, woken as slots free up), are
  *shed* (rejected outright), or are *degraded to the CPU* (admitted
  but barred from the co-processors), per the configured policy.
* :class:`QueryContext` — per-query deadline/cancel state threaded
  through the executors.  Cancellation is *cooperative and true*: the
  context interrupts every registered DES process (the kernel throws
  :class:`~repro.sim.Interrupted` at the current simulated time),
  pending operator tasks are skipped at pickup, in-flight retry
  backoffs abort early, and device-heap allocations plus cache pins
  roll back through the operator abort protocol — leaving the system
  in a state where subsequent queries produce byte-identical results.
* :func:`deadline_watchdog` — a DES process that cancels a query once
  its deadline elapses.
* Straggler hedging lives in the chopping executor (it owns the worker
  pools); :class:`LifecycleConfig.hedge_factor` configures it here.

Zero-overhead guarantee: with ``lifecycle=None`` (or a config whose
features are all off) the harness takes exactly the pre-existing code
paths — no contexts, no watchdogs, no extra events — and simulated
timings are byte-identical to a build without this module.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, fields
from typing import Any, Callable, Deque, Generator, List, Optional, Union

from repro.sim import Event, Interrupted

#: Admission policies for queries arriving beyond the in-flight limit.
OVERLOAD_POLICIES = ("queue", "shed", "degrade-to-cpu")


class QueryCancelled(Exception):
    """A query was cancelled (deadline, hedge loss, or explicit)."""

    def __init__(self, query: str = "?", reason: str = "cancelled"):
        super().__init__("{}: {}".format(query, reason))
        self.query = query
        self.reason = reason


@dataclass(frozen=True)
class LifecycleConfig:
    """Overload / deadline / hedging knobs for one workload run.

    Every feature defaults to *off*; a default-constructed config is
    equivalent to ``lifecycle=None`` (the zero-overhead path).
    """

    #: maximum queries in flight at once (None = unlimited)
    max_inflight: Optional[int] = None
    #: what happens to a query arriving beyond the limit
    overload_policy: str = "queue"
    #: admission additionally requires this fraction of every device
    #: heap to be free (0 disables the headroom check)
    heap_headroom_fraction: float = 0.0
    #: per-query deadline in simulated seconds (None = no deadline)
    deadline_seconds: Optional[float] = None
    #: hedge a GPU-placed operator once it exceeds this multiple of its
    #: HyPE runtime estimate (None = hedging off)
    hedge_factor: Optional[float] = None
    #: floor under tiny estimates before the factor applies
    hedge_min_seconds: float = 0.001

    def __post_init__(self):
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.overload_policy not in OVERLOAD_POLICIES:
            raise ValueError(
                "overload_policy must be one of {}".format(OVERLOAD_POLICIES)
            )
        if not 0.0 <= self.heap_headroom_fraction < 1.0:
            raise ValueError("heap_headroom_fraction must be in [0, 1)")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")
        if self.hedge_factor is not None and self.hedge_factor <= 0:
            raise ValueError("hedge_factor must be positive")
        if self.hedge_min_seconds < 0:
            raise ValueError("hedge_min_seconds must be >= 0")

    # -- feature queries ------------------------------------------------

    @property
    def admission_enabled(self) -> bool:
        return (self.max_inflight is not None
                or self.heap_headroom_fraction > 0.0)

    @property
    def deadlines_enabled(self) -> bool:
        return self.deadline_seconds is not None

    @property
    def hedging_enabled(self) -> bool:
        return self.hedge_factor is not None

    @property
    def enabled(self) -> bool:
        """Any feature on?  False means the zero-overhead path."""
        return (self.admission_enabled or self.deadlines_enabled
                or self.hedging_enabled)

    # -- constructors ---------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "LifecycleConfig":
        """Parse a spec string, e.g. ``"max_inflight=4,policy=shed"``.

        Accepted keys are the field names plus the short aliases
        ``policy`` (overload_policy), ``deadline`` (deadline_seconds),
        ``hedge`` (hedge_factor), and ``headroom``
        (heap_headroom_fraction).
        """
        aliases = {
            "policy": "overload_policy",
            "deadline": "deadline_seconds",
            "hedge": "hedge_factor",
            "headroom": "heap_headroom_fraction",
        }
        field_types = {f.name: f.type for f in fields(cls)}
        values: dict = {}
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            if "=" not in chunk:
                raise ValueError(
                    "lifecycle spec needs key=value pairs, got {!r}".format(
                        chunk
                    )
                )
            key, _, raw = chunk.partition("=")
            key = aliases.get(key.strip(), key.strip())
            if key not in field_types:
                raise ValueError("unknown lifecycle knob {!r}".format(key))
            if key == "overload_policy":
                values[key] = raw.strip()
            elif key == "max_inflight":
                values[key] = int(raw)
            else:
                values[key] = float(raw)
        return cls(**values)

    @classmethod
    def coerce(
        cls, value: Union[None, str, "LifecycleConfig"]
    ) -> Optional["LifecycleConfig"]:
        """None / spec string / config -> config or None (disabled)."""
        if value is None:
            return None
        if isinstance(value, str):
            value = cls.parse(value)
        if not isinstance(value, cls):
            raise TypeError(
                "lifecycle must be a LifecycleConfig, a spec string, or "
                "None, got {!r}".format(value)
            )
        return value


class QueryContext:
    """Deadline/cancel state for one in-flight query.

    Executors *register* the DES processes working for the query and
    *track* the device-resident results it accumulates; :meth:`cancel`
    interrupts the former and releases the latter, then a drain process
    waits for every interrupted worker to settle and records the
    cancel latency (cancel request to fully stopped).
    """

    __slots__ = (
        "env", "name", "user", "metrics", "deadline_seconds",
        "started_at", "finished", "cancelled", "cancel_reason",
        "cancelled_at", "force_cpu", "tenant", "slo_class",
        "deadline_safety", "_procs", "_roots", "_results",
        "_callbacks",
    )

    def __init__(self, env, name: str, user: int = 0, metrics=None,
                 deadline_seconds: Optional[float] = None,
                 tenant: Optional[str] = None,
                 slo_class: Optional[str] = None,
                 deadline_safety: Optional[float] = None):
        self.env = env
        self.name = name
        self.user = user
        self.metrics = metrics
        self.deadline_seconds = deadline_seconds
        #: service-mode attribution: owning tenant and its SLO class
        self.tenant = tenant
        self.slo_class = slo_class
        #: per-class override of ``SystemConfig.deadline_safety``
        self.deadline_safety = deadline_safety
        self.started_at = env.now
        self.finished = False
        self.cancelled = False
        self.cancel_reason: Optional[str] = None
        self.cancelled_at = 0.0
        #: admission degraded this query: placement must stay on the CPU
        self.force_cpu = False
        self._procs: List = []
        self._roots: List[Event] = []
        self._results: List = []
        self._callbacks: List[Callable[["QueryContext"], None]] = []

    # -- registration ---------------------------------------------------

    def register(self, process) -> None:
        """A DES process now works for this query (interrupt on cancel)."""
        self._procs = [p for p in self._procs if p.is_alive]
        self._procs.append(process)

    def attach_root(self, event: Event) -> None:
        """The query's completion event (failed with QueryCancelled)."""
        self._roots.append(event)

    def track(self, result) -> None:
        """A (possibly device-resident) result this query produced."""
        self._results.append(result)

    def on_cancel(self, callback: Callable[["QueryContext"], None]) -> None:
        """Run ``callback(qctx)`` first thing when the query is cancelled."""
        self._callbacks.append(callback)

    # -- cooperative checkpoints ---------------------------------------

    def check(self) -> None:
        """Raise :class:`QueryCancelled` if the query was cancelled."""
        if self.cancelled:
            raise QueryCancelled(self.name, self.cancel_reason or "cancelled")

    def cancelled_error(self) -> QueryCancelled:
        return QueryCancelled(self.name, self.cancel_reason or "cancelled")

    def finish(self) -> None:
        """The query completed; later deadline firings are no-ops."""
        self.finished = True
        self._results = []
        self._procs = []

    # -- cancellation ---------------------------------------------------

    def cancel(self, reason: str = "cancelled") -> bool:
        """Cancel the query; returns False if already finished/cancelled.

        Synchronously: fail the root event(s), run the registered
        cancel callbacks (admission waiters), release every tracked
        device-resident result, and interrupt every registered process.
        Asynchronously: a drain process joins the interrupted workers —
        each rolls its device state back through the operator abort
        protocol — and records the cancel latency once all settled.
        """
        if self.finished or self.cancelled:
            return False
        self.cancelled = True
        self.cancel_reason = reason
        self.cancelled_at = self.env.now
        error = QueryCancelled(self.name, reason)
        for callback in self._callbacks:
            callback(self)
        for root in self._roots:
            if not root.triggered:
                root.fail(error)
        for result in self._results:
            result.release_device_memory()
        self._results = []
        active = self.env.active_process
        procs = [p for p in self._procs if p.is_alive and p is not active]
        for process in procs:
            # the interrupt is the consumer of the process's failure
            process.defused = True
            process.interrupt(error)
        self.env.process(self._drain(procs))
        return True

    def _drain(self, procs) -> Generator:
        """Join the interrupted workers, then record the cancel latency."""
        for process in procs:
            if process.is_alive or not process.processed:
                try:
                    yield process
                except (Interrupted, QueryCancelled):
                    pass
                except Exception:
                    pass
        if self.metrics is not None:
            self.metrics.record_cancel(
                self.name, self.env.now - self.cancelled_at
            )


class AdmissionController:
    """In-flight query gate with an overload policy.

    ``admit`` is a generator (``yield from`` it inside a session): it
    returns one of ``"run"`` (slot acquired), ``"degrade"`` (slot
    acquired, co-processors barred), ``"shed"`` (rejected, no slot), or
    ``"cancelled"`` (the query's deadline fired while queued).  Every
    ``"run"``/``"degrade"`` admission must be paired with one
    :meth:`release`.
    """

    def __init__(self, env, hardware, config: LifecycleConfig,
                 metrics=None):
        self.env = env
        self.hardware = hardware
        self.config = config
        self.metrics = metrics
        self.inflight = 0
        self._waiters: Deque[Event] = deque()

    # -- capacity -------------------------------------------------------

    def has_capacity(self) -> bool:
        config = self.config
        if (config.max_inflight is not None
                and self.inflight >= config.max_inflight):
            return False
        if config.heap_headroom_fraction > 0.0 and self.inflight > 0:
            # Headroom guard: only gate while something is running —
            # an empty system always admits, so the gate cannot deadlock
            # on leftover pressure.
            needed = config.heap_headroom_fraction
            for device in self.hardware.gpus:
                heap = device.heap
                if (heap.capacity > 0
                        and heap.available < needed * heap.capacity):
                    return False
        return True

    # -- admission ------------------------------------------------------

    def admit(self, qctx: Optional[QueryContext] = None) -> Generator:
        if qctx is not None and qctx.cancelled:
            return "cancelled"
        if self.has_capacity():
            self.inflight += 1
            return "run"
        policy = self.config.overload_policy
        name = qctx.name if qctx is not None else "?"
        if policy == "shed":
            if self.metrics is not None:
                self.metrics.record_shed(name)
            return "shed"
        if policy == "degrade-to-cpu":
            self.inflight += 1
            if self.metrics is not None:
                self.metrics.record_degraded(name)
            return "degrade"
        # queue: FIFO backpressure
        waiter = self.env.event()
        self._waiters.append(waiter)
        if qctx is not None:
            qctx.on_cancel(lambda _qctx, w=waiter: self._cancel_waiter(w))
        if self.metrics is not None:
            self.metrics.record_admission_queue_depth(len(self._waiters))
        started = self.env.now
        try:
            yield waiter
        except QueryCancelled:
            self._drop_waiter(waiter)
            return "cancelled"
        if self.metrics is not None:
            self.metrics.record_admission_wait(
                name, self.env.now - started
            )
        # the slot was reserved by release() when it woke this waiter
        return "run"

    def release(self) -> None:
        """One admitted query finished (or was cancelled): free its slot
        and wake the first still-live queued waiter if capacity allows."""
        self.inflight -= 1
        while self._waiters:
            if not (self.has_capacity() or self.inflight == 0):
                return
            waiter = self._waiters.popleft()
            if waiter.triggered:
                continue  # cancelled while queued
            self.inflight += 1
            waiter.succeed()
            return

    @property
    def queue_depth(self) -> int:
        return sum(1 for w in self._waiters if not w.triggered)

    # -- internals ------------------------------------------------------

    def _cancel_waiter(self, waiter: Event) -> None:
        if not waiter.triggered:
            waiter.fail(QueryCancelled("?", "deadline"))

    def _drop_waiter(self, waiter: Event) -> None:
        try:
            self._waiters.remove(waiter)
        except ValueError:
            pass


def deadline_watchdog(qctx: QueryContext) -> Generator:
    """DES process: cancel ``qctx`` once its deadline elapses."""
    yield qctx.env.timeout(qctx.deadline_seconds)
    if qctx.finished or qctx.cancelled:
        return
    if qctx.metrics is not None:
        qctx.metrics.record_deadline_miss(qctx.name)
    qctx.cancel("deadline")


__all__ = [
    "AdmissionController",
    "LifecycleConfig",
    "OVERLOAD_POLICIES",
    "QueryCancelled",
    "QueryContext",
    "deadline_watchdog",
]
