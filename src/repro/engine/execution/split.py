"""Intra-operator co-processing: split one operator across CPU + GPU.

Placement in this system is all-or-nothing per operator, and hedging
(PR5) buys robustness by running *redundant* copies.  "Revisiting
Co-Processing for Hash Joins on the Coupled CPU-GPU Architecture"
(arXiv 1307.1955) shows a third point in the design space: divide one
operator's work between the processors by a *ratio*, so both devices
contribute and neither the GPU's heap ceiling nor the CPU's throughput
floor caps the operator alone.

This module implements that split over the morsel substrate of
:mod:`repro.engine.morsel`:

* **Identity gate first.**  At warm-up, :meth:`SplitState.prepare`
  executes every query's fused pipeline as *two* chunk schedules (an
  even split and an uneven three-way split), merges the partials at
  the breaker exactly as the morsel pool does, and compares the result
  byte-for-byte against the functional reference.  Only plans that
  pass may split; everything else declines silently (reason-counted)
  and runs on the ordinary pure placement — the same contract every
  prior layer honours.
* **Ratio from HyPE.**  :class:`~repro.hype.models.SplitCostModel`
  picks the GPU work fraction ``r* = t_c / (t_c + t_g + t_x)`` from
  the learned per-device runtimes and the PCIe transfer time of the
  operator's input, blended with the placement strategy's
  ``ratio_hint`` (fraction of inputs already device-resident).  On a
  coupled system (``SystemConfig.coupled``) ``t_x`` is zero and the
  ratio shifts toward the GPU — the paper's headline effect.
* **Mid-operator rebalancing.**  The operator runs in
  ``split_rounds`` rounds; at each boundary the load tracker is
  refreshed (:meth:`~repro.hype.load.LoadTracker.refresh`) and the
  remaining work re-divided as queue depths and breaker states shift.
* **Graceful degradation.**  A device fault mid-round wastes only that
  round's GPU share (recorded as split wasted work); the remaining
  work degrades to pure CPU.  An open breaker (PR3) or a nearing
  deadline (PR5) degrades the same way; cancellation (PR5) unwinds
  both halves through the ``finally`` rollback, leaving no residue.

The simulated timing divides between the devices; the *result* is
still served by ``op.produce`` (the memoised functional layer), so a
split execution is byte-identical to a pure one by construction — the
warm-up gate is what proves the division itself would merge
identically if the work were physically divided, mirroring how the
morsel pool validates its chunk merges.

Zero overhead when disabled: ``ctx.split`` stays ``None`` and the
dispatch hook is a single ``is not None`` test.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from repro.engine import morsel
from repro.engine.execution.functional import execute_functional
from repro.hardware import DeviceFault
from repro.hardware.processor import ProcessorKind
from repro.hype.models import SplitCostModel

#: Operator kinds eligible for splitting: chunkable over the fact
#: range (selections, materialising projections), probe-partitionable
#: (joins), or partial-merge aggregations — the shapes the morsel
#: substrate proves.
SPLIT_KINDS = frozenset(("selection", "join", "groupby", "projection"))

#: Below this share the split degenerates: run the pure placement.
MIN_SHARE = 0.05

#: Ratio changes smaller than this do not count as a rebalance.
REBALANCE_EPSILON = 0.01

#: Decline to split when the device's queued *other* work exceeds this
#: multiple of the op's own GPU share — a split's rounds couple the CPU
#: half to the device queue, so splitting onto a congested device slows
#: the operator below its pure-CPU time.
BUSY_FACTOR = 1.0

#: Degrade to pure CPU when the deadline margin falls below this
#: multiple of the estimated remaining makespan.  This is the default
#: for ``SystemConfig.deadline_safety``; service mode overrides it per
#: SLO class through ``QueryContext.deadline_safety``.
DEADLINE_SAFETY = 2.0


def merged_split_result(pipe, boundaries):
    """Run ``pipe`` as chunks cut at ``boundaries`` and merge at the
    breaker — the same absorb/replay/finalize/tail sequence the morsel
    pool applies.  Returns the root :class:`OperatorResult`."""
    rows = pipe.fact_rows
    edges = sorted({0, rows}
                   | {min(max(int(b), 0), rows) for b in boundaries})
    chunks = (list(zip(edges[:-1], edges[1:]))
              if rows > 0 else [(0, 0)])
    acc = pipe.new_accumulator()
    totals: Optional[Tuple[int, ...]] = None
    for start, stop in chunks:
        partial = pipe.run_chunk(start, stop)
        pipe.absorb(acc, partial)
        totals = (partial.chain_counts if totals is None else
                  tuple(a + b for a, b in
                        zip(totals, partial.chain_counts)))
    _, prev_nominal = pipe.replay_nominal(totals)
    return pipe.run_tail(pipe.finalize(acc, prev_nominal))


class SplitState:
    """Per-run split-execution state hung off the execution context."""

    def __init__(self, config, cost_model, strategy=None):
        self.config = config
        self.model = SplitCostModel(cost_model)
        self.strategy = strategy
        #: plan names whose chunked merge proved byte-identical
        self.splittable = set()
        #: plan names that failed or declined the gate (skip quickly)
        self.ungated = set()

    # -- warm-up identity gate ----------------------------------------

    def prepare(self, database, queries, metrics=None) -> None:
        """Gate every query template: chunk-merge it two ways and
        require byte identity with the functional reference.  Failures
        decline silently (the plan simply never splits)."""
        for query in queries:
            reason = self._gate_query(database, query)
            if reason is None:
                self.splittable.add(query.name)
            else:
                self.ungated.add(query.name)
                if metrics is not None:
                    metrics.record_split_decline(reason)

    def _gate_query(self, database, query) -> Optional[str]:
        """None when the query may split, else the decline reason."""
        try:
            reference = execute_functional(query.instantiate(), database)
            pipe = morsel.build(query.instantiate(), database)
            if not pipe.supports_partials:
                return "no_partials"
            rows = pipe.fact_rows
            schedules = ([rows // 2],
                         [rows // 4, rows // 2, (3 * rows) // 4])
            for boundaries in schedules:
                merged = merged_split_result(pipe, boundaries)
                if (merged.payload.row_tuples()
                        != reference.payload.row_tuples()
                        or merged.actual_rows != reference.actual_rows
                        or merged.nominal_rows != reference.nominal_rows
                        or merged.row_width_bytes
                        != reference.row_width_bytes):
                    return "identity"
            return None
        except morsel.Decline as decline:
            return decline.reason
        except Exception:
            return "error"

    # -- ratio selection ----------------------------------------------

    def _transfer_seconds(self, ctx, nbytes: float) -> float:
        """PCIe time for ``nbytes`` (zero on a coupled platform)."""
        if self.config.coupled:
            return 0.0
        config = ctx.hardware.config
        return (nbytes / config.pcie_bandwidth_bytes_per_second
                + config.pcie_latency_seconds)

    @staticmethod
    def _resident_fraction(ctx, op, device) -> float:
        """Fraction of the operator's base-column bytes already in the
        device cache — staging those costs nothing on the bus."""
        total = 0.0
        resident = 0.0
        for key in op.required_columns():
            nbytes = ctx.database.column(key).nominal_bytes
            total += nbytes
            if key in device.cache:
                resident += nbytes
        return resident / total if total > 0 else 0.0

    def choose_ratio(self, ctx, op, device, input_bytes: float) -> float:
        """Up-front GPU fraction for one operator."""
        if self.config.split_ratio is not None:
            return self.config.split_ratio
        hint = None
        if self.strategy is not None:
            hint = self.strategy.ratio_hint(ctx, op, device)
        # only the non-resident share of the input actually crosses
        # the bus; a warm cache shifts the balance toward the GPU
        t_x = (self._transfer_seconds(ctx, input_bytes)
               * (1.0 - self._resident_fraction(ctx, op, device)))
        return self.model.ratio(op.kind, input_bytes, t_x, hint=hint)

    def vector_ratio(self, ctx, cpu_seconds: float, gpu_seconds: float,
                     stream_bytes: float) -> float:
        """Host-side work fraction for the vectorized executor's
        static split: the cost model's balance point instead of the
        pure compute-rate ratio, so the PCIe stream cost (absent on a
        coupled platform) shifts vectors toward the host."""
        if self.config.split_ratio is not None:
            return 1.0 - self.config.split_ratio
        gpu_share = self.model.balance(
            cpu_seconds, gpu_seconds,
            self._transfer_seconds(ctx, stream_bytes),
        )
        return 1.0 - gpu_share

    # -- the split execution itself ------------------------------------

    def _decline(self, ctx, reason: str) -> None:
        ctx.metrics.record_split_decline(reason)

    def try_split(self, ctx, device, op, child_results, input_bytes,
                  qctx=None) -> Generator:
        """DES process: split ``op`` between the CPU and ``device``.

        Returns the :class:`OperatorResult`, or None when the split
        declines *before any simulated time passed* — the caller then
        proceeds with the ordinary pure placement, unaffected.
        """
        env = ctx.env
        if op.kind not in SPLIT_KINDS:
            self._decline(ctx, "op_kind")
            return None
        if op.plan_name not in self.splittable:
            self._decline(ctx,
                          "identity_gate" if op.plan_name in self.ungated
                          else "ungated_plan")
            return None
        if qctx is not None and qctx.force_cpu:
            self._decline(ctx, "force_cpu")
            return None
        if not ctx.resilience.available(device.name, env.now):
            self._decline(ctx, "breaker_open")
            return None

        footprint = op.device_footprint_bytes(
            ctx.profile, ctx.database, child_results
        )
        ratio = self.choose_ratio(ctx, op, device, input_bytes)
        ratio_cap = 1.0
        if footprint > 0 and not self.config.coupled:
            ratio_cap = min(device.heap.available / footprint, 1.0)
            ratio = min(ratio, ratio_cap)
        if ratio < MIN_SHARE:
            self._decline(ctx, "ratio_floor")
            return None
        if ratio > 1.0 - MIN_SHARE and self.config.split_ratio is None:
            self._decline(ctx, "ratio_ceiling")
            return None
        if self.config.split_ratio is None:
            # the dispatcher already queued this op's own estimate on
            # the device; anything beyond that is other operators' work
            # our rounds would wait behind
            t_gpu_est = ctx.cost_model.estimate(
                op.kind, ProcessorKind.GPU, input_bytes)
            ctx.load.refresh(device.name)
            other_load = max(
                ctx.load.estimated_completion(device.name) - t_gpu_est,
                0.0)
            if other_load > BUSY_FACTOR * max(ratio * t_gpu_est, 1e-12):
                self._decline(ctx, "device_busy")
                return None

        result = yield from self._run_split(
            ctx, device, op, child_results, input_bytes, footprint,
            ratio, ratio_cap, qctx,
        )
        return result

    def _run_split(self, ctx, device, op, child_results, input_bytes,
                   footprint, ratio, ratio_cap, qctx) -> Generator:
        env = ctx.env
        hardware = ctx.hardware
        cpu = hardware.cpu
        gpu = device.processor
        heap = device.heap
        cache = device.cache
        coupled = self.config.coupled
        chosen_ratio = ratio
        start = env.now

        t_gpu_full = ctx.profile.compute_seconds(
            op.kind, ProcessorKind.GPU, input_bytes)
        t_cpu_full = ctx.profile.compute_seconds(
            op.kind, ProcessorKind.CPU, input_bytes)
        t_x = self._transfer_seconds(ctx, input_bytes)
        # the dispatcher queued this operator's own full estimate on
        # the device (eager/chopping load tracking); rebalancing must
        # compare only the *other* outstanding work, or the op sees
        # its own shadow as device pressure and starves the GPU half
        self_load = ctx.cost_model.estimate(
            op.kind, ProcessorKind.GPU, input_bytes)

        acquired: List[str] = []
        staged: List = []
        working: List = []
        gpu_seconds = 0.0
        cpu_seconds = 0.0
        gpu_done = 0.0  # fraction of the operator the GPU completed
        rebalances = 0
        degraded = False

        def degrade(fault, round_start) -> None:
            """GPU faulted mid-round: the round's GPU share is wasted;
            the rest of the operator runs pure-CPU."""
            nonlocal ratio, degraded
            wasted = env.now - round_start
            ctx.metrics.record_abort(wasted, query=op.plan_name,
                                     device=fault.device or device.name,
                                     fault=fault.fault_class,
                                     tenant=qctx.tenant if qctx else None)
            ctx.metrics.record_split_wasted(wasted)
            if fault.transient:
                ctx.resilience.record_failure(device.name, env.now)
            else:
                ctx.resilience.record_success(device.name, env.now)
            ratio = 0.0
            degraded = True

        try:
            # the CPU half needs every device-resident intermediate
            # host-side, whatever happens to the GPU half below
            for child in child_results:
                if child.location != "cpu":
                    yield from hardware.host_transfer(
                        child.nominal_bytes, "d2h", device=child.location)
            # -- stage the GPU's share of the inputs ------------------
            try:
                if not coupled:
                    for key in sorted(op.required_columns()):
                        column = ctx.database.column(key)
                        if key in cache:
                            cache.touch(key)
                            cache.acquire(key)
                            acquired.append(key)
                            continue
                        cache.record_miss()
                        share = int(column.nominal_bytes * ratio)
                        if share > 0:
                            # Partial columns never enter the cache: a
                            # later full-column hit must mean full bytes.
                            yield from hardware.device_transfer(
                                share, "h2d", device.name)
                        staged.append(heap.allocate(share, owner=op.label))
                    for child in child_results:
                        if child.location != device.name:
                            share = int(child.nominal_bytes * ratio)
                            if share > 0:
                                yield from hardware.device_transfer(
                                    share, "h2d", device.name)
                            staged.append(
                                heap.allocate(share, owner=op.label))
                staged_bytes = sum(a.nbytes for a in staged)
                gpu_working = max(int(footprint * ratio) - staged_bytes, 0)
                working.append(heap.allocate(gpu_working, owner=op.label))
            except DeviceFault as fault:
                # staging failed — concurrent operators outran the
                # heap headroom the ratio cap was computed against, or
                # an injected transfer fault hit.  The staging time is
                # wasted; the operator degrades to pure CPU.
                for key in acquired:
                    cache.release(key)
                for allocation in staged:
                    allocation.free()
                acquired.clear()
                staged.clear()
                degrade(fault, start)

            # -- compute in rounds, rebalancing at the boundaries -----
            rounds = max(int(self.config.split_rounds), 1)
            remaining = 1.0
            round_index = 0
            while remaining > 1e-12:
                if qctx is not None:
                    qctx.check()
                # past the planned rounds (a fault shrank a round's
                # yield), the tail runs as one final round
                frac = remaining / max(rounds - round_index, 1)
                round_index += 1
                gpu_share = frac * ratio
                cpu_share = frac * (1.0 - ratio)
                round_start = env.now
                cpu_event = cpu.submit(t_cpu_full * cpu_share)
                cpu_event.defused = True
                gpu_event = None
                if gpu_share > 0.0:
                    try:
                        gpu_event = gpu.submit(t_gpu_full * gpu_share)
                        gpu_event.defused = True
                    except DeviceFault as fault:
                        # launch rejected before any GPU time passed:
                        # the CPU share of this round still lands
                        yield cpu_event
                        cpu_seconds += t_cpu_full * cpu_share
                        remaining -= cpu_share
                        degrade(fault, round_start)
                        continue
                if gpu_event is not None:
                    try:
                        yield env.all_of([gpu_event, cpu_event])
                    except DeviceFault as fault:
                        # a stalled kernel fails after real simulated
                        # time; the CPU half still completes its share
                        yield cpu_event
                        cpu_seconds += t_cpu_full * cpu_share
                        remaining -= cpu_share
                        degrade(fault, round_start)
                        continue
                    gpu_seconds += t_gpu_full * gpu_share
                    gpu_done += gpu_share
                    ctx.resilience.record_success(device.name, env.now)
                else:
                    yield cpu_event
                cpu_seconds += t_cpu_full * cpu_share
                remaining -= frac

                if remaining <= 1e-12 or round_index >= rounds:
                    break
                # -- round boundary: refresh load, re-divide ----------
                if qctx is not None:
                    qctx.check()
                if ratio > 0.0 and not self._deadline_safe(
                        qctx, remaining, t_cpu_full, t_gpu_full, ratio):
                    ratio = 0.0
                    degraded = True
                    continue
                if self.config.split_ratio is not None or degraded:
                    continue
                ctx.load.refresh()
                load_gpu = max(
                    ctx.load.estimated_completion(device.name)
                    - self_load, 0.0)
                new_ratio = self.model.rebalance(
                    remaining, ratio, t_cpu_full, t_gpu_full, t_x,
                    ctx.load.estimated_completion("cpu"), load_gpu,
                )
                new_ratio = min(new_ratio, ratio_cap)
                if new_ratio == 0.0 and ratio > 0.0:
                    degraded = True
                if abs(new_ratio - ratio) > REBALANCE_EPSILON:
                    rebalances += 1
                ratio = new_ratio

            # -- merge at the breaker ---------------------------------
            result = op.produce(ctx.database, child_results)
            if not coupled and gpu_done > 0.0:
                merge_bytes = int(result.nominal_bytes * gpu_done)
                if merge_bytes > 0:
                    # result delivery: never fault-injected, like the
                    # CPU fallback path
                    yield from hardware.host_transfer(
                        merge_bytes, "d2h", device=device.name)
            result.location = "cpu"
            ctx.metrics.record_operator("cpu", cpu_seconds)
            if gpu_seconds > 0.0:
                ctx.metrics.record_operator(gpu.name, gpu_seconds)
            # feed per-device realized throughput back into HyPE so
            # subsequent *pure* placements learn from split runs too
            if cpu_seconds > 0.0:
                ctx.cost_model.observe(
                    op.kind, ProcessorKind.CPU,
                    input_bytes * (1.0 - gpu_done), cpu_seconds,
                    source="split")
            if gpu_done > 0.0:
                ctx.cost_model.observe(
                    op.kind, ProcessorKind.GPU,
                    input_bytes * gpu_done, gpu_seconds,
                    source="split")
            ctx.metrics.record_split(
                chosen_ratio=chosen_ratio, realized_ratio=gpu_done,
                rebalances=rebalances, gpu_seconds=gpu_seconds,
                cpu_seconds=cpu_seconds, degraded=degraded,
            )
            if ctx.trace is not None:
                ctx.trace.record(op.label, op.kind,
                                 "cpu+{}".format(device.name),
                                 op.plan_name, start, env.now)
            return result
        finally:
            # rollback both halves: cancellation, faults, or normal
            # completion all release the GPU share here
            for key in acquired:
                cache.release(key)
            for allocation in staged:
                allocation.free()
            for allocation in working:
                allocation.free()

    def _deadline_safe(self, qctx, remaining, t_cpu_full, t_gpu_full,
                       ratio) -> bool:
        """False when the deadline margin no longer covers the
        estimated remaining makespan with safety to spare — the split
        then degrades to pure CPU rather than risk GPU retries.  The
        safety multiple is ``SystemConfig.deadline_safety`` unless the
        query carries a per-SLO-class override."""
        if qctx is None or qctx.deadline_seconds is None:
            return True
        margin = (qctx.started_at + qctx.deadline_seconds
                  - qctx.env.now)
        estimate = remaining * max(t_cpu_full * (1.0 - ratio),
                                   t_gpu_full * ratio)
        safety = getattr(self.config, "deadline_safety", DEADLINE_SAFETY)
        if qctx.deadline_safety is not None:
            safety = qctx.deadline_safety
        return margin >= safety * estimate


__all__ = ["SplitState", "merged_split_result", "SPLIT_KINDS",
           "MIN_SHARE"]
