"""Retry, backoff, and per-device circuit breakers.

The paper's abort-and-restart protocol (Sec. 2.5.1) handles exactly one
fault: a failed heap allocation, which is *permanent for this attempt*
— retrying immediately would fail again, so the operator restarts on
the CPU at once.  The injected faults of :mod:`repro.faults` are
*transient*: a PCIe hiccup or a rejected kernel launch may well succeed
a simulated millisecond later.  Falling back to the CPU on the first
transient fault would throw away the co-processor exactly when the
paper's thesis says robustness matters, so the executors layer two
standard mechanisms on top of the abort protocol:

* **Bounded retry with exponential backoff** (in *simulated* time): a
  transient fault re-runs the attempt after
  ``base * multiplier**attempt`` seconds, up to ``max_retries`` times,
  then falls back to the CPU like any abort.
* **A per-device circuit breaker**: ``threshold`` consecutive transient
  failures open the breaker; while open, placement and execution route
  around the device (CPU-only degradation).  After ``open_seconds`` the
  breaker half-opens and admits a bounded number of *probe* attempts —
  a probe success closes it, a probe failure re-opens it.

Genuine :class:`~repro.hardware.errors.DeviceOutOfMemory` aborts never
count against a breaker: a full heap is the *allocator working as
specified* under contention (the paper's core effect), not flakiness.

With no fault config installed the manager is inert: ``admit`` and
``available`` answer True without touching any state, the recording
hooks return immediately, and simulated timings are byte-identical to
a build without this module.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Optional


class BreakerState(enum.Enum):
    """Classic circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class RetryPolicy:
    """Bounded retries with exponential backoff in simulated time."""

    def __init__(self, max_retries: int = 3,
                 base_seconds: float = 0.002,
                 multiplier: float = 2.0):
        self.max_retries = int(max_retries)
        self.base_seconds = float(base_seconds)
        self.multiplier = float(multiplier)

    def backoff_seconds(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (0-based)."""
        return self.base_seconds * (self.multiplier ** attempt)


class CircuitBreaker:
    """Failure-rate gate for one device.

    Time is the caller's simulated clock (passed into every method), so
    the breaker works identically under any event ordering.
    """

    def __init__(self, device: str, threshold: int = 3,
                 open_seconds: float = 0.25, probes: int = 1,
                 on_transition: Optional[Callable] = None):
        self.device = device
        self.threshold = int(threshold)
        self.open_seconds = float(open_seconds)
        self.probes = int(probes)
        self.on_transition = on_transition
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        #: accumulated seconds of *completed* OPEN episodes
        self.open_seconds_total = 0.0
        self._probe_budget = 0

    def _transition(self, new_state: BreakerState, now: float) -> None:
        old = self.state
        if old is BreakerState.OPEN and new_state is not BreakerState.OPEN:
            self.open_seconds_total += now - self.opened_at
        self.state = new_state
        if self.on_transition is not None:
            self.on_transition(self.device, old.value, new_state.value, now)

    def open_elapsed_seconds(self, now: float) -> float:
        """Total simulated time this breaker has spent OPEN so far."""
        elapsed = self.open_seconds_total
        if self.state is BreakerState.OPEN:
            elapsed += now - self.opened_at
        return elapsed

    def _maybe_half_open(self, now: float) -> None:
        if (self.state is BreakerState.OPEN
                and now >= self.opened_at + self.open_seconds):
            self._probe_budget = self.probes
            self._transition(BreakerState.HALF_OPEN, now)

    # -- queries ---------------------------------------------------------

    def available(self, now: float) -> bool:
        """Whether placement should consider this device at all."""
        self._maybe_half_open(now)
        return self.state is not BreakerState.OPEN

    # -- the executors call these -----------------------------------------

    def admit(self, now: float) -> bool:
        """Whether an execution attempt may start now.

        Half-open admits at most ``probes`` attempts (the recovery
        probes); their outcomes decide whether the breaker closes or
        re-opens.
        """
        self._maybe_half_open(now)
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            return False
        if self._probe_budget > 0:
            self._probe_budget -= 1
            return True
        return False

    def record_success(self, now: float) -> None:
        """An admitted attempt finished without a transient fault.

        A genuine out-of-memory abort also lands here: the allocator
        responded as specified, so the device is not flaky.
        """
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self._transition(BreakerState.CLOSED, now)

    def record_failure(self, now: float) -> None:
        """An admitted attempt died of a transient fault."""
        if self.state is BreakerState.HALF_OPEN:
            # a failed recovery probe re-opens immediately
            self.opened_at = now
            self.consecutive_failures = 0
            self._transition(BreakerState.OPEN, now)
            return
        self.consecutive_failures += 1
        if (self.state is BreakerState.CLOSED
                and self.consecutive_failures >= self.threshold):
            self.opened_at = now
            self.consecutive_failures = 0
            self._transition(BreakerState.OPEN, now)


class ResilienceManager:
    """Retry policy plus one lazy circuit breaker per device.

    Built from the run's :class:`~repro.faults.FaultConfig`; with
    ``config=None`` (faults off) every query answers "go ahead" without
    creating any state — the zero-overhead-when-disabled path.
    """

    def __init__(self, config=None, metrics=None):
        self.config = config
        self.metrics = metrics
        self._breakers: Dict[str, CircuitBreaker] = {}
        if config is not None:
            self.policy = RetryPolicy(
                max_retries=config.max_retries,
                base_seconds=config.backoff_base_seconds,
                multiplier=config.backoff_multiplier,
            )
        else:
            self.policy = RetryPolicy()

    @property
    def enabled(self) -> bool:
        return self.config is not None

    def breaker(self, device: str) -> CircuitBreaker:
        breaker = self._breakers.get(device)
        if breaker is None:
            config = self.config
            on_transition = (
                self.metrics.record_breaker_transition
                if self.metrics is not None else None
            )
            breaker = CircuitBreaker(
                device,
                threshold=config.breaker_threshold if config else 3,
                open_seconds=config.breaker_open_seconds if config else 0.25,
                probes=config.breaker_probes if config else 1,
                on_transition=on_transition,
            )
            self._breakers[device] = breaker
        return breaker

    def breaker_states(self) -> Dict[str, str]:
        """Current state per device (devices never attempted omitted)."""
        return {name: b.state.value for name, b in self._breakers.items()}

    def breaker_open_seconds(self, now: float) -> Dict[str, float]:
        """Time-spent-open per device (live view at time ``now``)."""
        return {
            name: breaker.open_elapsed_seconds(now)
            for name, breaker in self._breakers.items()
        }

    # -- placement hooks ---------------------------------------------------

    def available(self, device: str, now: float) -> bool:
        """Placement filter: False while the device's breaker is open."""
        if self.config is None:
            return True
        return self.breaker(device).available(now)

    def placement_penalty(self, device: str, now: float) -> float:
        """Additive cost-estimate penalty: infinite while open, zero
        otherwise (half-open devices stay attractive so probes run)."""
        if self.config is None:
            return 0.0
        return 0.0 if self.breaker(device).available(now) else float("inf")

    # -- execution hooks -----------------------------------------------------

    def admit(self, device: str, now: float) -> bool:
        if self.config is None:
            return True
        return self.breaker(device).admit(now)

    def record_success(self, device: str, now: float) -> None:
        if self.config is None:
            return
        self.breaker(device).record_success(now)

    def record_failure(self, device: str, now: float) -> None:
        if self.config is None:
            return
        self.breaker(device).record_failure(now)

    def backoff(self, env, attempt: int, qctx=None):
        """DES generator: sleep one retry backoff, honouring cancellation.

        A query cancelled while its operator sleeps between attempts
        must not start the next attempt — the backoff aborts early by
        raising :class:`~repro.engine.execution.lifecycle.QueryCancelled`
        on wake-up (an interrupt mid-sleep surfaces on its own).
        """
        yield env.timeout(self.policy.backoff_seconds(attempt))
        if qctx is not None:
            qctx.check()


__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "ResilienceManager",
    "RetryPolicy",
]
