"""The operator lifecycle inside the simulation.

This implements the paper's fault-tolerant operator execution
(Sec. 2.5.1, 4.1):

1. *Stage inputs.*  On the GPU, base columns must be device-resident:
   cached columns are hits; misses are transferred over PCIe and — under
   operator-driven data placement — admitted to the cache, evicting
   victims (the cache-thrashing mechanism).  Child intermediates living
   on the other processor are transferred too.
2. *Allocate working memory.*  The operator's heap footprint
   (e.g. 3.25x input for selections) is allocated up front; failures
   raise immediately — CoGaDB aborts rather than waits to avoid
   allocation deadlocks.
3. *Compute.*  The kernel occupies a device slot for the calibrated
   time, then the functional numpy implementation materialises the
   result.
4. *Keep the result resident.*  The result stays on the producing
   processor until the (single) consumer has read it.
5. *Abort and restart.*  Any device allocation failure aborts the
   operator: wasted time (begin to abort) is recorded, device state is
   rolled back, and the operator restarts on the CPU.

With fault injection active (:mod:`repro.faults`) an attempt can also
die of a *transient* fault (PCIe error, kernel launch failure, stall,
reset, heap-pressure spike).  Those are retried with exponential
backoff in simulated time — bounded by the retry policy and gated by
the device's circuit breaker — before the operator takes the same CPU
fallback.  A genuine out-of-memory abort still falls back immediately:
retrying a full heap is pointless (Sec. 2.5.1).
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.engine.execution.context import ExecutionContext
from repro.engine.intermediates import OperatorResult
from repro.engine.operators import PhysicalOperator
from repro.hardware import DeviceFault
from repro.hardware.processor import ProcessorKind
from repro.hype import choose_algorithm


def execute_operator(
    ctx: ExecutionContext,
    op: PhysicalOperator,
    child_results: List[OperatorResult],
    processor_name: str,
    admit_to_cache: bool = True,
    qctx=None,
) -> Generator:
    """DES process: run one operator, with GPU fault tolerance.

    Returns the :class:`OperatorResult`; its ``location`` records where
    the result resides.  Consumed child results release their device
    memory here (single-consumer plans).

    ``qctx`` (a :class:`~repro.engine.execution.lifecycle.QueryContext`)
    makes execution *cancellable*: cooperative checkpoints raise
    :class:`~repro.engine.execution.lifecycle.QueryCancelled` between
    attempts, and the produced result is tracked so a later cancel can
    release its device memory.
    """
    if qctx is not None:
        qctx.check()
    database = ctx.database
    for key in sorted(op.required_columns()):
        database.statistics.record_access(key, ctx.env.now)

    input_bytes = op.input_nominal_bytes(database, child_results)
    result: Optional[OperatorResult] = None
    if processor_name != "cpu" and not op.cpu_only:
        device = ctx.hardware.device(processor_name)
        if ctx.split is not None:
            # intra-operator co-processing: divide the operator between
            # the CPU and this device; None = declined, run pure
            result = yield from ctx.split.try_split(
                ctx, device, op, child_results, input_bytes, qctx,
            )
        if result is None:
            result = yield from _try_gpu_with_recovery(
                ctx, device, op, child_results, input_bytes,
                admit_to_cache, qctx,
            )
    if result is None:
        if qctx is not None:
            qctx.check()
        result = yield from _run_cpu(ctx, op, child_results, input_bytes)
    for child in child_results:
        child.release_device_memory()
    if qctx is not None:
        qctx.track(result)
    return result


def _try_gpu_with_recovery(ctx, device, op, child_results, input_bytes,
                           admit_to_cache, qctx=None):
    """Device attempts under the retry policy and circuit breaker.

    Returns the :class:`OperatorResult` on success, or None once the
    operator must restart on the CPU — after a genuine out-of-memory
    abort, after exhausting the transient-fault retry budget, or when
    the device's breaker denies the attempt outright.
    """
    resilience = ctx.resilience
    env = ctx.env
    attempt = 0
    while True:
        if not resilience.admit(device.name, env.now):
            ctx.metrics.record_breaker_skip(device.name)
            return None
        outcome = yield from _try_gpu(ctx, device, op, child_results,
                                      input_bytes, admit_to_cache, qctx)
        if not isinstance(outcome, DeviceFault):
            # success, or a non-fault abort — either way the device
            # itself behaved, so the breaker sees a success
            resilience.record_success(device.name, env.now)
            return outcome
        if not outcome.transient:
            # out of memory: the allocator answered as specified under
            # contention — fall back immediately, breaker unaffected
            resilience.record_success(device.name, env.now)
            return None
        resilience.record_failure(device.name, env.now)
        if attempt >= resilience.policy.max_retries:
            return None
        ctx.metrics.record_retry(device=device.name,
                                 fault=outcome.fault_class,
                                 query=op.plan_name,
                                 tenant=qctx.tenant if qctx else None)
        # a cancelled query's backoff aborts early instead of retrying
        yield from resilience.backoff(env, attempt, qctx)
        attempt += 1


def _try_gpu(ctx, device, op, child_results, input_bytes, admit_to_cache,
             qctx=None):
    """One co-processor attempt; returns the fault when it aborts.

    Device memory is allocated in several steps and held (the paper's
    operators cannot pre-compute a concise upper bound, Sec. 2.5.1):
    staged inputs first, then half the working memory, the second half
    mid-kernel, and finally the result buffer.  A failure at any later
    step wastes everything done so far — that is the *wasted time* the
    paper measures.  Every abort rolls the device fully back (released
    cache references, freed staging and working memory) before the
    caller decides between a retry and the CPU fallback.
    """
    env = ctx.env
    cache = device.cache
    heap = device.heap
    gpu = device.processor
    engine = ctx.hardware.copy_engine
    #: the copy engine always overlaps staging copies with the kernel
    #: (that is what its channels are for); without it, the
    #: streaming_transfers flag opts into the same shape on the
    #: serialized bus (Sec. 5.5)
    streaming = ctx.hardware.config.streaming_transfers or engine is not None
    start = env.now
    staged = []
    acquired = []
    working = []
    #: with streaming transfers copies run as background processes
    #: overlapping the kernel; the operator completes once both its
    #: compute and its transfers have finished
    inflight = []

    def spawn(generator):
        # A background copy can fail via fault injection; the
        # operator observes that when it joins the transfer tail.
        # Pre-defuse so an abort on another path cannot leave an
        # unwaited failure to crash the event loop.
        transfer = env.process(generator)
        transfer.defused = True
        inflight.append(transfer)

    def move(nbytes, direction, key=None):
        if engine is not None:
            spawn(engine.transfer(nbytes, direction, device=device.name,
                                  key=key))
        elif streaming:
            spawn(ctx.bus.transfer(nbytes, direction, device=device.name))
        else:
            yield from ctx.bus.transfer(nbytes, direction,
                                        device=device.name)

    try:
        # 1. Stage base columns.
        for key in sorted(op.required_columns()):
            column = ctx.database.column(key)
            if key in cache:
                cache.touch(key)
                cache.acquire(key)
                acquired.append(key)
                if engine is not None:
                    if engine.was_prefetched(device.name, key):
                        ctx.metrics.record_prefetch_hit()
                    # cache content can still be on the wire (another
                    # operator or the prefetcher admitted it while its
                    # copy is in flight): coalesce onto that copy
                    pending = engine.attach(device.name, "h2d", key)
                    if pending is not None:
                        inflight.append(pending)
                continue
            cache.record_miss()
            yield from move(column.nominal_bytes, "h2d", key=key)
            if admit_to_cache and cache.admit(key, column.nominal_bytes):
                cache.acquire(key)
                acquired.append(key)
            else:
                # No cache space: the column lives in the operator's
                # heap staging area for the duration of the operator.
                staged.append(heap.allocate(column.nominal_bytes, owner=op.label))
        # 2. Stage child intermediates living elsewhere; a result on a
        #    *different* co-processor crosses the bus twice (device to
        #    host, then host to this device).
        for child in child_results:
            if child.location != device.name:
                if engine is not None:
                    # full-duplex channels no longer serialise the two
                    # hops; chain them explicitly in one background copy
                    staged.append(heap.allocate(child.nominal_bytes,
                                                owner=op.label))
                    spawn(_relay_child(engine, child, device.name))
                    continue
                if child.location != "cpu":
                    yield from move(child.nominal_bytes, "d2h")
                staged.append(heap.allocate(child.nominal_bytes, owner=op.label))
                yield from move(child.nominal_bytes, "h2d")
        # 3. First half of the working memory, held while queueing.
        footprint = op.device_footprint_bytes(
            ctx.profile, ctx.database, child_results
        )
        staged_bytes = sum(a.nbytes for a in staged)
        working_target = max(footprint - staged_bytes, 0)
        first_half = working_target // 2
        working.append(heap.allocate(first_half, owner=op.label))
        # 4. Compute; the second allocation step happens mid-kernel and
        #    can fail after real work was done.  HyPE also selects the
        #    physical algorithm for the exact input size (Sec. 5.2).
        if ctx.algorithm_selection:
            algorithm_key, _ = choose_algorithm(
                ctx.cost_model, ctx.profile, op.kind, ProcessorKind.GPU,
                input_bytes,
            )
        else:
            algorithm_key = op.kind
        seconds = ctx.profile.compute_seconds(
            algorithm_key, ProcessorKind.GPU, input_bytes
        )
        yield gpu.submit(seconds / 2)
        working.append(
            heap.allocate(working_target - first_half, owner=op.label)
        )
        yield gpu.submit(seconds / 2)
        # Streaming mode: the kernel consumed blocks as they arrived;
        # the operator is done once the tail of the transfers landed.
        for transfer_process in inflight:
            yield transfer_process
        ctx.metrics.record_operator(gpu.name, seconds)
        result = op.produce(ctx.database, child_results)
        # 5. The result stays on the device heap until the consumer has
        #    read it.  When it fits, it lives inside the (shrunk)
        #    working area; a result that outgrew the working memory
        #    needs a fresh buffer, which can fail after the compute —
        #    the expensive late abort.
        if working and result.nominal_bytes <= working[0].nbytes:
            for extra in working[1:]:
                extra.free()
            working[0].shrink(result.nominal_bytes)
            result.allocation = working[0]
            working = []
        else:
            result.allocation = heap.allocate(result.nominal_bytes,
                                              owner=op.label)
        result.location = device.name
        ctx.cost_model.observe(op.kind, ProcessorKind.GPU, input_bytes, seconds)
        if algorithm_key != op.kind:
            ctx.cost_model.observe(algorithm_key, ProcessorKind.GPU,
                                   input_bytes, seconds)
        ctx.metrics.record_algorithm(algorithm_key)
        if ctx.trace is not None:
            ctx.trace.record(op.label, op.kind, device.name, op.plan_name,
                             start, env.now)
        return result
    except DeviceFault as fault:
        ctx.metrics.record_abort(env.now - start, query=op.plan_name,
                                 device=fault.device or device.name,
                                 fault=fault.fault_class,
                                 tenant=qctx.tenant if qctx else None)
        if ctx.trace is not None:
            ctx.trace.record(op.label, op.kind, device.name, op.plan_name,
                             start, env.now, aborted=True,
                             fault=fault.fault_class)
        return fault
    finally:
        for key in acquired:
            cache.release(key)
        for allocation in staged:
            allocation.free()
        for allocation in working:
            allocation.free()


def _relay_child(engine, child, target_device):
    """DES process: relay a child intermediate to ``target_device``.

    On a different co-processor the result hops device-to-host first,
    then host-to-device; the engine's channels would otherwise let the
    two hops run concurrently, so they are chained in one process."""
    if child.location != "cpu":
        yield from engine.transfer(child.nominal_bytes, "d2h",
                                   device=child.location)
    yield from engine.transfer(child.nominal_bytes, "h2d",
                               device=target_device)


def _run_cpu(ctx, op, child_results, input_bytes):
    """CPU execution (native placement or fallback after an abort)."""
    start = ctx.env.now
    for child in child_results:
        if child.location != "cpu":
            # The paper's fallback cost: results must come back over
            # the bus before the CPU can continue (Sec. 2.5.1).
            yield from ctx.hardware.host_transfer(
                child.nominal_bytes, "d2h", device=child.location
            )
    if ctx.algorithm_selection:
        algorithm_key, _ = choose_algorithm(
            ctx.cost_model, ctx.profile, op.kind, ProcessorKind.CPU,
            input_bytes,
        )
    else:
        algorithm_key = op.kind
    seconds = ctx.profile.compute_seconds(
        algorithm_key, ProcessorKind.CPU, input_bytes
    )
    yield from ctx.hardware.cpu.execute(seconds)
    result = op.produce(ctx.database, child_results)
    result.location = "cpu"
    ctx.cost_model.observe(op.kind, ProcessorKind.CPU, input_bytes, seconds)
    if algorithm_key != op.kind:
        ctx.cost_model.observe(algorithm_key, ProcessorKind.CPU,
                               input_bytes, seconds)
    ctx.metrics.record_algorithm(algorithm_key)
    if ctx.trace is not None:
        ctx.trace.record(op.label, op.kind, "cpu", op.plan_name,
                         start, ctx.env.now)
    return result
