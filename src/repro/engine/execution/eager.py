"""Eager plan execution (compile-time and run-time placement).

Every operator becomes its own DES process immediately — CoGaDB's
unbounded inter-operator parallelism.  The placement strategy is
consulted when an operator's children have finished:

* compile-time strategies return the placement fixed before execution,
* run-time strategies decide now, seeing actual input sizes and
  locations (Sec. 4).

The root result is transferred back to the host if it finished on the
GPU, and its device memory is released.
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.engine.execution.context import ExecutionContext
from repro.engine.execution.operator_task import execute_operator
from repro.engine.intermediates import OperatorResult
from repro.engine.operators import PhysicalPlan
from repro.hardware.processor import ProcessorKind
from repro.sim import Process


def _estimate(ctx, op, child_results, processor_name) -> float:
    """HyPE runtime estimate used for load tracking."""
    kind = (ProcessorKind.CPU if processor_name == "cpu"
            else ProcessorKind.GPU)
    input_bytes = op.input_nominal_bytes(ctx.database, child_results)
    return ctx.cost_model.estimate(op.kind, kind, input_bytes)


def run_plan_eager(ctx: ExecutionContext, plan: PhysicalPlan,
                   strategy, qctx=None) -> Process:
    """Start ``plan``; returns a process yielding the root result.

    With a ``qctx``
    (:class:`~repro.engine.execution.lifecycle.QueryContext`) every
    operator process registers for cooperative cancellation: a cancel
    interrupts them all at the current simulated time and the abort
    protocol rolls back their device state.
    """
    env = ctx.env
    processes: Dict[int, Process] = {}

    def operator_process(op, child_processes) -> Generator:
        child_results = []
        for child_process in child_processes:
            child_result = yield child_process
            child_results.append(child_result)
        if qctx is not None:
            qctx.check()
        if qctx is not None and qctx.force_cpu:
            processor_name = "cpu"
        else:
            processor_name = strategy.choose_processor(
                ctx, op, child_results
            )
        estimate = _estimate(ctx, op, child_results, processor_name)
        ctx.load.assign(processor_name, estimate)
        try:
            result = yield from execute_operator(
                ctx, op, child_results, processor_name,
                admit_to_cache=strategy.admit_to_cache, qctx=qctx,
            )
        finally:
            ctx.load.finish(processor_name, estimate)
        return result

    for op in plan.operators:  # post order: children already created
        children = [processes[c.op_id] for c in op.children]
        process = env.process(operator_process(op, children))
        if qctx is not None:
            process.defused = True
            qctx.register(process)
        processes[op.op_id] = process

    def root_process() -> Generator:
        result = yield processes[plan.root.op_id]
        if result.location != "cpu":
            yield from ctx.hardware.host_transfer(
                result.nominal_bytes, "d2h", device=result.location
            )
            result.release_device_memory()
            result.location = "cpu"
        return result

    root = env.process(root_process())
    if qctx is not None:
        qctx.register(root)
    return root
