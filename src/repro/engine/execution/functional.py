"""Immediate (non-simulated) plan execution.

Runs the functional numpy implementations bottom-up with no hardware
model.  This is the correctness backbone: integration tests compare
its output (and the simulated executors' output) against the naive
reference evaluator.

When the fused morsel path (:mod:`repro.engine.morsel`) is enabled,
execution happens in two steps: ``prepare_fused`` runs the plan's
scan→join→aggregate chain as per-morsel pipelines and *records* the
byte-identical result tuple of every covered operator into its memo;
the ordinary post-order loop below then serves those memos, runs any
unfused operators (tail sorts/limits, declined plans), and performs the
same per-operator statistics bookkeeping either way.  ``Limit``-rooted
materialisations short-circuit through ``execute_direct`` instead,
which stops scanning morsels once enough rows are gathered.  With
morsels disabled the only extra cost is one boolean check per plan.
"""

from __future__ import annotations

from typing import Dict

from repro.engine import morsel
from repro.engine.intermediates import OperatorResult
from repro.engine.operators import PhysicalOperator, PhysicalPlan
from repro.storage import Database


def execute_functional(plan: PhysicalPlan, database: Database) -> OperatorResult:
    """Execute ``plan`` immediately; returns the root result."""
    statistics = database.statistics
    if morsel.enabled():
        direct = morsel.execute_direct(plan, database)
        if direct is not None:
            # Limit-rooted plan served with cross-chunk early
            # termination; replay the per-operator access bookkeeping
            # the post-order loop below would have performed.
            for op in plan.operators:
                statistics.record_accesses(sorted(op.required_columns()))
            return direct
        morsel.prepare_fused(plan, database)
    results: Dict[int, OperatorResult] = {}
    for op in plan.operators:  # post order: children first
        child_results = [results[c.op_id] for c in op.children]
        results[op.op_id] = op.produce(database, child_results)
        # required_columns() is a set: sort so recency ticks (and the
        # LFU tie-break order downstream) are hash-seed independent
        statistics.record_accesses(sorted(op.required_columns()))
    return results[plan.root.op_id]
