"""Immediate (non-simulated) plan execution.

Runs the functional numpy implementations bottom-up with no hardware
model.  This is the correctness backbone: integration tests compare
its output (and the simulated executors' output) against the naive
reference evaluator.
"""

from __future__ import annotations

from typing import Dict

from repro.engine.intermediates import OperatorResult
from repro.engine.operators import PhysicalOperator, PhysicalPlan
from repro.storage import Database


def execute_functional(plan: PhysicalPlan, database: Database) -> OperatorResult:
    """Execute ``plan`` immediately; returns the root result."""
    results: Dict[int, OperatorResult] = {}
    statistics = database.statistics
    for op in plan.operators:  # post order: children first
        child_results = [results[c.op_id] for c in op.children]
        results[op.op_id] = op.produce(database, child_results)
        # required_columns() is a set: sort so recency ticks (and the
        # LFU tie-break order downstream) are hash-seed independent
        statistics.record_accesses(sorted(op.required_columns()))
    return results[plan.root.op_id]
