"""Plan executors.

* :func:`execute_functional` — run a plan immediately, outside the DES
  (pure correctness path, used by tests and the reference comparison).
* :class:`ExecutionContext` plus the simulated executors live in
  :mod:`repro.engine.execution.context`, :mod:`...operator_task`, and
  :mod:`...eager` (compile-time and run-time placement); the
  query-chopping executor lives in :mod:`repro.core.chopping`.
* The overload-safe query lifecycle (admission control, deadlines with
  cooperative cancellation, straggler hedging) lives in
  :mod:`repro.engine.execution.lifecycle`.
* Intra-operator CPU/GPU co-processing (ratio-split execution) lives
  in :mod:`repro.engine.execution.split`.
"""

from repro.engine.execution.functional import execute_functional
from repro.engine.execution.context import ExecutionContext
from repro.engine.execution.lifecycle import (
    AdmissionController,
    LifecycleConfig,
    QueryCancelled,
    QueryContext,
    deadline_watchdog,
)
from repro.engine.execution.operator_task import execute_operator
from repro.engine.execution.eager import run_plan_eager
from repro.engine.execution.resilience import (
    BreakerState,
    CircuitBreaker,
    ResilienceManager,
    RetryPolicy,
)
from repro.engine.execution.split import SplitState
from repro.engine.execution.vectorized import VectorizedExecutor

__all__ = [
    "AdmissionController",
    "BreakerState",
    "CircuitBreaker",
    "ExecutionContext",
    "LifecycleConfig",
    "QueryCancelled",
    "QueryContext",
    "ResilienceManager",
    "RetryPolicy",
    "SplitState",
    "VectorizedExecutor",
    "deadline_watchdog",
    "execute_functional",
    "execute_operator",
    "run_plan_eager",
]
