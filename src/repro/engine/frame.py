"""Evaluation frames.

A :class:`Frame` resolves column references during expression
evaluation.  It binds a database plus (optionally) per-table row
positions, so the same expression code evaluates over full base tables,
selection intermediates (tid lists), and join results (aligned tid
lists per table).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.storage import Column, Database


class Frame:
    """Column resolver for expression evaluation."""

    def __init__(
        self,
        database: Database,
        positions: Optional[Dict[str, np.ndarray]] = None,
    ):
        self._database = database
        self._positions = positions

    def array(self, key: str) -> np.ndarray:
        """Values of ``table.column`` at this frame's row positions."""
        column = self._database.column(key)
        if self._positions is None:
            return column.values
        table_name = key.partition(".")[0]
        try:
            positions = self._positions[table_name]
        except KeyError:
            raise KeyError(
                "frame has no positions for table {!r} (needed by {})".format(
                    table_name, key
                )
            )
        return column.gather(positions)

    def column_meta(self, key: str) -> Column:
        """The column object (for dictionary lookups)."""
        return self._database.column(key)
