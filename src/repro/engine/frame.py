"""Evaluation frames.

A :class:`Frame` resolves column references during expression
evaluation.  It binds a database plus (optionally) per-table row
positions, so the same expression code evaluates over full base tables,
selection intermediates (tid lists), and join results (aligned tid
lists per table).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.engine.intermediates import SelectionVector
from repro.storage import Column, Database


class Frame:
    """Column resolver for expression evaluation.

    Position entries are tid arrays or lazy
    :class:`~repro.engine.intermediates.SelectionVector` masks; a
    full-table selection resolves to the base array with no copy.
    Gathers are memoised per frame (expressions never mutate their
    inputs), so a predicate reading one column twice pays one gather.
    """

    def __init__(
        self,
        database: Database,
        positions: Optional[Dict[str, np.ndarray]] = None,
    ):
        self._database = database
        self._positions = positions
        self._arrays: Dict[str, np.ndarray] = {}

    def array(self, key: str) -> np.ndarray:
        """Values of ``table.column`` at this frame's row positions."""
        column = self._database.column(key)
        if self._positions is None:
            return column.values
        cached = self._arrays.get(key)
        if cached is not None:
            return cached
        table_name = key.partition(".")[0]
        try:
            positions = self._positions[table_name]
        except KeyError:
            raise KeyError(
                "frame has no positions for table {!r} (needed by {})".format(
                    table_name, key
                )
            )
        if isinstance(positions, SelectionVector):
            if positions.is_all and positions.n == len(column.values):
                values = column.values
            else:
                values = column.gather(positions.tids)
        else:
            values = column.gather(positions)
        self._arrays[key] = values
        return values

    def column_meta(self, key: str) -> Column:
        """The column object (for dictionary lookups)."""
        return self._database.column(key)
