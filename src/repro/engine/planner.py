"""The strategic optimizer: QuerySpec -> logical plan -> physical plan.

Join ordering uses a greedy heuristic in the spirit of CoGaDB's
Selinger-style optimizer: start from the largest (fact) table and
repeatedly join the connected table with the smallest estimated
filtered cardinality.  Selectivities are estimated by evaluating
filter predicates on a row sample — cheap at our data scale and far
more robust than magic constants.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.engine.expressions import ColumnRef, Expression
from repro.engine.frame import Frame
from repro.engine.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalHaving,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)
from repro.engine.operators import (
    Distinct,
    FrameFilter,
    GroupByAggregate,
    HashJoin,
    Limit,
    Materialize,
    PhysicalPlan,
    ScanSelect,
    Sort,
)
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sql.binder import QuerySpec
from repro.storage import Database


class PlanningError(ValueError):
    """Raised when no valid plan exists for a QuerySpec."""


class Planner:
    """Builds logical and physical plans for bound queries."""

    def __init__(self, database: Database, sample_rows: int = 2048):
        self.database = database
        self.sample_rows = sample_rows

    # -- selectivity estimation ------------------------------------------

    def estimate_selectivity(self, table: str,
                             predicate: Optional[Expression]) -> float:
        """Fraction of ``table`` rows matching ``predicate`` (sampled)."""
        from repro.engine.cardinality import estimate_selectivity

        return estimate_selectivity(
            self.database, table, predicate, sample_rows=self.sample_rows
        )

    def estimate_filtered_rows(self, table: str,
                               predicate: Optional[Expression]) -> float:
        """Estimated nominal cardinality of a filtered scan."""
        nominal = self.database.table(table).nominal_rows
        return self.estimate_selectivity(table, predicate) * nominal

    # -- logical planning ----------------------------------------------------

    def logical_plan(self, spec: "QuerySpec") -> LogicalNode:
        """Build the logical plan (join order decided here)."""
        scans: Dict[str, LogicalNode] = {
            table: LogicalScan(table, spec.filters.get(table))
            for table in spec.tables
        }
        node = self._order_joins(spec, scans)
        if spec.is_aggregation:
            node = LogicalAggregate(node, spec.group_by, spec.aggregates)
            if spec.having is not None:
                node = LogicalHaving(node, spec.having)
        else:
            node = LogicalProject(node, spec.select_items)
            if spec.distinct:
                node = LogicalDistinct(node)
        if spec.order_by:
            node = LogicalSort(node, spec.order_by)
        if spec.limit is not None:
            node = LogicalLimit(node, spec.limit)
        return node

    def _order_joins(self, spec: "QuerySpec",
                     scans: Dict[str, LogicalNode]) -> LogicalNode:
        """Greedy join ordering starting from the largest table."""
        if len(spec.tables) == 1:
            return scans[spec.tables[0]]
        if not spec.join_edges:
            raise PlanningError(
                "query over {} tables without join predicates".format(
                    len(spec.tables)
                )
            )
        fact = max(spec.tables,
                   key=lambda t: self.database.table(t).nominal_rows)
        joined: Set[str] = {fact}
        node = scans[fact]
        remaining = [t for t in spec.tables if t != fact]
        estimates = {
            t: self.estimate_filtered_rows(t, spec.filters.get(t))
            for t in remaining
        }
        used_edges = 0
        while remaining:
            candidates = []
            for table in remaining:
                edge = self._connecting_edge(spec, joined, table)
                if edge is not None:
                    candidates.append((estimates[table], table, edge))
            if not candidates:
                raise PlanningError(
                    "join graph is disconnected: {} unreachable".format(remaining)
                )
            candidates.sort(key=lambda c: (c[0], c[1]))
            _, table, (probe_key, build_key) = candidates[0]
            node = LogicalJoin(node, scans[table], probe_key, build_key)
            joined.add(table)
            remaining.remove(table)
            used_edges += 1
        if used_edges != len(spec.join_edges):
            # Redundant edges (cycles) would be silently dropped, which
            # changes query semantics — refuse rather than guess.
            raise PlanningError(
                "join graph has {} edges but only {} were used; "
                "cyclic join conditions are not supported".format(
                    len(spec.join_edges), used_edges
                )
            )
        return node

    @staticmethod
    def _connecting_edge(
        spec: "QuerySpec", joined: Set[str], candidate: str
    ) -> Optional[Tuple[ColumnRef, ColumnRef]]:
        """Find a join edge between the joined set and ``candidate``.

        Returns the edge as (probe_key on the joined side, build_key on
        the candidate side).
        """
        for left, right in spec.join_edges:
            if left.table in joined and right.table == candidate:
                return (left, right)
            if right.table in joined and left.table == candidate:
                return (right, left)
        return None

    # -- lowering -----------------------------------------------------------

    def plan(self, spec: "QuerySpec") -> PhysicalPlan:
        """Full pipeline: logical plan, then 1:1 physical lowering."""
        root = self._lower(self.logical_plan(spec))
        return PhysicalPlan(root, name=spec.name)

    def _lower(self, node: LogicalNode):
        if isinstance(node, LogicalScan):
            return ScanSelect(node.table, node.predicate)
        if isinstance(node, LogicalJoin):
            return HashJoin(
                self._lower(node.children[0]),
                self._lower(node.children[1]),
                node.probe_key,
                node.build_key,
            )
        if isinstance(node, LogicalAggregate):
            return GroupByAggregate(
                self._lower(node.children[0]), node.group_by, node.aggregates
            )
        if isinstance(node, LogicalProject):
            return Materialize(self._lower(node.children[0]), node.items)
        if isinstance(node, LogicalHaving):
            return FrameFilter(self._lower(node.children[0]), node.predicate)
        if isinstance(node, LogicalDistinct):
            return Distinct(self._lower(node.children[0]))
        if isinstance(node, LogicalSort):
            return Sort(self._lower(node.children[0]), node.keys)
        if isinstance(node, LogicalLimit):
            return Limit(self._lower(node.children[0]), node.n)
        raise PlanningError("cannot lower {!r}".format(node))
