"""Registry of the engine's per-database acceleration caches.

Several layers memoise derived state against a live database —
:mod:`repro.engine.plan_cache` keeps functional subplan results,
:mod:`repro.engine.kernels` keeps join indexes and zone maps.  Anything
that mutates a database in place (``compress_database``) or wants a
clean slate (``clear_database_caches``, the test-session fixture) must
drop *all* of them; this registry is the single place that knows the
full set.

Caches self-register at import time.  That is sound: a cache whose
module was never imported cannot hold state, so invalidating only the
registered ones can never miss a populated cache.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

#: name -> (invalidate(database=None), cache_size(database=None))
_registry: "Dict[str, Tuple[Callable, Callable]]" = {}


def register(name: str, invalidate: Callable, cache_size: Callable) -> None:
    """Register one cache's invalidation and sizing hooks."""
    _registry[name] = (invalidate, cache_size)


def registered() -> Tuple[str, ...]:
    """Names of every registered cache."""
    return tuple(sorted(_registry))


def invalidate_all(database=None) -> None:
    """Invalidate every registered cache — globally, or one database's."""
    for invalidate, _ in _registry.values():
        invalidate(database)


def cache_sizes(database=None) -> Dict[str, int]:
    """Entry counts per registered cache (for tests and benchmarks)."""
    return {
        name: size(database) for name, (_, size) in sorted(_registry.items())
    }
