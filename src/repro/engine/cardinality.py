"""Sample-based cardinality estimation.

Shared by the strategic optimizer (join ordering) and the Critical Path
placement heuristic (compile-time transfer/compute estimates).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.engine.expressions import Expression
from repro.engine.frame import Frame
from repro.storage import Database


def estimate_selectivity(
    database: Database,
    table: str,
    predicate: Optional[Expression],
    sample_rows: int = 2048,
) -> float:
    """Fraction of ``table`` rows matching ``predicate``.

    Evaluates the predicate over an evenly spaced row sample — cheap at
    the library's data scale and far more robust than magic constants.
    """
    if predicate is None:
        return 1.0
    tbl = database.table(table)
    n = tbl.actual_rows
    if n == 0:
        return 1.0
    if n <= sample_rows:
        positions = np.arange(n)
    else:
        positions = np.linspace(0, n - 1, sample_rows).astype(np.int64)
    frame = Frame(database, {table: positions})
    mask = predicate.evaluate(frame)
    return float(np.count_nonzero(mask)) / len(positions)
