"""Kernel-acceleration layer: cached join indexes and zone maps.

The functional (numpy) kernels are pure computations over immutable
column arrays, so derived access structures can be built once per
database and reused across queries and runs — exactly how GPU engines
amortise their data-parallel primitives:

* **Cached join indexes** — the stable argsort order (and sorted view)
  of a join-key column.  ``HashJoin`` re-sorted the build column on
  every execution; with the index cached, probing is a pair of
  ``searchsorted`` calls.  Key columns that are dense ascending ranges
  (dimension primary keys) skip the search entirely and join by
  positional lookup.
* **Zone maps** — per-block min/max statistics
  (:mod:`repro.storage.blocks`) letting ``ScanSelect`` skip blocks that
  wholly fail a predicate and short-circuit blocks that wholly pass.
  String predicates work through dictionary-code bounds, mirroring
  ``expressions._encode_literal`` exactly.

Everything here is a pure acceleration: the produced tid sets and masks
are byte-identical to the unaccelerated operators.  The cache registers
itself with :mod:`repro.engine.caches`, so ``compress_database`` and
``clear_database_caches`` invalidate it alongside the plan cache.
``enable(False)`` restores the seed execution paths wholesale.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple
from weakref import WeakKeyDictionary

import numpy as np

from repro.engine import caches
from repro.engine.expressions import (
    And,
    Between,
    ColumnRef,
    Comparison,
    InList,
    Literal,
    Not,
    Or,
)
from repro.storage.blocks import DEFAULT_BLOCK_ROWS, ZoneMap, build_zone_map
from repro.storage.types import ColumnType

#: Environment knob: rows per zone-map block (default 64K).  The
#: simulation's actual arrays are small, so tests and benchmarks tune
#: this down to exercise pruning.
BLOCK_ENV = "REPRO_ZONE_BLOCK"

#: If the build side of a cached-index join would expand to more than
#: this many matches per probe row before mask filtering, fall back to
#: sorting the filtered values (the seed path) instead.
_EXPAND_FALLBACK_FACTOR = 4

_enabled = True
_block_rows_override: Optional[int] = None

#: database -> KernelCache
_caches: "WeakKeyDictionary" = WeakKeyDictionary()

#: Event counters for benchmarks and tests.
stats = {
    "join_index_builds": 0,
    "join_index_hits": 0,
    "dense_joins": 0,
    "zone_map_builds": 0,
    "scans_pruned": 0,
    "blocks_skipped": 0,
    "blocks_short_circuited": 0,
    "masked_refines": 0,
    "masked_intersects": 0,
    "lookup_builds": 0,
    "lookup_hits": 0,
    "bounds_builds": 0,
}


def enable(on: bool = True) -> None:
    """Globally enable or disable kernel acceleration."""
    global _enabled
    _enabled = on


def enabled() -> bool:
    return _enabled


def reset_stats() -> None:
    for key in stats:
        stats[key] = 0


def snapshot_stats() -> Dict[str, int]:
    return dict(stats)


def default_block_rows() -> int:
    """Effective zone-map block size: override > $REPRO_ZONE_BLOCK > 64K."""
    if _block_rows_override is not None:
        return _block_rows_override
    raw = os.environ.get(BLOCK_ENV, "").strip()
    if raw:
        return max(int(raw), 1)
    return DEFAULT_BLOCK_ROWS


def set_block_rows(block_rows: Optional[int]) -> None:
    """Override the zone-map block size (None restores env/default).

    Existing caches keep their maps; call :func:`invalidate` to rebuild
    at the new granularity.
    """
    global _block_rows_override
    if block_rows is not None and int(block_rows) < 1:
        raise ValueError("block_rows must be >= 1")
    _block_rows_override = None if block_rows is None else int(block_rows)


class JoinIndex:
    """Reusable access structure over one join-key column.

    ``dense_base`` is set when the column is a dense ascending integer
    range (``base, base+1, ...``) — dimension primary keys — in which
    case matches are positional and no sort order is materialised.
    Otherwise ``order`` is the stable argsort of the column and
    ``sorted_values`` the column gathered through it.
    """

    __slots__ = ("order", "sorted_values", "dense_base")

    def __init__(self, order, sorted_values, dense_base):
        self.order = order
        self.sorted_values = sorted_values
        self.dense_base = dense_base


def _build_join_index(values: np.ndarray) -> JoinIndex:
    stats["join_index_builds"] += 1
    if len(values) and values.dtype.kind in "iu":
        base = int(values[0])
        if int(values[-1]) == base + len(values) - 1:
            expected = np.arange(base, base + len(values), dtype=values.dtype)
            if np.array_equal(values, expected):
                return JoinIndex(None, values, base)
    order = np.argsort(values, kind="stable")
    return JoinIndex(order, values[order], None)


#: A position lookup is only built when the key span is at most this
#: factor of the column length (plus slack for small tables): sparse
#: keys would waste memory for no probe-time gain over the sorted index.
_LOOKUP_SPAN_FACTOR = 4
_LOOKUP_SPAN_SLACK = 65536


class PositionLookup:
    """O(1) key→row-position table for a *unique* integer key column.

    ``table[key - base]`` is the row position of ``key`` (or -1).  This
    is the morsel pipeline's probe structure for non-dense primary keys
    (e.g. ``d_datekey``): one gather per morsel instead of two
    ``searchsorted`` passes.  Because every key is unique, the match
    expansion it implies is byte-identical to the sorted-index path.
    """

    __slots__ = ("base", "table", "n_rows")

    def __init__(self, base, table, n_rows):
        self.base = base
        self.table = table
        self.n_rows = n_rows


def _build_position_lookup(values: np.ndarray) -> Optional[PositionLookup]:
    n = len(values)
    if n == 0 or values.dtype.kind not in "iu":
        return None
    vmin = int(values.min())
    vmax = int(values.max())
    span = vmax - vmin + 1
    if span > _LOOKUP_SPAN_FACTOR * n + _LOOKUP_SPAN_SLACK:
        return None
    table = np.full(span, -1, dtype=np.int64)
    table[values.astype(np.int64) - vmin] = np.arange(n, dtype=np.int64)
    if int(np.count_nonzero(table >= 0)) != n:
        return None  # duplicate keys collided
    stats["lookup_builds"] += 1
    return PositionLookup(vmin, table, n)


class KernelCache:
    """Per-database store of join indexes and zone maps.

    Both are keyed by column key and validated against the column's
    current array length, but the authoritative invalidation is
    explicit (:func:`invalidate` via the cache registry) — exactly like
    the plan cache.
    """

    def __init__(self, block_rows: Optional[int] = None):
        self.block_rows = (
            int(block_rows) if block_rows is not None else default_block_rows()
        )
        self._join_indexes: Dict[str, JoinIndex] = {}
        self._zone_maps: Dict[str, ZoneMap] = {}
        self._lookups: Dict[str, Tuple[int, Optional[PositionLookup]]] = {}
        self._bounds: Dict[str, Tuple[int, Tuple[int, int]]] = {}

    def join_index(self, column) -> JoinIndex:
        index = self._join_indexes.get(column.key)
        if index is not None and len(index.sorted_values) == len(column.values):
            stats["join_index_hits"] += 1
            return index
        index = _build_join_index(column.values)
        self._join_indexes[column.key] = index
        return index

    def position_lookup(self, column) -> Optional[PositionLookup]:
        """Unique-key position table for ``column``, or None when the
        column has duplicates, is non-integer, or spans too wide a key
        range.  A failed build is memoised so the scan runs once."""
        entry = self._lookups.get(column.key)
        n_col = len(column.values)
        if entry is not None and entry[0] == n_col:
            if entry[1] is not None:
                stats["lookup_hits"] += 1
            return entry[1]
        lookup = _build_position_lookup(column.values)
        self._lookups[column.key] = (n_col, lookup)
        return lookup

    def column_bounds(self, column) -> Optional[Tuple[int, int]]:
        """Cached (min, max) of an integer column — the morsel
        aggregator's group-id radix source.  None for empty or
        non-integer columns."""
        entry = self._bounds.get(column.key)
        n_col = len(column.values)
        if entry is not None and entry[0] == n_col:
            return entry[1]
        values = column.values
        if n_col == 0 or values.dtype.kind not in "iu":
            bounds = None
        else:
            stats["bounds_builds"] += 1
            bounds = (int(values.min()), int(values.max()))
        self._bounds[column.key] = (n_col, bounds)
        return bounds

    def zone_map(self, column) -> ZoneMap:
        zone_map = self._zone_maps.get(column.key)
        if (
            zone_map is not None
            and zone_map.n_rows == len(column.values)
            and zone_map.block_rows == self.block_rows
        ):
            return zone_map
        stats["zone_map_builds"] += 1
        zone_map = build_zone_map(column.values, self.block_rows)
        self._zone_maps[column.key] = zone_map
        return zone_map

    def clear(self) -> None:
        self._join_indexes.clear()
        self._zone_maps.clear()
        self._lookups.clear()
        self._bounds.clear()

    def __len__(self) -> int:
        return (
            len(self._join_indexes)
            + len(self._zone_maps)
            + len(self._lookups)
            + len(self._bounds)
        )


def cache_for(database) -> Optional[KernelCache]:
    """The database's kernel cache, or None when acceleration is off."""
    if not _enabled:
        return None
    cache = _caches.get(database)
    if cache is None:
        cache = KernelCache()
        _caches[database] = cache
    return cache


def invalidate(database=None) -> None:
    """Drop cached kernels — all of them, or one database's."""
    if database is None:
        _caches.clear()
    else:
        _caches.pop(database, None)


def cache_size(database=None) -> int:
    """Number of cached kernel structures (one or all databases)."""
    if database is not None:
        cache = _caches.get(database)
        return len(cache) if cache is not None else 0
    return sum(len(cache) for cache in _caches.values())


# ---------------------------------------------------------------------------
# Zone-map pruned scans
# ---------------------------------------------------------------------------

class _BlockFrame:
    """Frame over one contiguous row range of a base table.

    Predicates are elementwise, so evaluating over a slice of the
    column arrays equals the full evaluation restricted to the slice.
    """

    __slots__ = ("_database", "_start", "_stop")

    def __init__(self, database):
        self._database = database
        self._start = 0
        self._stop = 0

    def set_range(self, start: int, stop: int) -> None:
        self._start = start
        self._stop = stop

    def array(self, key: str) -> np.ndarray:
        return self._database.column(key).values[self._start:self._stop]

    def column_meta(self, key: str):
        return self._database.column(key)


def _comparison_bounds(column, op: str, value):
    """Normalise a comparison literal the way ``Comparison.evaluate``
    does: string literals become dictionary codes, strict string
    inequalities become inclusive ones."""
    if isinstance(value, str):
        if column.ctype is not ColumnType.STRING:
            return None
        if op in ("=", "<>"):
            value = column.encode(value)
        elif op == "<=":
            value = column.encode_upper_bound(value)
        elif op == "<":
            value = column.encode_lower_bound(value) - 1
            op = "<="
        elif op == ">=":
            value = column.encode_lower_bound(value)
        elif op == ">":
            value = column.encode_upper_bound(value) + 1
            op = ">="
        else:
            return None
    elif isinstance(value, (list, tuple, np.ndarray)):
        return None
    return op, value


def _comparison_verdicts(zone_map: ZoneMap, op: str, value):
    """(all_pass, none_pass) block verdicts for ``column op value``."""
    mins, maxs = zone_map.mins, zone_map.maxs
    if op == "=":
        outside = (value < mins) | (value > maxs)
        return (mins == value) & (maxs == value), outside
    if op == "<>":
        outside = (value < mins) | (value > maxs)
        return outside, (mins == value) & (maxs == value)
    if op == "<":
        return maxs < value, mins >= value
    if op == "<=":
        return maxs <= value, mins > value
    if op == ">":
        return mins > value, maxs <= value
    if op == ">=":
        return mins >= value, maxs < value
    return None


def _literal_value(expr):
    return expr.value if isinstance(expr, Literal) else None


def _predicate_verdicts(database, table_name: str, predicate,
                        cache: KernelCache, n_blocks: int):
    """Recursive block classification.

    Returns ``(all_pass, none_pass)`` boolean arrays over blocks, or
    None when the predicate shape is not analysable.  Inside And/Or an
    unanalysable child degrades to all-partial (never wrong, only less
    pruning).
    """
    undecided = None  # lazily built (zeros, zeros) pair

    def _recurse(node):
        nonlocal undecided
        if isinstance(node, Comparison):
            op, ref, lit = node.op, node.left, node.right
            if isinstance(lit, ColumnRef) and isinstance(ref, Literal):
                ref, lit = lit, ref
                op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
            if not (isinstance(ref, ColumnRef) and isinstance(lit, Literal)):
                return None
            if ref.table != table_name:
                return None
            column = database.column(ref.key)
            bounds = _comparison_bounds(column, op, lit.value)
            if bounds is None:
                return None
            return _comparison_verdicts(cache.zone_map(column), *bounds)
        if isinstance(node, Between):
            lower = Comparison(">=", node.expr, node.low)
            upper = Comparison("<=", node.expr, node.high)
            return _recurse(And([lower, upper]))
        if isinstance(node, InList):
            if not isinstance(node.expr, ColumnRef):
                return None
            if node.expr.table != table_name or not node.values:
                return None
            column = database.column(node.expr.key)
            values = node.values
            if isinstance(values[0], str):
                if column.ctype is not ColumnType.STRING:
                    return None
                values = [column.encode(v) for v in values]
            zone_map = cache.zone_map(column)
            mins, maxs = zone_map.mins, zone_map.maxs
            none_pass = np.ones(len(mins), dtype=bool)
            for value in values:
                none_pass &= (value < mins) | (value > maxs)
            all_pass = (mins == maxs) & np.isin(mins, np.asarray(values))
            return all_pass, none_pass
        if isinstance(node, (And, Or)):
            child_verdicts = []
            for child in node.children:
                verdict = _recurse(child)
                if verdict is None:
                    if undecided is None:
                        undecided = (
                            np.zeros(n_blocks, dtype=bool),
                            np.zeros(n_blocks, dtype=bool),
                        )
                    verdict = undecided
                child_verdicts.append(verdict)
            alls = [v[0] for v in child_verdicts]
            nones = [v[1] for v in child_verdicts]
            if isinstance(node, And):
                # every row passes iff it passes every child; a block
                # fails outright as soon as one child rules it out.
                return (
                    np.logical_and.reduce(alls),
                    np.logical_or.reduce(nones),
                )
            return (
                np.logical_or.reduce(alls),
                np.logical_and.reduce(nones),
            )
        if isinstance(node, Not):
            verdict = _recurse(node.child)
            if verdict is None:
                return None
            return verdict[1], verdict[0]
        return None

    return _recurse(predicate)


def scan_mask(database, table_name: str, predicate,
              cache: KernelCache) -> Optional[np.ndarray]:
    """Zone-map accelerated predicate mask over a full base table.

    Returns the boolean row mask — bitwise identical to
    ``predicate.evaluate(Frame(database))`` — or None when pruning does
    not apply (single block, unanalysable predicate, or too few decided
    blocks to beat a plain full evaluation).
    """
    n_rows = database.table(table_name).actual_rows
    block_rows = cache.block_rows
    if n_rows <= block_rows:
        return None
    n_blocks = (n_rows + block_rows - 1) // block_rows
    verdicts = _predicate_verdicts(database, table_name, predicate, cache,
                                   n_blocks)
    if verdicts is None:
        return None
    all_pass, none_pass = verdicts
    partial = ~(all_pass | none_pass)
    n_partial = int(np.count_nonzero(partial))
    if n_partial * 2 > n_blocks:
        # Most blocks need row-level work anyway: one full vectorised
        # evaluation beats many per-block ones.
        return None
    stats["scans_pruned"] += 1
    stats["blocks_skipped"] += int(np.count_nonzero(none_pass))
    stats["blocks_short_circuited"] += int(np.count_nonzero(all_pass))
    mask = np.zeros(n_rows, dtype=bool)
    for block in np.flatnonzero(all_pass):
        start = block * block_rows
        mask[start:start + block_rows] = True
    if n_partial:
        frame = _BlockFrame(database)
        for block in np.flatnonzero(partial):
            start = block * block_rows
            stop = min(start + block_rows, n_rows)
            frame.set_range(start, stop)
            mask[start:stop] = np.asarray(
                predicate.evaluate(frame), dtype=bool
            )
    return mask


# ---------------------------------------------------------------------------
# Cached-index join expansion
# ---------------------------------------------------------------------------

def _empty_match():
    empty = np.empty(0, dtype=np.int64)
    return empty, empty


def expand_with_index(cache: KernelCache, probe_values: np.ndarray,
                      build_selection, build_column):
    """Match ``probe_values`` against a selected base column via the
    cached join index.

    ``build_selection`` is the build side's
    :class:`~repro.engine.intermediates.SelectionVector` over the
    column's table.  Returns ``(probe_idx, build_tids)`` — probe-side
    match indexes and *base-table* row positions of the matched build
    rows, byte-identical to the seed gather-sort-search expansion — or
    None when the cached path does not apply.
    """
    n_col = len(build_column.values)
    if build_selection.n != n_col:
        return None
    index = cache.join_index(build_column)
    full = build_selection.is_all
    mask = build_selection.mask

    if index.dense_base is not None:
        if probe_values.dtype.kind not in "iu":
            return None
        stats["dense_joins"] += 1
        pos = probe_values.astype(np.int64) - index.dense_base
        in_range = (pos >= 0) & (pos < n_col)
        if not full:
            hit = in_range & mask[np.where(in_range, pos, 0)]
        else:
            hit = in_range
        return np.flatnonzero(hit), pos[hit]

    lo = np.searchsorted(index.sorted_values, probe_values, side="left")
    hi = np.searchsorted(index.sorted_values, probe_values, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if not full and total > _EXPAND_FALLBACK_FACTOR * len(probe_values) + 1024:
        # The unfiltered expansion would dwarf the seed path's
        # filtered sort; let HashJoin re-sort the selected values.
        return None
    if total == 0:
        return _empty_match()
    probe_idx = np.repeat(np.arange(len(probe_values), dtype=np.int64), counts)
    starts = np.repeat(lo, counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    build_tids = index.order[starts + offsets]
    if full:
        return probe_idx, build_tids
    # Restricting the full-column stable order to the selected rows
    # preserves the seed ordering: selection tids ascend, so the stable
    # sort of the gathered values lists equal keys in the same order.
    keep = mask[build_tids]
    return probe_idx[keep], build_tids[keep]


caches.register("kernels", invalidate, cache_size)
