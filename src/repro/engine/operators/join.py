"""Hash join."""

from __future__ import annotations

from typing import List, Set

import numpy as np

from repro.engine import kernels
from repro.engine.expressions import ColumnRef
from repro.engine.intermediates import OperatorResult, SelectionVector, TidSet
from repro.engine.operators.base import (
    PhysicalOperator,
    TID_BYTES,
    scaled_nominal_rows,
)
from repro.storage import Database


def _expand_matches(left_values: np.ndarray, right_values: np.ndarray):
    """Vectorised inner equi-join on value arrays.

    Returns aligned index arrays ``(left_idx, right_idx)`` covering
    every matching pair, including 1:N matches on the build side.
    """
    order = np.argsort(right_values, kind="stable")
    sorted_right = right_values[order]
    lo = np.searchsorted(sorted_right, left_values, side="left")
    hi = np.searchsorted(sorted_right, left_values, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    left_idx = np.repeat(np.arange(len(left_values), dtype=np.int64), counts)
    starts = np.repeat(lo, counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    right_idx = order[starts + offsets]
    return left_idx, right_idx


class HashJoin(PhysicalOperator):
    """Inner equi-join of two TidSet children.

    The left child is the probe side (usually the fact-table lineage),
    the right child the build side (usually a filtered dimension).  The
    output TidSet aligns the positions of every base table reachable
    from either side.
    """

    kind = "join"

    def __init__(
        self,
        probe: PhysicalOperator,
        build: PhysicalOperator,
        probe_key: ColumnRef,
        build_key: ColumnRef,
        label: str = "",
    ):
        super().__init__(
            children=[probe, build],
            label=label or "Join({}={})".format(probe_key.key, build_key.key),
        )
        self.probe_key = probe_key
        self.build_key = build_key

    def state_key(self):
        return (self.probe_key.key, self.build_key.key)

    def required_columns(self) -> Set[str]:
        return {self.probe_key.key, self.build_key.key}

    def input_nominal_bytes(self, database: Database,
                            child_results: List[OperatorResult]) -> int:
        probe, build = child_results
        key_width = database.column(self.probe_key.key).ctype.itemsize
        probe_bytes = probe.nominal_rows * (TID_BYTES + key_width)
        build_bytes = build.nominal_rows * (TID_BYTES + key_width)
        return max(probe_bytes + build_bytes, TID_BYTES)

    def estimate_input_nominal_bytes(self, database: Database) -> int:
        probe_rows = database.table(self.probe_key.table).nominal_rows
        build_rows = database.table(self.build_key.table).nominal_rows
        key_width = database.column(self.probe_key.key).ctype.itemsize
        return (probe_rows + build_rows) * (TID_BYTES + key_width)

    def device_footprint_bytes(self, profile, database, child_results) -> int:
        """Hash-join working memory: the hash table over the build side
        plus output buffers sized by the streamed probe side."""
        probe, build = child_results
        key_width = database.column(self.build_key.key).ctype.itemsize
        build_bytes = build.nominal_rows * (TID_BYTES + key_width)
        probe_bytes = probe.nominal_rows * (TID_BYTES + key_width)
        return int(2.0 * build_bytes + 0.5 * probe_bytes)

    def run(self, database: Database,
            child_results: List[OperatorResult]) -> OperatorResult:
        probe, build = child_results
        probe_payload = probe.payload
        build_payload = build.payload
        probe_column = database.column(self.probe_key.key)
        build_column = database.column(self.build_key.key)
        probe_values = probe_payload.gather(self.probe_key.table, probe_column)

        # Cached-index fast path: the build side is a (lazy) selection
        # over a single base table, so the memoised index of the full
        # key column replaces the per-execution argsort.  Output tids
        # are byte-identical to the seed expansion.
        cached = None
        build_selection = build_payload.selection(self.build_key.table)
        if build_selection is not None and len(build_payload.tables) == 1:
            cache = kernels.cache_for(database)
            if cache is not None:
                cached = kernels.expand_with_index(
                    cache, probe_values, build_selection, build_column
                )
        if cached is not None:
            probe_idx, build_tids = cached
            build_tables = {self.build_key.table: build_tids}
        else:
            build_values = build_payload.gather(
                self.build_key.table, build_column
            )
            probe_idx, build_idx = _expand_matches(probe_values, build_values)
            build_tables = {
                name: build_payload.positions(name)[build_idx]
                for name in build_payload.table_names
            }

        tables = {}
        for name in probe_payload.table_names:
            entry = probe_payload.tables[name]
            if isinstance(entry, SelectionVector) and entry.is_all:
                tables[name] = probe_idx
            else:
                tables[name] = probe_payload.positions(name)[probe_idx]
        for name, tids in build_tables.items():
            if name in tables:
                raise ValueError(
                    "table {} appears on both join sides".format(name)
                )
            tables[name] = tids

        nominal = scaled_nominal_rows(
            len(probe_idx), max(probe.actual_rows, 1), probe.nominal_rows
        )
        return OperatorResult(
            TidSet(tables),
            actual_rows=len(probe_idx),
            nominal_rows=nominal,
            row_width_bytes=TID_BYTES * len(tables),
        )
