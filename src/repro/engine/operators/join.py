"""Hash join."""

from __future__ import annotations

from typing import List, Set

import numpy as np

from repro.engine.expressions import ColumnRef
from repro.engine.intermediates import OperatorResult, TidSet
from repro.engine.operators.base import (
    PhysicalOperator,
    TID_BYTES,
    scaled_nominal_rows,
)
from repro.storage import Database


def _expand_matches(left_values: np.ndarray, right_values: np.ndarray):
    """Vectorised inner equi-join on value arrays.

    Returns aligned index arrays ``(left_idx, right_idx)`` covering
    every matching pair, including 1:N matches on the build side.
    """
    order = np.argsort(right_values, kind="stable")
    sorted_right = right_values[order]
    lo = np.searchsorted(sorted_right, left_values, side="left")
    hi = np.searchsorted(sorted_right, left_values, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    left_idx = np.repeat(np.arange(len(left_values), dtype=np.int64), counts)
    starts = np.repeat(lo, counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    right_idx = order[starts + offsets]
    return left_idx, right_idx


class HashJoin(PhysicalOperator):
    """Inner equi-join of two TidSet children.

    The left child is the probe side (usually the fact-table lineage),
    the right child the build side (usually a filtered dimension).  The
    output TidSet aligns the positions of every base table reachable
    from either side.
    """

    kind = "join"

    def __init__(
        self,
        probe: PhysicalOperator,
        build: PhysicalOperator,
        probe_key: ColumnRef,
        build_key: ColumnRef,
        label: str = "",
    ):
        super().__init__(
            children=[probe, build],
            label=label or "Join({}={})".format(probe_key.key, build_key.key),
        )
        self.probe_key = probe_key
        self.build_key = build_key

    def state_key(self):
        return (self.probe_key.key, self.build_key.key)

    def required_columns(self) -> Set[str]:
        return {self.probe_key.key, self.build_key.key}

    def input_nominal_bytes(self, database: Database,
                            child_results: List[OperatorResult]) -> int:
        probe, build = child_results
        key_width = database.column(self.probe_key.key).ctype.itemsize
        probe_bytes = probe.nominal_rows * (TID_BYTES + key_width)
        build_bytes = build.nominal_rows * (TID_BYTES + key_width)
        return max(probe_bytes + build_bytes, TID_BYTES)

    def estimate_input_nominal_bytes(self, database: Database) -> int:
        probe_rows = database.table(self.probe_key.table).nominal_rows
        build_rows = database.table(self.build_key.table).nominal_rows
        key_width = database.column(self.probe_key.key).ctype.itemsize
        return (probe_rows + build_rows) * (TID_BYTES + key_width)

    def device_footprint_bytes(self, profile, database, child_results) -> int:
        """Hash-join working memory: the hash table over the build side
        plus output buffers sized by the streamed probe side."""
        probe, build = child_results
        key_width = database.column(self.build_key.key).ctype.itemsize
        build_bytes = build.nominal_rows * (TID_BYTES + key_width)
        probe_bytes = probe.nominal_rows * (TID_BYTES + key_width)
        return int(2.0 * build_bytes + 0.5 * probe_bytes)

    def run(self, database: Database,
            child_results: List[OperatorResult]) -> OperatorResult:
        probe, build = child_results
        probe_tids = probe.payload.positions(self.probe_key.table)
        build_tids = build.payload.positions(self.build_key.table)
        probe_values = database.column(self.probe_key.key).gather(probe_tids)
        build_values = database.column(self.build_key.key).gather(build_tids)
        probe_idx, build_idx = _expand_matches(probe_values, build_values)

        tables = {}
        for name, tids in probe.payload.tables.items():
            tables[name] = tids[probe_idx]
        for name, tids in build.payload.tables.items():
            if name in tables:
                raise ValueError(
                    "table {} appears on both join sides".format(name)
                )
            tables[name] = tids[build_idx]

        nominal = scaled_nominal_rows(
            len(probe_idx), max(probe.actual_rows, 1), probe.nominal_rows
        )
        return OperatorResult(
            TidSet(tables),
            actual_rows=len(probe_idx),
            nominal_rows=nominal,
            row_width_bytes=TID_BYTES * len(tables),
        )
