"""Materialisation of selected columns."""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from repro.engine.expressions import ColumnRef, Expression
from repro.engine.frame import Frame
from repro.engine.intermediates import OperatorResult, ResultFrame, TidSet
from repro.engine.operators.base import PhysicalOperator, TID_BYTES
from repro.storage import ColumnType, Database


class Materialize(PhysicalOperator):
    """Gather output columns for a TidSet child (final projection).

    ``items`` is a list of ``(alias, expression)`` pairs; plain column
    references keep their dictionaries so strings decode.
    """

    kind = "projection"
    #: result delivery gathers arbitrary output columns on the host;
    #: CoGaDB materialises final results in host memory.
    cpu_only = True

    def __init__(self, child: PhysicalOperator,
                 items: List[Tuple[str, Expression]], label: str = ""):
        if not items:
            raise ValueError("materialisation needs at least one item")
        super().__init__(children=[child], label=label or "Materialize")
        self.items = list(items)

    def state_key(self):
        return (tuple((alias, expr.to_sql()) for alias, expr in self.items),)

    def required_columns(self) -> Set[str]:
        keys: Set[str] = set()
        for _, expr in self.items:
            keys |= expr.columns()
        return keys

    def input_nominal_bytes(self, database: Database,
                            child_results: List[OperatorResult]) -> int:
        (child,) = child_results
        width = sum(
            database.column(key).ctype.itemsize for key in self.required_columns()
        ) or TID_BYTES
        return max(child.nominal_rows * width, TID_BYTES)

    def run(self, database: Database,
            child_results: List[OperatorResult]) -> OperatorResult:
        (child,) = child_results
        payload = child.payload
        if not isinstance(payload, TidSet):
            raise TypeError("Materialize expects a TidSet input")
        frame = Frame(database, payload.tables)
        columns: Dict[str, np.ndarray] = {}
        dictionaries: Dict[str, list] = {}
        gathered: Dict[str, np.ndarray] = {}
        for alias, expr in self.items:
            if isinstance(expr, ColumnRef):
                # Aliases projecting the same base column share one
                # gathered array (results are read-only downstream).
                array = gathered.get(expr.key)
                if array is None:
                    array = np.asarray(expr.evaluate(frame))
                    gathered[expr.key] = array
                columns[alias] = array
                meta = database.column(expr.key)
                if meta.ctype is ColumnType.STRING:
                    dictionaries[alias] = meta.dictionary
            else:
                columns[alias] = np.asarray(expr.evaluate(frame))
        frame_out = ResultFrame(columns, dictionaries)
        return OperatorResult(
            frame_out,
            actual_rows=len(frame_out),
            nominal_rows=child.nominal_rows,
            row_width_bytes=frame_out.width_bytes,
        )
