"""Physical operators.

Every operator declares

* ``kind`` — the cost-model key (selection, join, groupby, ...),
* ``required_columns()`` — the base columns it reads (drives data-driven
  placement and the access statistics),
* ``input_nominal_bytes()`` — paper-scale input volume for costing,
* ``run()`` — the functional numpy implementation.
"""

from repro.engine.operators.base import PhysicalOperator, PhysicalPlan
from repro.engine.operators.scan import RefineSelect, ScanSelect, TidIntersect
from repro.engine.operators.join import HashJoin
from repro.engine.operators.aggregate import GroupByAggregate
from repro.engine.operators.materialize import Materialize
from repro.engine.operators.frame_ops import Distinct, FrameFilter
from repro.engine.operators.sort import Limit, Sort

__all__ = [
    "Distinct",
    "FrameFilter",
    "GroupByAggregate",
    "HashJoin",
    "Limit",
    "Materialize",
    "PhysicalOperator",
    "PhysicalPlan",
    "RefineSelect",
    "ScanSelect",
    "Sort",
    "TidIntersect",
]
