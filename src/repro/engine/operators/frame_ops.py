"""Operators over materialised frames: DISTINCT and HAVING."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.engine.expressions import Expression
from repro.engine.intermediates import OperatorResult, ResultFrame
from repro.engine.operators.base import PhysicalOperator, TID_BYTES
from repro.storage import Database


def _row_groups(frame: ResultFrame) -> np.ndarray:
    """Compact group id per row over all columns of the frame."""
    n = len(frame)
    key = np.zeros(n, dtype=np.int64)
    for array in frame.columns.values():
        _, inverse = np.unique(array, return_inverse=True)
        combined = key * (int(inverse.max()) + 1 if n else 1) + inverse
        _, key = np.unique(combined, return_inverse=True)
    return key


class Distinct(PhysicalOperator):
    """Duplicate elimination over a ResultFrame (SELECT DISTINCT).

    Keeps the first occurrence of every distinct row, in input order.
    """

    kind = "groupby"

    def __init__(self, child: PhysicalOperator, label: str = ""):
        super().__init__(children=[child], label=label or "Distinct")

    def state_key(self):
        return ()

    def input_nominal_bytes(self, database: Database,
                            child_results: List[OperatorResult]) -> int:
        (child,) = child_results
        return max(child.nominal_bytes, TID_BYTES)

    def run(self, database: Database,
            child_results: List[OperatorResult]) -> OperatorResult:
        (child,) = child_results
        frame = child.payload
        if not isinstance(frame, ResultFrame):
            raise TypeError("Distinct expects a ResultFrame input")
        if len(frame) == 0:
            keep = np.empty(0, dtype=np.int64)
        else:
            key = _row_groups(frame)
            _, first = np.unique(key, return_index=True)
            keep = np.sort(first)
        columns = {name: arr[keep] for name, arr in frame.columns.items()}
        deduped = ResultFrame(columns, frame.dictionaries)
        ratio = len(deduped) / max(len(frame), 1)
        return OperatorResult(
            deduped,
            actual_rows=len(deduped),
            nominal_rows=int(round(child.nominal_rows * ratio)),
            row_width_bytes=deduped.width_bytes,
        )


class _FrameResolver:
    """Adapter letting expressions read a ResultFrame's columns.

    HAVING predicates reference *output* columns (aggregate aliases or
    group columns); column keys are bare names with an empty table part.
    """

    def __init__(self, frame: ResultFrame):
        self._frame = frame

    def array(self, key: str):
        name = key.partition(".")[2] or key
        return self._frame.column(name)

    def column_meta(self, key: str):
        raise TypeError(
            "string-dictionary predicates are not supported in HAVING"
        )


class FrameFilter(PhysicalOperator):
    """Filter a ResultFrame by a predicate over its columns (HAVING)."""

    kind = "selection"

    def __init__(self, child: PhysicalOperator, predicate: Expression,
                 label: str = ""):
        super().__init__(children=[child], label=label or "Having")
        self.predicate = predicate

    def state_key(self):
        return (self.predicate.to_sql(),)

    def input_nominal_bytes(self, database: Database,
                            child_results: List[OperatorResult]) -> int:
        (child,) = child_results
        return max(child.nominal_bytes, TID_BYTES)

    def run(self, database: Database,
            child_results: List[OperatorResult]) -> OperatorResult:
        (child,) = child_results
        frame = child.payload
        if not isinstance(frame, ResultFrame):
            raise TypeError("FrameFilter expects a ResultFrame input")
        mask = np.asarray(
            self.predicate.evaluate(_FrameResolver(frame)), dtype=bool
        )
        columns = {name: arr[mask] for name, arr in frame.columns.items()}
        filtered = ResultFrame(columns, frame.dictionaries)
        ratio = len(filtered) / max(len(frame), 1)
        return OperatorResult(
            filtered,
            actual_rows=len(filtered),
            nominal_rows=int(round(child.nominal_rows * ratio)),
            row_width_bytes=filtered.width_bytes,
        )
