"""Group-by aggregation."""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro.engine.expressions import Aggregate, ColumnRef
from repro.engine.frame import Frame
from repro.engine.intermediates import OperatorResult, ResultFrame, TidSet
from repro.engine.operators.base import PhysicalOperator, TID_BYTES
from repro.storage import ColumnType, Database


class GroupByAggregate(PhysicalOperator):
    """Hash aggregation over a TidSet child.

    Computes ``aggregates`` grouped by ``group_refs`` (possibly empty
    for a scalar aggregate).  Output is a materialised
    :class:`ResultFrame` whose group columns keep their dictionaries so
    string groups decode correctly.
    """

    kind = "groupby"

    def __init__(
        self,
        child: PhysicalOperator,
        group_refs: List[ColumnRef],
        aggregates: List[Aggregate],
        label: str = "",
    ):
        if not aggregates and not group_refs:
            raise ValueError("aggregation needs group columns or aggregates")
        super().__init__(children=[child], label=label or "GroupBy")
        self.group_refs = list(group_refs)
        self.aggregates = list(aggregates)

    def state_key(self):
        return (
            tuple(ref.key for ref in self.group_refs),
            tuple(agg.to_sql() for agg in self.aggregates),
        )

    def required_columns(self) -> Set[str]:
        keys: Set[str] = set()
        for ref in self.group_refs:
            keys.add(ref.key)
        for aggregate in self.aggregates:
            keys |= aggregate.columns()
        return keys

    def input_nominal_bytes(self, database: Database,
                            child_results: List[OperatorResult]) -> int:
        (child,) = child_results
        width = TID_BYTES * (len(self.group_refs) + max(len(self.aggregates), 1))
        return max(child.nominal_rows * width, TID_BYTES)

    def estimate_input_nominal_bytes(self, database: Database) -> int:
        if isinstance(self.children[0], PhysicalOperator):
            child_estimate = self.children[0].estimate_input_nominal_bytes(database)
        else:
            child_estimate = TID_BYTES
        return child_estimate

    def run(self, database: Database,
            child_results: List[OperatorResult]) -> OperatorResult:
        (child,) = child_results
        payload = child.payload
        if isinstance(payload, TidSet):
            frame = Frame(database, payload.tables)
            n_rows = len(payload)
        else:
            raise TypeError("GroupByAggregate expects a TidSet input")

        columns: Dict[str, np.ndarray] = {}
        dictionaries: Dict[str, list] = {}

        if self.group_refs:
            group_arrays = [
                np.asarray(ref.evaluate(frame)) for ref in self.group_refs
            ]
            if len(group_arrays) == 1:
                # Single-key grouping skips the row-matrix stack; the
                # 1-D unique yields the same sorted groups and inverse.
                uniques, inverse = np.unique(
                    group_arrays[0], return_inverse=True
                )
                group_columns = [uniques.astype(group_arrays[0].dtype)]
            else:
                stacked = np.stack(group_arrays, axis=1)
                uniques, inverse = np.unique(
                    stacked, axis=0, return_inverse=True
                )
                group_columns = [
                    uniques[:, i].astype(group_arrays[i].dtype)
                    for i in range(len(group_arrays))
                ]
            n_groups = len(uniques)
            for i, ref in enumerate(self.group_refs):
                name = ref.name
                columns[name] = group_columns[i]
                meta = database.column(ref.key)
                if meta.ctype is ColumnType.STRING:
                    dictionaries[name] = meta.dictionary
        else:
            inverse = np.zeros(n_rows, dtype=np.int64)
            n_groups = 1 if n_rows > 0 else 1

        for aggregate in self.aggregates:
            columns[aggregate.alias] = self._aggregate(
                aggregate, frame, inverse, n_groups, n_rows
            )

        frame_out = ResultFrame(columns, dictionaries)
        return OperatorResult(
            frame_out,
            actual_rows=len(frame_out),
            nominal_rows=len(frame_out),
            row_width_bytes=frame_out.width_bytes,
        )

    @staticmethod
    def _aggregate(aggregate: Aggregate, frame: Frame, inverse: np.ndarray,
                   n_groups: int, n_rows: int) -> np.ndarray:
        """Evaluate one aggregate over the grouped rows."""
        if aggregate.func == "count":
            counts = np.bincount(inverse, minlength=n_groups)
            return counts.astype(np.int64)
        values = np.asarray(aggregate.expr.evaluate(frame))
        if values.dtype == np.int32:
            values = values.astype(np.int64)
        if aggregate.func == "sum":
            sums = np.bincount(inverse, weights=values, minlength=n_groups)
            if np.issubdtype(values.dtype, np.integer):
                return np.round(sums).astype(np.int64)
            return sums
        if aggregate.func == "avg":
            sums = np.bincount(inverse, weights=values, minlength=n_groups)
            counts = np.maximum(np.bincount(inverse, minlength=n_groups), 1)
            return sums / counts
        # min / max via ufunc.at; empty groups yield 0 (no NULLs in
        # this engine, matching the reference evaluator's convention)
        if aggregate.func == "min":
            out = np.full(n_groups, np.inf)
            np.minimum.at(out, inverse, values)
        else:
            out = np.full(n_groups, -np.inf)
            np.maximum.at(out, inverse, values)
        finite = np.isfinite(out)
        if np.issubdtype(values.dtype, np.integer):
            result = np.zeros(n_groups, dtype=np.int64)
            result[finite] = out[finite].astype(np.int64)
            return result
        out[~finite] = 0.0
        return out
