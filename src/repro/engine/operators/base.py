"""Operator and plan base classes."""

from __future__ import annotations

import itertools
from typing import List, Optional, Set, Tuple

from repro.engine import plan_cache
from repro.engine.intermediates import OperatorResult
from repro.storage import Database

#: 32-bit OIDs, as CoGaDB/MonetDB configure them in the paper's setup.
TID_BYTES = 4

_op_counter = itertools.count(1)


class PhysicalOperator:
    """A node in a physical query plan.

    Operators form a tree; children produce fully materialised
    :class:`OperatorResult` instances before the parent runs
    (operator-at-a-time execution).
    """

    #: cost model key; subclasses override
    kind = "scan"
    #: operators that must run on the host (e.g. final result delivery)
    cpu_only = False

    def __init__(self, children: Optional[List["PhysicalOperator"]] = None,
                 label: str = ""):
        self.children: List[PhysicalOperator] = list(children or [])
        self.op_id = next(_op_counter)
        self.label = label or type(self).__name__
        #: compile-time processor assignment ("cpu"/"gpu"); None means
        #: the executor decides at run time
        self.placement: Optional[str] = None
        #: memoised functional result (payload, actual, nominal, width);
        #: repeated workload executions reuse the numpy work while the
        #: simulation still models every timing aspect independently
        self._cached_result = None
        #: lazily computed structural fingerprint (see :meth:`fingerprint`);
        #: ``False`` marks an operator the cross-plan cache cannot key
        self._fingerprint = None
        #: set when the operator joins a PhysicalPlan (used by tracing)
        self.plan_name = "query"

    def __repr__(self) -> str:
        return "<{} #{} kind={} on={}>".format(
            self.label, self.op_id, self.kind, self.placement or "?"
        )

    # -- interface ------------------------------------------------------

    def required_columns(self) -> Set[str]:
        """Base column keys this operator reads directly."""
        return set()

    def input_nominal_bytes(self, database: Database,
                            child_results: List[OperatorResult]) -> int:
        """Paper-scale input volume (drives compute cost and footprint)."""
        raise NotImplementedError

    def estimate_input_nominal_bytes(self, database: Database) -> int:
        """Compile-time estimate of the input volume (no results yet).

        Used by compile-time placement heuristics; the default walks
        required columns and assumes full scans.
        """
        return sum(
            database.column(key).nominal_bytes for key in self.required_columns()
        ) or TID_BYTES

    def run(self, database: Database,
            child_results: List[OperatorResult]) -> OperatorResult:
        """Functional execution with numpy."""
        raise NotImplementedError

    def device_footprint_bytes(self, profile, database: Database,
                               child_results: List[OperatorResult]) -> int:
        """Device heap demand when executing on the co-processor.

        Defaults to the profile's per-kind factor over the input
        volume; operators with different working-memory shapes (hash
        joins) override this.
        """
        return profile.footprint_bytes(
            self.kind, self.input_nominal_bytes(database, child_results)
        )

    def state_key(self) -> Optional[Tuple]:
        """Stable tuple of every parameter that shapes :meth:`run`'s output.

        Subclasses whose functional result is fully determined by the
        database, their children, and these parameters override this;
        returning ``None`` (the default) opts the operator out of the
        cross-plan result cache — only the per-template memoisation via
        ``_cached_result`` applies then.
        """
        return None

    def fingerprint(self) -> Optional[Tuple]:
        """Structural identity of this subplan (or None).

        Two operators with equal fingerprints over the same database
        produce identical functional results, no matter which query —
        or which run — they belong to.  Cached on the instance; clones
        share it (``copy.copy`` carries the attribute over).
        """
        cached = self._fingerprint
        if cached is not None:
            return cached if cached is not False else None
        key = self.state_key()
        if key is None:
            self._fingerprint = False
            return None
        child_prints = []
        for child in self.children:
            child_print = child.fingerprint()
            if child_print is None:
                self._fingerprint = False
                return None
            child_prints.append(child_print)
        fp = (type(self).__name__, key, tuple(child_prints))
        self._fingerprint = fp
        return fp

    def produce(self, database: Database,
                child_results: List[OperatorResult]) -> OperatorResult:
        """Run, or rebuild a fresh result from a memoised payload.

        Lookup order: the per-template memo (shared between a template
        plan and its clones), then the cross-plan fingerprint cache
        (shared between queries and runs on the same database).
        """
        cached = self._cached_result
        if cached is None:
            cached = plan_cache.lookup(database, self.fingerprint())
            if cached is not None:
                self._cached_result = cached
        if cached is not None:
            payload, actual_rows, nominal_rows, width = cached
            return OperatorResult(payload, actual_rows, nominal_rows, width)
        result = self.run(database, child_results)
        cached = (
            result.payload,
            result.actual_rows,
            result.nominal_rows,
            result.row_width_bytes,
        )
        self._cached_result = cached
        plan_cache.store(database, self.fingerprint(), cached)
        return result

    # -- traversal --------------------------------------------------------

    def walk(self):
        """Yield the subtree in post order (children before parents)."""
        for child in self.children:
            for node in child.walk():
                yield node
        yield self


class PhysicalPlan:
    """A physical plan: a root operator plus metadata."""

    def __init__(self, root: PhysicalOperator, name: str = "query"):
        self.root = root
        self.name = name
        for op in root.walk():
            op.plan_name = name

    @property
    def operators(self) -> List[PhysicalOperator]:
        """All operators in post order."""
        return list(self.root.walk())

    @property
    def leaves(self) -> List[PhysicalOperator]:
        return [op for op in self.operators if not op.children]

    def required_columns(self) -> Set[str]:
        keys: Set[str] = set()
        for op in self.operators:
            keys |= op.required_columns()
        return keys

    def assign_all(self, processor_name: str) -> None:
        """Fix every operator's placement (compile-time strategies)."""
        for op in self.operators:
            op.placement = processor_name

    def explain(self) -> str:
        """Human-readable plan tree with placements and cached sizes.

        Placements show as ``?`` until a compile-time strategy assigned
        them (run-time strategies decide during execution).
        """
        lines = []

        def render(op: PhysicalOperator, indent: int) -> None:
            size = ""
            if op._cached_result is not None:
                _, actual_rows, nominal_rows, width = op._cached_result
                size = " rows={} nominal={}B".format(
                    actual_rows, nominal_rows * width
                )
            lines.append("{}{} [{} on {}]{}".format(
                "  " * indent, op.label, op.kind, op.placement or "?", size
            ))
            for child in op.children:
                render(child, indent + 1)

        render(self.root, 0)
        return "\n".join(lines)

    def clone(self) -> "PhysicalPlan":
        """Fresh operator instances for one execution.

        Placement and per-execution state are reset; immutable pieces
        (predicates, memoised result payloads) are shared.
        """
        import copy

        def clone_tree(op: PhysicalOperator) -> PhysicalOperator:
            twin = copy.copy(op)
            twin.op_id = next(_op_counter)
            twin.placement = None
            twin.children = [clone_tree(child) for child in op.children]
            return twin

        return PhysicalPlan(clone_tree(self.root), name=self.name)

    def __repr__(self) -> str:
        return "<PhysicalPlan {} ops={}>".format(self.name, len(self.operators))


def scaled_nominal_rows(actual_out: int, actual_in: int, nominal_in: int) -> int:
    """Scale an output cardinality from actual to nominal data size.

    Intermediate sizes at paper scale follow the selectivity observed on
    the reduced actual data.
    """
    if actual_in <= 0:
        return 0
    return int(round(actual_out / actual_in * nominal_in))
