"""Selection operators."""

from __future__ import annotations

from typing import List, Optional, Set

import numpy as np

from repro.engine import kernels
from repro.engine.expressions import Expression
from repro.engine.frame import Frame
from repro.engine.intermediates import OperatorResult, SelectionVector, TidSet
from repro.engine.operators.base import (
    PhysicalOperator,
    TID_BYTES,
    scaled_nominal_rows,
)
from repro.storage import Database


class ScanSelect(PhysicalOperator):
    """Scan a base table, returning the row positions matching a predicate.

    With ``predicate=None`` this is a plain scan producing all tids.
    This is the leaf operator of every plan: CoGaDB's pushed-down
    selections, modelled after the GPU selection of He et al. with its
    3.25x input heap footprint.
    """

    kind = "selection"

    def __init__(self, table: str, predicate: Optional[Expression] = None,
                 label: str = ""):
        super().__init__(children=[], label=label or "Scan({})".format(table))
        self.table = table
        self.predicate = predicate

    def state_key(self):
        return (self.table,
                self.predicate.to_sql() if self.predicate else None)

    def required_columns(self) -> Set[str]:
        if self.predicate is None:
            return set()
        return self.predicate.columns()

    def input_nominal_bytes(self, database: Database,
                            child_results: List[OperatorResult]) -> int:
        return self.estimate_input_nominal_bytes(database)

    def estimate_input_nominal_bytes(self, database: Database) -> int:
        scanned = sum(
            database.column(key).nominal_bytes for key in self.required_columns()
        )
        if scanned:
            return scanned
        # A scan without predicate is a pure metadata operation (the
        # column store reads base columns in place, no tid list is
        # materialised).
        return TID_BYTES

    def run(self, database: Database,
            child_results: List[OperatorResult]) -> OperatorResult:
        table = database.table(self.table)
        cache = kernels.cache_for(database)
        if self.predicate is None:
            if cache is not None:
                entry = SelectionVector(n=table.actual_rows)
            else:
                entry = np.arange(table.actual_rows, dtype=np.int64)
            # No materialised intermediate: downstream operators read
            # the base columns directly.
            return OperatorResult(
                TidSet({self.table: entry}),
                actual_rows=table.actual_rows,
                nominal_rows=table.nominal_rows,
                row_width_bytes=0,
            )
        if cache is not None:
            mask = kernels.scan_mask(database, self.table, self.predicate,
                                     cache)
            if mask is None:
                mask = np.asarray(
                    self.predicate.evaluate(Frame(database)), dtype=bool
                )
            entry = SelectionVector(mask)
            n_out = len(entry)
        else:
            mask = self.predicate.evaluate(Frame(database))
            entry = np.flatnonzero(mask)
            n_out = len(entry)
        nominal = scaled_nominal_rows(n_out, table.actual_rows,
                                      table.nominal_rows)
        return OperatorResult(
            TidSet({self.table: entry}),
            actual_rows=n_out,
            nominal_rows=nominal,
            row_width_bytes=TID_BYTES,
        )


class RefineSelect(PhysicalOperator):
    """Refine a tid list with a further predicate on the same table.

    CoGaDB evaluates conjunctive selections as a chain of operators —
    the parallel selection workload of Appendix B.2 is exactly such a
    chain ("four different operators executed consecutively").  The
    refine step gathers the predicate columns at the input positions,
    so its footprint is proportional to the *intermediate* size, not
    the base column.
    """

    kind = "selection"

    def __init__(self, child: PhysicalOperator, table: str,
                 predicate: Expression, label: str = ""):
        super().__init__(children=[child],
                         label=label or "Refine({})".format(table))
        self.table = table
        self.predicate = predicate

    def state_key(self):
        return (self.table, self.predicate.to_sql())

    def required_columns(self) -> Set[str]:
        return self.predicate.columns()

    def input_nominal_bytes(self, database: Database,
                            child_results: List[OperatorResult]) -> int:
        (child,) = child_results
        width = TID_BYTES + sum(
            database.column(key).ctype.itemsize for key in self.required_columns()
        )
        return max(child.nominal_rows * width, TID_BYTES)

    def estimate_input_nominal_bytes(self, database: Database) -> int:
        table_rows = database.table(self.table).nominal_rows
        width = TID_BYTES + sum(
            database.column(key).ctype.itemsize for key in self.required_columns()
        )
        return table_rows * width

    def run(self, database: Database,
            child_results: List[OperatorResult]) -> OperatorResult:
        (child,) = child_results
        selection = child.payload.selection(self.table)
        if selection is not None and kernels.enabled():
            # Lazy path: evaluate the predicate over the full column
            # (elementwise, so restriction commutes with evaluation)
            # and AND the masks — no gather, no flatnonzero.
            kernels.stats["masked_refines"] += 1
            mask = np.asarray(
                self.predicate.evaluate(Frame(database)), dtype=bool
            )
            if selection.mask is not None:
                mask = selection.mask & mask
            entry = SelectionVector(mask)
            n_out = len(entry)
        else:
            tids = child.payload.positions(self.table)
            frame = Frame(database, {self.table: tids})
            mask = self.predicate.evaluate(frame)
            entry = tids[np.flatnonzero(mask)]
            n_out = len(entry)
        nominal = scaled_nominal_rows(
            n_out, max(child.actual_rows, 1), child.nominal_rows
        )
        return OperatorResult(
            TidSet({self.table: entry}),
            actual_rows=n_out,
            nominal_rows=nominal,
            row_width_bytes=TID_BYTES,
        )


class TidIntersect(PhysicalOperator):
    """Positional AND of two tid lists over the same table.

    Used by the micro benchmarks (Appendix B.2), where one query is a
    chain of single-column selections combined positionally — the
    paper's "four different operators executed consecutively".
    """

    kind = "selection"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator,
                 table: str, label: str = ""):
        super().__init__(children=[left, right],
                         label=label or "TidAnd({})".format(table))
        self.table = table

    def state_key(self):
        return (self.table,)

    def input_nominal_bytes(self, database: Database,
                            child_results: List[OperatorResult]) -> int:
        return sum(r.nominal_bytes for r in child_results) or TID_BYTES

    def run(self, database: Database,
            child_results: List[OperatorResult]) -> OperatorResult:
        left, right = child_results
        left_sel = left.payload.selection(self.table)
        right_sel = right.payload.selection(self.table)
        if left_sel is not None and right_sel is not None and kernels.enabled():
            kernels.stats["masked_intersects"] += 1
            if left_sel.mask is None:
                entry = right_sel
            elif right_sel.mask is None:
                entry = left_sel
            else:
                entry = SelectionVector(left_sel.mask & right_sel.mask)
            n_out = len(entry)
        else:
            left_tids = left.payload.positions(self.table)
            right_tids = right.payload.positions(self.table)
            entry = np.intersect1d(left_tids, right_tids, assume_unique=True)
            n_out = len(entry)
        nominal = scaled_nominal_rows(
            n_out,
            max(left.actual_rows, 1),
            max(left.nominal_rows, right.nominal_rows),
        )
        return OperatorResult(
            TidSet({self.table: entry}),
            actual_rows=n_out,
            nominal_rows=nominal,
            row_width_bytes=TID_BYTES,
        )
