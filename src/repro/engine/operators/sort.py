"""Sorting and limiting of materialised frames."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.engine.intermediates import OperatorResult, ResultFrame
from repro.engine.operators.base import PhysicalOperator, TID_BYTES
from repro.storage import Database


class Sort(PhysicalOperator):
    """Sort a ResultFrame by one or more keys.

    ``keys`` is a list of ``(column_name, ascending)`` pairs, highest
    priority first.  Dictionary-encoded columns sort correctly because
    the dictionaries are order-preserving.
    """

    kind = "sort"

    def __init__(self, child: PhysicalOperator,
                 keys: List[Tuple[str, bool]], label: str = ""):
        if not keys:
            raise ValueError("sort needs at least one key")
        super().__init__(children=[child], label=label or "Sort")
        self.keys = list(keys)

    def state_key(self):
        return (tuple((name, bool(asc)) for name, asc in self.keys),)

    def input_nominal_bytes(self, database: Database,
                            child_results: List[OperatorResult]) -> int:
        (child,) = child_results
        return max(child.nominal_bytes, TID_BYTES)

    def run(self, database: Database,
            child_results: List[OperatorResult]) -> OperatorResult:
        (child,) = child_results
        frame = child.payload
        if not isinstance(frame, ResultFrame):
            raise TypeError("Sort expects a ResultFrame input")
        # np.lexsort sorts by the *last* key first.
        sort_arrays = []
        for name, ascending in reversed(self.keys):
            values = frame.column(name)
            if ascending:
                sort_arrays.append(values)
            elif values.dtype.kind in "iu":
                # Exact integer negation: descending int64 keys beyond
                # 2^53 must not collapse into float64 ties.
                sort_arrays.append(-values.astype(np.int64))
            else:
                sort_arrays.append(-values.astype(np.float64))
        order = np.lexsort(sort_arrays) if sort_arrays else np.arange(len(frame))
        columns = {name: arr[order] for name, arr in frame.columns.items()}
        sorted_frame = ResultFrame(columns, frame.dictionaries)
        return OperatorResult(
            sorted_frame,
            actual_rows=len(sorted_frame),
            nominal_rows=child.nominal_rows,
            row_width_bytes=sorted_frame.width_bytes,
        )


class Limit(PhysicalOperator):
    """Keep the first ``n`` rows of a ResultFrame."""

    kind = "limit"

    def __init__(self, child: PhysicalOperator, n: int, label: str = ""):
        if n < 0:
            raise ValueError("limit must be >= 0")
        super().__init__(children=[child], label=label or "Limit({})".format(n))
        self.n = n

    def state_key(self):
        return (self.n,)

    def input_nominal_bytes(self, database: Database,
                            child_results: List[OperatorResult]) -> int:
        (child,) = child_results
        return max(child.nominal_bytes, TID_BYTES)

    def run(self, database: Database,
            child_results: List[OperatorResult]) -> OperatorResult:
        (child,) = child_results
        frame = child.payload
        if not isinstance(frame, ResultFrame):
            raise TypeError("Limit expects a ResultFrame input")
        columns = {name: arr[: self.n] for name, arr in frame.columns.items()}
        limited = ResultFrame(columns, frame.dictionaries)
        return OperatorResult(
            limited,
            actual_rows=len(limited),
            nominal_rows=min(child.nominal_rows, self.n),
            row_width_bytes=limited.width_bytes,
        )
