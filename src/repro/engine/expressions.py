"""Scalar and predicate expressions.

Expressions are evaluated vectorised over a :class:`~repro.engine.frame.Frame`
(a mapping from column keys to numpy arrays).  String literals are
resolved against the referenced column's order-preserving dictionary,
so comparisons and ranges work directly on int32 codes.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Union

import numpy as np

from repro.storage import Column, ColumnType

#: Comparison operators in SQL spelling.
COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")
#: Arithmetic operators.
ARITHMETIC_OPS = ("+", "-", "*", "/")


class Expression:
    """Base class for all expressions."""

    def columns(self) -> Set[str]:
        """Keys of every base column the expression reads."""
        raise NotImplementedError

    def evaluate(self, frame) -> np.ndarray:
        """Vectorised evaluation over a frame."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return "<{} {}>".format(type(self).__name__, self.to_sql())

    def to_sql(self) -> str:
        raise NotImplementedError


class ColumnRef(Expression):
    """Reference to ``table.column``."""

    def __init__(self, table: str, name: str):
        self.table = table
        self.name = name

    @property
    def key(self) -> str:
        return "{}.{}".format(self.table, self.name)

    def columns(self) -> Set[str]:
        return {self.key}

    def evaluate(self, frame) -> np.ndarray:
        return frame.array(self.key)

    def to_sql(self) -> str:
        return self.key

    def __eq__(self, other) -> bool:
        return isinstance(other, ColumnRef) and other.key == self.key

    def __hash__(self) -> int:
        return hash(("columnref", self.key))


class Literal(Expression):
    """A constant (number or string)."""

    def __init__(self, value: Union[int, float, str]):
        self.value = value

    def columns(self) -> Set[str]:
        return set()

    def evaluate(self, frame):
        return self.value

    def to_sql(self) -> str:
        if isinstance(self.value, str):
            return "'{}'".format(self.value)
        return str(self.value)


class Arithmetic(Expression):
    """Binary arithmetic over numeric expressions."""

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in ARITHMETIC_OPS:
            raise ValueError("unknown arithmetic operator {!r}".format(op))
        self.op = op
        self.left = left
        self.right = right

    def columns(self) -> Set[str]:
        return self.left.columns() | self.right.columns()

    def evaluate(self, frame):
        left = self.left.evaluate(frame)
        right = self.right.evaluate(frame)
        if self.op == "+":
            return left + right
        if self.op == "-":
            return left - right
        if self.op == "*":
            # Promote to int64/float to avoid overflow of int32 products
            # (revenue = extendedprice * discount easily overflows).
            left = _widen(left)
            right = _widen(right)
            return left * right
        return _widen(left) / _widen(right)

    def to_sql(self) -> str:
        return "({} {} {})".format(self.left.to_sql(), self.op, self.right.to_sql())


def _widen(value):
    """Promote int32 arrays to int64 before multiplying/dividing."""
    if isinstance(value, np.ndarray) and value.dtype == np.int32:
        return value.astype(np.int64)
    return value


def _encode_literal(ref: ColumnRef, literal, frame, op: str):
    """Translate a string literal to a dictionary code for ``ref``."""
    if not isinstance(literal, str):
        return literal
    column = frame.column_meta(ref.key)
    if column.ctype is not ColumnType.STRING:
        raise TypeError(
            "string literal compared against non-string column {}".format(ref.key)
        )
    if op in ("=", "<>"):
        code = column.encode(literal)
        return code  # -1 selects nothing for '=', everything for '<>'
    if op in ("<", "<="):
        # x <  s  <=>  code(x) <= ub(s') ... express via bounds:
        # x <= s  <=>  code(x) <= upper_bound(s)
        # x <  s  <=>  code(x) <  lower_bound(s) is wrong for absent s;
        # use: x < s <=> code(x) <= lower_bound(s) - 1
        if op == "<=":
            return column.encode_upper_bound(literal)
        return column.encode_lower_bound(literal) - 1
    if op in (">", ">="):
        if op == ">=":
            return column.encode_lower_bound(literal)
        return column.encode_upper_bound(literal) + 1
    raise ValueError("unsupported operator {!r} for string literal".format(op))


class Comparison(Expression):
    """``left op right`` where op is one of ``=, <>, <, <=, >, >=``."""

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in COMPARISON_OPS:
            raise ValueError("unknown comparison operator {!r}".format(op))
        self.op = op
        self.left = left
        self.right = right

    def columns(self) -> Set[str]:
        return self.left.columns() | self.right.columns()

    @property
    def is_join_predicate(self) -> bool:
        """True for column = column across two tables."""
        return (
            self.op == "="
            and isinstance(self.left, ColumnRef)
            and isinstance(self.right, ColumnRef)
            and self.left.table != self.right.table
        )

    def evaluate(self, frame) -> np.ndarray:
        left = self.left.evaluate(frame)
        right = self.right.evaluate(frame)
        op = self.op
        # String literals: rewrite against the dictionary.  After the
        # rewrite, <= / >= semantics capture < / > correctly.
        if isinstance(self.left, ColumnRef) and isinstance(right, str):
            right = _encode_literal(self.left, right, frame, op)
            if op == "<":
                op = "<="
            elif op == ">":
                op = ">="
        elif isinstance(self.right, ColumnRef) and isinstance(left, str):
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
            return Comparison(flipped, self.right, self.left).evaluate(frame)
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        return left >= right

    def to_sql(self) -> str:
        return "{} {} {}".format(self.left.to_sql(), self.op, self.right.to_sql())


class Between(Expression):
    """``expr BETWEEN low AND high`` (inclusive)."""

    def __init__(self, expr: Expression, low: Expression, high: Expression):
        self.expr = expr
        self.low = low
        self.high = high

    def columns(self) -> Set[str]:
        return self.expr.columns() | self.low.columns() | self.high.columns()

    def evaluate(self, frame) -> np.ndarray:
        lower = Comparison(">=", self.expr, self.low).evaluate(frame)
        upper = Comparison("<=", self.expr, self.high).evaluate(frame)
        return lower & upper

    def to_sql(self) -> str:
        return "{} BETWEEN {} AND {}".format(
            self.expr.to_sql(), self.low.to_sql(), self.high.to_sql()
        )


class InList(Expression):
    """``expr IN (v1, v2, ...)``."""

    def __init__(self, expr: Expression, values: Sequence):
        self.expr = expr
        self.values = list(values)

    def columns(self) -> Set[str]:
        return self.expr.columns()

    def evaluate(self, frame) -> np.ndarray:
        data = self.expr.evaluate(frame)
        values = self.values
        if values and isinstance(values[0], str):
            if not isinstance(self.expr, ColumnRef):
                raise TypeError("IN over strings requires a column reference")
            column = frame.column_meta(self.expr.key)
            values = [column.encode(v) for v in values]
        result = np.zeros(len(data), dtype=bool)
        for value in values:
            result |= data == value
        return result

    def to_sql(self) -> str:
        rendered = ", ".join(
            "'{}'".format(v) if isinstance(v, str) else str(v) for v in self.values
        )
        return "{} IN ({})".format(self.expr.to_sql(), rendered)


class And(Expression):
    """Conjunction of predicates."""

    def __init__(self, children: Iterable[Expression]):
        self.children = list(children)
        if not self.children:
            raise ValueError("AND needs at least one child")

    def columns(self) -> Set[str]:
        keys: Set[str] = set()
        for child in self.children:
            keys |= child.columns()
        return keys

    def evaluate(self, frame) -> np.ndarray:
        result = self.children[0].evaluate(frame)
        for child in self.children[1:]:
            result = result & child.evaluate(frame)
        return result

    def to_sql(self) -> str:
        return "(" + " AND ".join(c.to_sql() for c in self.children) + ")"


class Or(Expression):
    """Disjunction of predicates."""

    def __init__(self, children: Iterable[Expression]):
        self.children = list(children)
        if not self.children:
            raise ValueError("OR needs at least one child")

    def columns(self) -> Set[str]:
        keys: Set[str] = set()
        for child in self.children:
            keys |= child.columns()
        return keys

    def evaluate(self, frame) -> np.ndarray:
        result = self.children[0].evaluate(frame)
        for child in self.children[1:]:
            result = result | child.evaluate(frame)
        return result

    def to_sql(self) -> str:
        return "(" + " OR ".join(c.to_sql() for c in self.children) + ")"


class Not(Expression):
    """Negation."""

    def __init__(self, child: Expression):
        self.child = child

    def columns(self) -> Set[str]:
        return self.child.columns()

    def evaluate(self, frame) -> np.ndarray:
        return ~self.child.evaluate(frame)

    def to_sql(self) -> str:
        return "NOT ({})".format(self.child.to_sql())


#: Supported aggregate functions.
AGGREGATE_FUNCS = ("sum", "count", "avg", "min", "max")


class Aggregate:
    """An aggregate in a SELECT list: ``func(expr) AS alias``."""

    def __init__(self, func: str, expr: Expression, alias: str):
        func = func.lower()
        if func not in AGGREGATE_FUNCS:
            raise ValueError("unknown aggregate {!r}".format(func))
        self.func = func
        self.expr = expr
        self.alias = alias

    def columns(self) -> Set[str]:
        return self.expr.columns()

    def to_sql(self) -> str:
        return "{}({}) AS {}".format(self.func, self.expr.to_sql(), self.alias)

    def __repr__(self) -> str:
        return "<Aggregate {}>".format(self.to_sql())


def conjuncts(predicate: Expression) -> List[Expression]:
    """Flatten nested ANDs into a list of conjuncts."""
    if isinstance(predicate, And):
        result: List[Expression] = []
        for child in predicate.children:
            result.extend(conjuncts(child))
        return result
    return [predicate]


def conjunction(predicates: Sequence[Expression]):
    """Combine predicates into one expression (None for empty input)."""
    predicates = [p for p in predicates if p is not None]
    if not predicates:
        return None
    if len(predicates) == 1:
        return predicates[0]
    return And(predicates)
