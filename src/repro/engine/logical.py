"""Logical query plans.

The strategic optimizer (Boncz's split, Sec. 4) produces a logical
plan: structure and join order, but no processor assignment.  The
tactical layer (placement strategies and executors) works on the
lowered physical plan.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.engine.expressions import Aggregate, ColumnRef, Expression


class LogicalNode:
    """Base class for logical plan nodes."""

    def __init__(self, children: Optional[List["LogicalNode"]] = None):
        self.children: List[LogicalNode] = list(children or [])

    def explain(self, indent: int = 0) -> str:
        """Human-readable plan tree."""
        lines = ["{}{}".format("  " * indent, self._describe())]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def _describe(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return "<{}>".format(self._describe())


class LogicalScan(LogicalNode):
    """Filtered scan of a base table."""

    def __init__(self, table: str, predicate: Optional[Expression] = None):
        super().__init__()
        self.table = table
        self.predicate = predicate

    def _describe(self) -> str:
        if self.predicate is None:
            return "Scan({})".format(self.table)
        return "Scan({}, {})".format(self.table, self.predicate.to_sql())


class LogicalJoin(LogicalNode):
    """Inner equi-join; left child is the probe side."""

    def __init__(self, probe: LogicalNode, build: LogicalNode,
                 probe_key: ColumnRef, build_key: ColumnRef):
        super().__init__([probe, build])
        self.probe_key = probe_key
        self.build_key = build_key

    def _describe(self) -> str:
        return "Join({} = {})".format(self.probe_key.key, self.build_key.key)


class LogicalAggregate(LogicalNode):
    """Grouped aggregation."""

    def __init__(self, child: LogicalNode, group_by: List[ColumnRef],
                 aggregates: List[Aggregate]):
        super().__init__([child])
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)

    def _describe(self) -> str:
        return "Aggregate(group=[{}], aggs=[{}])".format(
            ", ".join(r.key for r in self.group_by),
            ", ".join(a.to_sql() for a in self.aggregates),
        )


class LogicalProject(LogicalNode):
    """Final projection / materialisation of output expressions."""

    def __init__(self, child: LogicalNode,
                 items: List[Tuple[str, Expression]]):
        super().__init__([child])
        self.items = list(items)

    def _describe(self) -> str:
        return "Project({})".format(", ".join(alias for alias, _ in self.items))


class LogicalHaving(LogicalNode):
    """Filter grouped output rows by a predicate over output columns."""

    def __init__(self, child: LogicalNode, predicate: Expression):
        super().__init__([child])
        self.predicate = predicate

    def _describe(self) -> str:
        return "Having({})".format(self.predicate.to_sql())


class LogicalDistinct(LogicalNode):
    """Duplicate elimination over the projected output."""

    def __init__(self, child: LogicalNode):
        super().__init__([child])

    def _describe(self) -> str:
        return "Distinct"


class LogicalSort(LogicalNode):
    """Sort by output column names."""

    def __init__(self, child: LogicalNode, keys: List[Tuple[str, bool]]):
        super().__init__([child])
        self.keys = list(keys)

    def _describe(self) -> str:
        return "Sort({})".format(
            ", ".join(
                "{} {}".format(name, "asc" if asc else "desc")
                for name, asc in self.keys
            )
        )


class LogicalLimit(LogicalNode):
    """Keep the first n rows."""

    def __init__(self, child: LogicalNode, n: int):
        super().__init__([child])
        self.n = n

    def _describe(self) -> str:
        return "Limit({})".format(self.n)
