"""Cross-run functional result cache keyed by structural plan fingerprints.

The functional (numpy) work of a subplan depends only on the database
and the subplan's structure — never on placement, caching, users, or
any other simulated-hardware knob.  Memoising results under a
structural fingerprint therefore lets *different* queries and *repeated
runs* share the numpy work wherever they share a subplan (the classic
example: every SSB query starts from the same lineorder scan), while
the simulation still models every timing aspect of every execution
independently.

Entries are kept per database in a :class:`weakref.WeakKeyDictionary`,
so dropping a database drops its cached results.  ``invalidate`` is the
explicit escape hatch for code that mutates a database in place (e.g.
compression rewrites columns): it must be called so stale payloads can
never leak into a later — validated — run.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple
from weakref import WeakKeyDictionary

from repro.engine import caches

#: database -> {fingerprint: (payload, actual_rows, nominal_rows, width)}
_cache: "WeakKeyDictionary" = WeakKeyDictionary()
_enabled = True

#: hit/miss counters for benchmarking and tests
stats = {"hits": 0, "misses": 0, "stores": 0}


def enable(on: bool = True) -> None:
    """Globally enable or disable cross-plan memoisation."""
    global _enabled
    _enabled = on


def enabled() -> bool:
    return _enabled


def lookup(database, fingerprint) -> Optional[Tuple]:
    """Cached result tuple for ``fingerprint`` on ``database``, if any."""
    if not _enabled or fingerprint is None:
        return None
    per_db = _cache.get(database)
    if per_db is None:
        stats["misses"] += 1
        return None
    cached = per_db.get(fingerprint)
    if cached is None:
        stats["misses"] += 1
    else:
        stats["hits"] += 1
    return cached


def peek(database, fingerprint) -> Optional[Tuple]:
    """Like :func:`lookup`, but without touching the hit/miss counters.

    Used by the morsel layer's already-memoised check, which must not
    distort the statistics the executor loop reports."""
    if not _enabled or fingerprint is None:
        return None
    per_db = _cache.get(database)
    return None if per_db is None else per_db.get(fingerprint)


def store(database, fingerprint, cached: Tuple) -> None:
    """Memoise one result tuple under ``fingerprint``."""
    if not _enabled or fingerprint is None:
        return
    per_db = _cache.get(database)
    if per_db is None:
        per_db = {}
        _cache[database] = per_db
    per_db[fingerprint] = cached
    stats["stores"] += 1


def invalidate(database=None) -> None:
    """Drop cached results — all of them, or one database's.

    Must be called whenever a database is mutated in place after
    results were cached against it.
    """
    if database is None:
        _cache.clear()
    else:
        _cache.pop(database, None)


def reset_stats() -> None:
    for key in stats:
        stats[key] = 0


def cache_size(database=None) -> int:
    """Number of memoised subplan results (for one or all databases)."""
    if database is not None:
        return len(_cache.get(database) or ())
    return sum(len(entries) for entries in _cache.values())


caches.register("plan", invalidate, cache_size)
