"""A naive reference evaluator.

Executes a bound :class:`QuerySpec` row-at-a-time in pure Python —
deliberately sharing *no* execution code with the physical operators —
so integration tests can cross-check every workload query end-to-end.

Output convention matches the engine: for aggregation queries the
columns are the group-by columns (in GROUP BY order) followed by the
aggregates (in SELECT order); strings are decoded.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.engine.expressions import (
    Aggregate,
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    Literal,
    Not,
    Or,
)
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sql.binder import QuerySpec
from repro.storage import ColumnType, Database


def _scalar(expr: Expression, getval: Callable[[str], object]):
    """Row-at-a-time expression evaluation on decoded Python values."""
    if isinstance(expr, ColumnRef):
        return getval(expr.key)
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Arithmetic):
        left = _scalar(expr.left, getval)
        right = _scalar(expr.right, getval)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        return left / right
    if isinstance(expr, Comparison):
        left = _scalar(expr.left, getval)
        right = _scalar(expr.right, getval)
        ops = {
            "=": lambda a, b: a == b,
            "<>": lambda a, b: a != b,
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
        }
        return ops[expr.op](left, right)
    if isinstance(expr, Between):
        value = _scalar(expr.expr, getval)
        return _scalar(expr.low, getval) <= value <= _scalar(expr.high, getval)
    if isinstance(expr, InList):
        return _scalar(expr.expr, getval) in expr.values
    if isinstance(expr, And):
        return all(_scalar(child, getval) for child in expr.children)
    if isinstance(expr, Or):
        return any(_scalar(child, getval) for child in expr.children)
    if isinstance(expr, Not):
        return not _scalar(expr.child, getval)
    raise TypeError("unsupported expression {!r}".format(expr))


class _RowReader:
    """Decoded value access for one table."""

    def __init__(self, database: Database, table: str):
        self._columns = {}
        for column in database.table(table).columns:
            self._columns[column.key] = column

    def value(self, key: str, row: int):
        column = self._columns[key]
        raw = column.values[row]
        if column.ctype is ColumnType.STRING:
            return column.dictionary[int(raw)]
        if column.ctype in (ColumnType.FLOAT32, ColumnType.FLOAT64):
            return float(raw)
        return int(raw)


def execute_reference(spec: "QuerySpec", database: Database) -> List[tuple]:
    """Evaluate ``spec`` naively; returns rows as tuples."""
    readers = {table: _RowReader(database, table) for table in spec.tables}

    def row_getter(assignment: Dict[str, int]) -> Callable[[str], object]:
        def getval(key: str):
            table = key.partition(".")[0]
            return readers[table].value(key, assignment[table])

        return getval

    # 1. Per-table filters.
    filtered: Dict[str, List[int]] = {}
    for table in spec.tables:
        predicate = spec.filters.get(table)
        rows = []
        n = database.table(table).actual_rows
        for row in range(n):
            if predicate is None or _scalar(
                predicate, row_getter({table: row})
            ):
                rows.append(row)
        filtered[table] = rows

    # 2. Joins: fold tables into tuples of row assignments.
    first = spec.tables[0]
    assignments: List[Dict[str, int]] = [{first: row} for row in filtered[first]]
    joined_tables = {first}
    remaining = [t for t in spec.tables[1:]]
    edges = list(spec.join_edges)
    while remaining:
        progressed = False
        for table in list(remaining):
            usable = [
                (left, right)
                for left, right in edges
                if (left.table == table and right.table in joined_tables)
                or (right.table == table and left.table in joined_tables)
            ]
            if not usable:
                continue
            left, right = usable[0]
            new_key, old_key = (left, right) if left.table == table else (right, left)
            # hash the new table's filtered rows on the join key
            buckets: Dict[object, List[int]] = {}
            for row in filtered[table]:
                value = readers[table].value(new_key.key, row)
                buckets.setdefault(value, []).append(row)
            joined = []
            for assignment in assignments:
                value = readers[old_key.table].value(
                    old_key.key, assignment[old_key.table]
                )
                for row in buckets.get(value, ()):
                    extended = dict(assignment)
                    extended[table] = row
                    joined.append(extended)
            assignments = joined
            joined_tables.add(table)
            remaining.remove(table)
            progressed = True
        if not progressed:
            raise ValueError("disconnected join graph in reference evaluator")

    # 3. Output.
    if spec.is_aggregation:
        rows = _aggregate(spec, assignments, row_getter)
        if spec.having is not None:
            rows = _apply_having(spec, rows)
    else:
        rows = [
            tuple(_scalar(expr, row_getter(a)) for _, expr in spec.select_items)
            for a in assignments
        ]
        if spec.distinct:
            seen = set()
            deduped = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    deduped.append(row)
            rows = deduped

    # 4. Order by (on output positions), then limit.
    if spec.order_by:
        names = _output_names(spec)
        indices = [(names.index(name), asc) for name, asc in spec.order_by]

        import functools

        def compare(a, b):
            for index, ascending in indices:
                if a[index] == b[index]:
                    continue
                less = a[index] < b[index]
                if ascending:
                    return -1 if less else 1
                return 1 if less else -1
            return 0

        rows = sorted(rows, key=functools.cmp_to_key(compare))
    if spec.limit is not None:
        rows = rows[: spec.limit]
    return rows


def _apply_having(spec, rows: List[tuple]) -> List[tuple]:
    """Filter aggregated rows by the HAVING predicate."""
    names = _output_names(spec)

    def keep(row):
        def getval(key: str):
            name = key.partition(".")[2] or key
            return row[names.index(name)]

        return _scalar(spec.having, getval)

    return [row for row in rows if keep(row)]


def _output_names(spec: "QuerySpec") -> List[str]:
    if spec.is_aggregation:
        return [ref.name for ref in spec.group_by] + [
            agg.alias for agg in spec.aggregates
        ]
    return [alias for alias, _ in spec.select_items]


def _aggregate(spec, assignments, row_getter) -> List[tuple]:
    groups: Dict[tuple, List[Dict[str, int]]] = {}
    for assignment in assignments:
        getval = row_getter(assignment)
        key = tuple(_scalar(ref, getval) for ref in spec.group_by)
        groups.setdefault(key, []).append(assignment)
    # A scalar aggregate over zero rows still yields one row.
    if not spec.group_by and not groups:
        groups[()] = []
    rows = []
    for key in sorted(groups):
        members = groups[key]
        values = list(key)
        for aggregate in spec.aggregates:
            values.append(_apply_aggregate(aggregate, members, row_getter))
        rows.append(tuple(values))
    return rows


def _apply_aggregate(aggregate: Aggregate, members, row_getter):
    if aggregate.func == "count":
        return len(members)
    data = [_scalar(aggregate.expr, row_getter(a)) for a in members]
    if aggregate.func == "sum":
        return sum(data) if data else 0
    if aggregate.func == "avg":
        return sum(data) / len(data) if data else 0.0
    if aggregate.func == "min":
        return min(data) if data else 0
    return max(data) if data else 0
