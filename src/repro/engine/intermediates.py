"""Intermediate results flowing between operators.

CoGaDB materialises every operator output (Sec. 2.5).  Two payload
shapes exist:

* :class:`TidSet` — aligned row positions per base table (the output of
  selections and joins in a column store with positional processing).
* :class:`ResultFrame` — materialised value columns (the output of
  aggregation, sorting, and final projection).

:class:`OperatorResult` wraps a payload with its actual and nominal
sizing plus placement bookkeeping filled in by the executors (where the
result lives, and the device heap allocation backing it).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np


class TidSet:
    """Aligned row positions for one or more base tables."""

    def __init__(self, tables: Dict[str, np.ndarray]):
        if not tables:
            raise ValueError("a TidSet references at least one table")
        lengths = {name: len(tids) for name, tids in tables.items()}
        if len(set(lengths.values())) != 1:
            raise ValueError("misaligned TidSet lengths: {}".format(lengths))
        self.tables = tables

    def __len__(self) -> int:
        return len(next(iter(self.tables.values())))

    def __contains__(self, table_name: str) -> bool:
        return table_name in self.tables

    @property
    def table_names(self) -> List[str]:
        return list(self.tables)

    def positions(self, table_name: str) -> np.ndarray:
        return self.tables[table_name]

    def __repr__(self) -> str:
        return "<TidSet {} rows over {}>".format(len(self), self.table_names)


class ResultFrame:
    """Materialised output columns (optionally with string dictionaries)."""

    def __init__(
        self,
        columns: "Dict[str, np.ndarray]",
        dictionaries: Optional[Dict[str, List[str]]] = None,
    ):
        if not columns:
            raise ValueError("a ResultFrame has at least one column")
        lengths = {name: len(arr) for name, arr in columns.items()}
        if len(set(lengths.values())) != 1:
            raise ValueError("misaligned frame lengths: {}".format(lengths))
        self.columns = columns
        self.dictionaries = dictionaries or {}

    def __len__(self) -> int:
        return len(next(iter(self.columns.values())))

    @property
    def column_names(self) -> List[str]:
        return list(self.columns)

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]

    def decoded(self, name: str):
        """Column values with dictionary codes mapped back to strings."""
        values = self.columns[name]
        dictionary = self.dictionaries.get(name)
        if dictionary is None:
            return list(values)
        return [dictionary[int(code)] for code in values]

    def row_tuples(self) -> List[tuple]:
        """All rows as tuples with strings decoded (for tests/output)."""
        decoded = [self.decoded(name) for name in self.column_names]
        return list(zip(*decoded)) if decoded else []

    @property
    def width_bytes(self) -> int:
        return sum(arr.dtype.itemsize for arr in self.columns.values())

    def __repr__(self) -> str:
        return "<ResultFrame {} rows x {}>".format(len(self), self.column_names)


class OperatorResult:
    """An operator output plus sizing and placement bookkeeping."""

    def __init__(self, payload, actual_rows: int, nominal_rows: int,
                 row_width_bytes: int):
        self.payload = payload
        self.actual_rows = int(actual_rows)
        self.nominal_rows = int(nominal_rows)
        self.row_width_bytes = int(row_width_bytes)
        #: name of the processor whose memory holds the result
        self.location: str = "cpu"
        #: device heap allocation backing the result, if on the GPU
        self.allocation = None
        #: consumers that still have to read this result
        self.pending_consumers: int = 0

    @property
    def nominal_bytes(self) -> int:
        """Paper-scale size of the materialised result."""
        return self.nominal_rows * self.row_width_bytes

    def release_device_memory(self) -> None:
        """Free the backing device allocation (idempotent)."""
        if self.allocation is not None:
            self.allocation.free()
            self.allocation = None

    def __repr__(self) -> str:
        return "<OperatorResult rows={} nominal={}B at {}>".format(
            self.actual_rows, self.nominal_bytes, self.location
        )
