"""Intermediate results flowing between operators.

CoGaDB materialises every operator output (Sec. 2.5).  Two payload
shapes exist:

* :class:`TidSet` — aligned row positions per base table (the output of
  selections and joins in a column store with positional processing).
  Entries are either materialised tid arrays or lazy
  :class:`SelectionVector` masks.
* :class:`ResultFrame` — materialised value columns (the output of
  aggregation, sorting, and final projection).

:class:`OperatorResult` wraps a payload with its actual and nominal
sizing plus placement bookkeeping filled in by the executors (where the
result lives, and the device heap allocation backing it).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np


class SelectionVector:
    """Lazily materialised selection over one base table.

    Carries a boolean ``mask`` over the table's rows — or, with
    ``mask=None``, stands for the whole table.  The ascending tid array
    is computed on first use and cached, so selection chains combine
    masks with boolean AND instead of paying ``flatnonzero`` + gather +
    ``intersect1d`` at every step, and full-table selections gather
    nothing at all.  Instances are immutable by convention: operators
    share them freely across cached results.
    """

    __slots__ = ("mask", "n", "_tids", "_count")

    def __init__(self, mask: Optional[np.ndarray] = None,
                 n: Optional[int] = None):
        if mask is None:
            if n is None:
                raise ValueError("SelectionVector needs a mask or a row count")
            self.mask = None
            self.n = int(n)
            self._count: Optional[int] = self.n
        else:
            mask = np.asarray(mask, dtype=bool)
            self.mask = mask
            self.n = len(mask)
            self._count = None
        self._tids: Optional[np.ndarray] = None

    @property
    def tids(self) -> np.ndarray:
        """Selected row positions, ascending (materialised on demand)."""
        if self._tids is None:
            if self.mask is None:
                self._tids = np.arange(self.n, dtype=np.int64)
            else:
                self._tids = np.flatnonzero(self.mask)
            self._count = len(self._tids)
        return self._tids

    def __len__(self) -> int:
        if self._count is None:
            self._count = int(np.count_nonzero(self.mask))
        return self._count

    @property
    def is_all(self) -> bool:
        """True when every row of the table is selected."""
        return len(self) == self.n

    def __repr__(self) -> str:
        return "<SelectionVector {}/{} rows{}>".format(
            len(self), self.n, " lazy" if self._tids is None else ""
        )


class TidSet:
    """Aligned row positions for one or more base tables.

    Each entry is a tid array or a :class:`SelectionVector`;
    :meth:`positions` always yields the materialised tid array.
    """

    def __init__(self, tables: Dict[str, np.ndarray]):
        if not tables:
            raise ValueError("a TidSet references at least one table")
        lengths = {name: len(tids) for name, tids in tables.items()}
        if len(set(lengths.values())) != 1:
            raise ValueError("misaligned TidSet lengths: {}".format(lengths))
        self.tables = tables

    def __len__(self) -> int:
        return len(next(iter(self.tables.values())))

    def __contains__(self, table_name: str) -> bool:
        return table_name in self.tables

    @property
    def table_names(self) -> List[str]:
        return list(self.tables)

    def positions(self, table_name: str) -> np.ndarray:
        entry = self.tables[table_name]
        if isinstance(entry, SelectionVector):
            return entry.tids
        return entry

    def selection(self, table_name: str) -> Optional[SelectionVector]:
        """The table's lazy selection, if this entry carries one."""
        entry = self.tables.get(table_name)
        return entry if isinstance(entry, SelectionVector) else None

    def gather(self, table_name: str, column) -> np.ndarray:
        """``column`` values at this TidSet's positions for the table.

        A full-table selection returns the base array itself — no copy;
        downstream kernels treat input arrays as read-only.
        """
        entry = self.tables[table_name]
        if isinstance(entry, SelectionVector):
            if entry.is_all and entry.n == len(column.values):
                return column.values
            return column.gather(entry.tids)
        return column.gather(entry)

    def __repr__(self) -> str:
        return "<TidSet {} rows over {}>".format(len(self), self.table_names)


class ResultFrame:
    """Materialised output columns (optionally with string dictionaries)."""

    def __init__(
        self,
        columns: "Dict[str, np.ndarray]",
        dictionaries: Optional[Dict[str, List[str]]] = None,
    ):
        if not columns:
            raise ValueError("a ResultFrame has at least one column")
        lengths = {name: len(arr) for name, arr in columns.items()}
        if len(set(lengths.values())) != 1:
            raise ValueError("misaligned frame lengths: {}".format(lengths))
        self.columns = columns
        self.dictionaries = dictionaries or {}
        #: per-column object-array view of the dictionary, built lazily
        #: so decoding is a single fancy-index instead of a Python loop
        self._dict_arrays: Dict[str, np.ndarray] = {}

    def __len__(self) -> int:
        return len(next(iter(self.columns.values())))

    @property
    def column_names(self) -> List[str]:
        return list(self.columns)

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]

    def decoded(self, name: str):
        """Column values with dictionary codes mapped back to strings."""
        values = self.columns[name]
        dictionary = self.dictionaries.get(name)
        if dictionary is None:
            return list(values)
        lookup = self._dict_arrays.get(name)
        if lookup is None:
            lookup = np.asarray(dictionary, dtype=object)
            self._dict_arrays[name] = lookup
        return list(lookup[values])

    def row_tuples(self) -> List[tuple]:
        """All rows as tuples with strings decoded (for tests/output)."""
        decoded = [self.decoded(name) for name in self.column_names]
        return list(zip(*decoded)) if decoded else []

    @property
    def width_bytes(self) -> int:
        return sum(arr.dtype.itemsize for arr in self.columns.values())

    def __repr__(self) -> str:
        return "<ResultFrame {} rows x {}>".format(len(self), self.column_names)


class OperatorResult:
    """An operator output plus sizing and placement bookkeeping."""

    def __init__(self, payload, actual_rows: int, nominal_rows: int,
                 row_width_bytes: int):
        self.payload = payload
        self.actual_rows = int(actual_rows)
        self.nominal_rows = int(nominal_rows)
        self.row_width_bytes = int(row_width_bytes)
        #: name of the processor whose memory holds the result
        self.location: str = "cpu"
        #: device heap allocation backing the result, if on the GPU
        self.allocation = None
        #: consumers that still have to read this result
        self.pending_consumers: int = 0

    @property
    def nominal_bytes(self) -> int:
        """Paper-scale size of the materialised result."""
        return self.nominal_rows * self.row_width_bytes

    def release_device_memory(self) -> None:
        """Free the backing device allocation (idempotent)."""
        if self.allocation is not None:
            self.allocation.free()
            self.allocation = None

    def __repr__(self) -> str:
        return "<OperatorResult rows={} nominal={}B at {}>".format(
            self.actual_rows, self.nominal_bytes, self.location
        )
