"""The paper's contribution: robust placement and execution strategies.

* :mod:`repro.core.placement` — the strategy zoo: CPU-Only,
  GPU-Preferred, Critical Path (Appendix D), Data-Driven (Sec. 3),
  run-time HyPE placement (Sec. 4), and the data-driven run-time rule.
* :mod:`repro.core.data_placement` — the data-placement manager:
  access-statistics-driven cache content (Algorithm 1) with LFU/LRU.
* :mod:`repro.core.chopping` — query chopping (Sec. 5): the global
  operator stream, per-processor ready queues, and worker pools.
"""

from repro.core.data_placement import DataPlacementManager, PlacementPrefetcher
from repro.core.chopping import ChoppingExecutor
from repro.core.placement import (
    STRATEGY_NAMES,
    PlacementStrategy,
    get_strategy,
)

__all__ = [
    "ChoppingExecutor",
    "DataPlacementManager",
    "PlacementPrefetcher",
    "PlacementStrategy",
    "STRATEGY_NAMES",
    "get_strategy",
]
