"""The data-placement manager (Sec. 3.2, Algorithm 1).

A central component decides the co-processor cache content from the
workload's access pattern: the columns with the highest access counts
are placed in the cache, most frequent first, until the buffer is full.
Cached columns are *pinned* — operator execution never inserts or
evicts under data-driven placement, which is exactly why cache
thrashing cannot occur.

Both the LFU strategy (default) and the LRU variant of Appendix E are
supported.  With several co-processors (Sec. 6.3) the manager
partitions the hot set across the devices: small (dimension) columns
replicate everywhere, large (fact) columns first-fit in rank order so
the hottest set clusters like the single-device prefix — the
horizontal scale-out the paper sketches.

:class:`PlacementPrefetcher` turns the same ranking into *background*
traffic: with the asynchronous copy engine on, it fills idle h2d
windows with the next-ranked hot columns, yielding the channel to
demand copies at chunk boundaries.
"""

from __future__ import annotations

import weakref
from typing import Dict, Generator, List, Optional, Sequence, Set

from repro.engine import caches as _cache_registry
from repro.hardware import DeviceCache, PCIeTransferFault
from repro.storage import Database


class DataPlacementManager:
    """Background job adjusting the co-processor cache content."""

    def __init__(self, database: Database,
                 cache: Optional[DeviceCache] = None,
                 policy: str = "lfu",
                 caches: Optional[Sequence[DeviceCache]] = None):
        if policy not in ("lfu", "lru"):
            raise ValueError("unknown placement policy {!r}".format(policy))
        if (cache is None) == (caches is None):
            raise ValueError("provide exactly one of cache / caches")
        self.database = database
        self.caches: List[DeviceCache] = (
            list(caches) if caches is not None else [cache]
        )
        self.policy = policy

    @property
    def cache(self) -> DeviceCache:
        """The first device's cache (single-GPU call sites)."""
        return self.caches[0]

    # -- Algorithm 1 ----------------------------------------------------

    def _ranked_columns(self) -> List[str]:
        statistics = self.database.statistics
        if self.policy == "lfu":
            return statistics.by_frequency()
        return statistics.by_recency()

    #: columns at most this fraction of a device cache are replicated
    #: on every device (dimension tables / access structures), so joins
    #: and aggregations stay co-located with their fact columns
    REPLICATION_FRACTION = 0.05

    def partition(self) -> List[List[str]]:
        """Algorithm 1, generalised to several devices.

        Small columns (dimension tables) are *replicated* on every
        device; large (fact) columns fill the devices sequentially in
        rank order, so the hottest set clusters exactly like the
        single-device prefix and extra devices extend it.  With a
        single device this degenerates to the paper's greedy prefix.
        """
        remaining = [cache.capacity for cache in self.caches]
        assignment: List[List[str]] = [[] for _ in self.caches]
        replication_limit = (
            min(cache.capacity for cache in self.caches)
            * self.REPLICATION_FRACTION
        )
        replicate_everywhere = len(self.caches) > 1
        for key in self._ranked_columns():
            try:
                column = self.database.column(key)
            except KeyError:
                continue  # stale statistics after schema changes
            nbytes = column.nominal_bytes
            if replicate_everywhere and nbytes <= replication_limit:
                for index in range(len(self.caches)):
                    if nbytes <= remaining[index]:
                        assignment[index].append(key)
                        remaining[index] -= nbytes
                continue
            # first fit: the hottest columns cluster on the first
            # device exactly like the single-device prefix
            for index in range(len(self.caches)):
                if nbytes <= remaining[index]:
                    assignment[index].append(key)
                    remaining[index] -= nbytes
                    break
        return assignment

    def target_columns(self) -> List[str]:
        """The column set Algorithm 1 would cache right now (all
        devices combined)."""
        return [key for device_keys in self.partition()
                for key in device_keys]

    def apply_placement(self) -> List[str]:
        """Instant cache update (no simulated transfer cost).

        Used to pre-load access structures before a benchmark starts,
        as the paper does (Sec. 6.1).  Returns all cached column keys.
        """
        for cache, keys in zip(self.caches, self.partition()):
            self._update_cache(cache, set(keys))
        return sorted(
            key for cache in self.caches for key in cache.keys
        )

    def _update_cache(self, cache: DeviceCache, new_set) -> None:
        old_set = set(cache.keys)
        for key in old_set - new_set:
            entry = cache.entry(key)
            if entry.refcount > 0:
                # In use by a running operator: deferred cleanup, the
                # next placement run will retry (Sec. 3.2).
                continue
            cache.evict(key)
        for key in sorted(new_set - old_set):
            column = self.database.column(key)
            cache.admit(key, column.nominal_bytes, pinned=True)
        for key in new_set & old_set:
            cache.pin(key)

    def place(self, bus) -> Generator:
        """DES process: run Algorithm 1, charging PCIe time for newly
        cached columns (the online background job)."""
        for cache, keys in zip(self.caches, self.partition()):
            new_set = set(keys)
            old_set = set(cache.keys)
            for key in old_set - new_set:
                entry = cache.entry(key)
                if entry.refcount > 0:
                    continue
                cache.evict(key)
            for key in sorted(new_set - old_set):
                column = self.database.column(key)
                if cache.admit(key, column.nominal_bytes, pinned=True):
                    yield from bus.transfer(column.nominal_bytes, "h2d")
            for key in new_set & old_set:
                cache.pin(key)

    def background_job(self, bus, interval_seconds: float) -> Generator:
        """DES process: periodically re-run placement."""
        while True:
            yield bus.env.timeout(interval_seconds)
            yield from self.place(bus)


class PlacementPrefetcher:
    """Fills idle h2d windows with the next-ranked hot columns.

    One background DES process per device watches that device's
    host-to-device channel.  Whenever the channel drains to idle, the
    process pulls up to ``depth`` columns from the placement manager's
    ranking (Algorithm 1's partition for this device) that are not yet
    cached, moving each with the engine's *preemptible* pump — a demand
    copy arriving mid-prefetch takes the channel at the next chunk
    boundary, so foreground queries never wait for more than one chunk
    of background traffic.

    Prefetched columns are admitted to the cache unpinned, so they age
    out under the cache's own policy if the ranking was wrong; a column
    that no longer fits, or whose copy faults, is skipped for the rest
    of the run rather than retried in a loop.
    """

    def __init__(self, hardware, placement: DataPlacementManager,
                 depth: int = 2):
        if hardware.copy_engine is None:
            raise ValueError("the prefetcher needs the copy engine")
        if depth < 1:
            raise ValueError("prefetch depth must be >= 1")
        self.hardware = hardware
        self.placement = placement
        self.depth = depth
        self.engine = hardware.copy_engine
        self._skip: Dict[str, Set[str]] = {}
        _prefetchers.add(self)

    def clear_skips(self) -> None:
        """Forget every given-up key (cache contents changed)."""
        self._skip.clear()

    def skip_count(self) -> int:
        """Total given-up keys across devices (registry sizing hook)."""
        return sum(len(keys) for keys in self._skip.values())

    def start(self) -> None:
        """Spawn one prefetch process per co-processor."""
        env = self.hardware.env
        for index, device in enumerate(self.hardware.gpus):
            if index >= len(self.placement.caches):
                break
            env.process(self._run(index, device))

    def _run(self, index: int, device) -> Generator:
        channel = self.engine.channel(device.name, "h2d")
        while True:
            yield from self._fill_window(index, device, channel)
            # sleep until the next drain-to-idle transition: every
            # completed copy may have changed what is worth fetching
            yield channel.wait_idle()

    def _fill_window(self, index: int, device, channel) -> Generator:
        fetched = 0
        for key, nbytes in self._candidates(index, device):
            if fetched >= self.depth or channel.busy:
                break
            if nbytes > device.cache.available:
                continue
            try:
                yield from self.engine.transfer(
                    nbytes, "h2d", device=device.name, key=key,
                    prefetch=True,
                )
            except PCIeTransferFault:
                self._skip.setdefault(device.name, set()).add(key)
                continue
            # demand traffic may have filled the cache while the copy
            # was on the wire; a failed admit stays failed, so give up
            # on the key instead of re-copying it on every idle window
            if (nbytes <= device.cache.available
                    and device.cache.admit(key, nbytes)):
                self.engine.mark_prefetched(device.name, key)
                if self.hardware.metrics is not None:
                    self.hardware.metrics.record_prefetch(nbytes)
                fetched += 1
            else:
                self._skip.setdefault(device.name, set()).add(key)

    def _candidates(self, index: int, device):
        """(key, nbytes) pairs worth prefetching, hottest first."""
        skip = self._skip.get(device.name, ())
        engine = self.engine
        for key in self.placement.partition()[index]:
            if key in device.cache or key in skip:
                continue
            if engine.in_flight(device.name, "h2d", key):
                continue
            try:
                column = self.placement.database.column(key)
            except KeyError:
                continue
            yield key, column.nominal_bytes


#: Live prefetchers (weakly held): their per-device skip sets are
#: derived state against a database — a key is given up because *that*
#: database's cache content and column sizes left no room — so
#: ``clear_database_caches`` must reset them along with every other
#: registered cache, or a reused harness process would refuse to
#: prefetch keys that a fresh run happily fetches.
_prefetchers: "weakref.WeakSet[PlacementPrefetcher]" = weakref.WeakSet()


def _clear_prefetch_skips(database=None) -> None:
    for prefetcher in list(_prefetchers):
        if (database is not None
                and prefetcher.placement.database is not database):
            continue
        prefetcher.clear_skips()


def _prefetch_skip_count(database=None) -> int:
    return sum(
        prefetcher.skip_count()
        for prefetcher in list(_prefetchers)
        if database is None or prefetcher.placement.database is database
    )


_cache_registry.register(
    "prefetch_skips", _clear_prefetch_skips, _prefetch_skip_count
)
