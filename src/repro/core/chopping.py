"""Query chopping (Sec. 5).

Chopping is a progressive query optimizer: it chops the leaf operators
off submitted queries and inserts them into a global operator stream.
Each operator is placed on a processor *when it becomes ready* (all
children finished), then waits in that processor's ready queue until a
worker thread pulls it.  Finished operators notify their parents; a
parent whose children have all completed inserts itself into the
stream (Fig. 10/11).

The worker pools bound operator-level concurrency per processor —
operators allocate device memory only once a worker runs them, which is
what prevents heap contention (Sec. 5.2).

With the query-lifecycle layer on
(:mod:`repro.engine.execution.lifecycle`) the executor additionally
supports *cooperative cancellation* — a cancelled query's queued tasks
are skipped at pickup and its running operators are interrupted — and
*straggler hedging*: a watchdog re-enqueues a GPU-placed operator onto
the CPU pool once it exceeds ``hedge_factor`` times its HyPE estimate;
the first finisher wins and the loser is cancelled.  With the layer off
every query takes the exact pre-existing code path (zero overhead).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.core.placement.base import estimate_runtime
from repro.engine.execution.context import ExecutionContext
from repro.engine.execution.lifecycle import QueryCancelled, QueryContext
from repro.engine.execution.operator_task import execute_operator
from repro.engine.operators import PhysicalOperator, PhysicalPlan
from repro.sim import Event, Interrupted, PriorityStore, Store


class _Task:
    """One operator instance traveling through the operator stream."""

    __slots__ = (
        "op",
        "parent",
        "child_index",
        "pending",
        "child_results",
        "root_event",
        "assigned",
        "estimate",
        "qctx",
        "race",
        "ctx",
    )

    def __init__(self, op: PhysicalOperator):
        self.op = op
        self.parent: Optional[_Task] = None
        self.child_index = 0
        self.pending = len(op.children)
        self.child_results: List = [None] * len(op.children)
        self.root_event: Optional[Event] = None
        self.assigned = "cpu"
        self.estimate = 0.0
        self.qctx: Optional[QueryContext] = None
        self.race: Optional[_HedgeRace] = None
        #: per-query context override (service mode pins a query to its
        #: snapshot epoch); None = the executor's shared context
        self.ctx: Optional[ExecutionContext] = None


class _HedgeRace:
    """Shared state of one hedged operator: primary vs. CPU copy.

    The same :class:`_Task` object is enqueued on both pools; whichever
    worker finishes first flips ``done``, interrupts the rival, and
    performs the (single) parent notification.
    """

    __slots__ = (
        "primary", "estimates", "procs", "done", "winner", "hedged",
        "watchdog",
    )

    def __init__(self, primary: str, primary_estimate: float):
        #: processor name of the original placement
        self.primary = primary
        #: per-processor HyPE estimates (for load-tracker bookkeeping)
        self.estimates = {primary: primary_estimate}
        #: per-processor operator processes
        self.procs: Dict[str, object] = {}
        self.done = False
        self.winner: Optional[str] = None
        #: True once the watchdog actually dispatched the CPU copy
        self.hedged = False
        self.watchdog = None


class ChoppingExecutor:
    """Thread-pool execution engine with run-time placement."""

    def __init__(self, ctx: ExecutionContext, strategy,
                 cpu_workers: int = 4, gpu_workers: int = 2,
                 scheduling: str = "fifo", lifecycle=None):
        if cpu_workers < 1 or gpu_workers < 1:
            raise ValueError("worker pools need at least one thread")
        if scheduling not in ("fifo", "sjf"):
            raise ValueError("scheduling must be 'fifo' or 'sjf'")
        self.ctx = ctx
        self.strategy = strategy
        self.cpu_workers = cpu_workers
        self.gpu_workers = gpu_workers
        #: query-lifecycle config (hedging knobs); None = layer off
        self.lifecycle = lifecycle
        self._hedging = lifecycle is not None and lifecycle.hedging_enabled
        #: ready-queue discipline: FIFO (the paper's thread pool) or
        #: shortest-job-first by HyPE's runtime estimate
        self.scheduling = scheduling
        env = ctx.env
        store_class = Store if scheduling == "fifo" else PriorityStore
        #: per-processor ready queues fed by the global operator stream
        #: (one queue and one worker pool per co-processor)
        self.ready: Dict[str, Store] = {"cpu": store_class(env)}
        for _ in range(cpu_workers):
            env.process(self._worker("cpu"))
        for name in ctx.hardware.gpu_names:
            self.ready[name] = store_class(env)
            for _ in range(gpu_workers):
                env.process(self._worker(name))

    # -- query submission -------------------------------------------------

    def submit(self, plan: PhysicalPlan,
               qctx: Optional[QueryContext] = None,
               ctx: Optional[ExecutionContext] = None) -> Event:
        """Chop ``plan`` into the operator stream.

        Returns an event that fires with the root
        :class:`~repro.engine.intermediates.OperatorResult` once the
        query completes.  With a ``qctx`` the event instead *fails*
        with :class:`QueryCancelled` if the query is cancelled.  A
        ``ctx`` pins every operator of this plan to another execution
        context (service mode's epoch snapshots); the override must
        share the executor's hardware and load tracker.
        """
        root_event = self.ctx.env.event()
        tasks: Dict[int, _Task] = {}
        for op in plan.operators:  # post order
            task = _Task(op)
            task.qctx = qctx
            task.ctx = ctx
            tasks[op.op_id] = task
            for index, child in enumerate(op.children):
                child_task = tasks[child.op_id]
                child_task.parent = task
                child_task.child_index = index
        tasks[plan.root.op_id].root_event = root_event
        if qctx is not None:
            qctx.attach_root(root_event)
        # Leaves have no dependencies: they enter the stream immediately.
        for op in plan.operators:
            if not op.children:
                self._dispatch(tasks[op.op_id])
        return root_event

    # -- scheduling ---------------------------------------------------------

    def _dispatch(self, task: _Task) -> None:
        """Place a ready operator and enqueue it (HyPE's tactical step)."""
        qctx = task.qctx
        if qctx is not None and qctx.cancelled:
            # the query died before this operator became ready
            self._release_children(task)
            return
        ctx = self.ctx if task.ctx is None else task.ctx
        if qctx is not None and qctx.force_cpu:
            name = "cpu"
        else:
            name = self.strategy.choose_processor(
                ctx, task.op, task.child_results
            )
        task.assigned = name
        task.estimate = estimate_runtime(
            ctx, task.op, task.child_results, name
        )
        ctx.load.assign(name, task.estimate)
        self.ready[name].put(task, priority=task.estimate)

    def _worker(self, name: str) -> Generator:
        """One worker thread: pull, execute, notify the parent."""
        while True:
            task = yield self.ready[name].get()
            ctx = self.ctx if task.ctx is None else task.ctx
            if (task.qctx is None and task.race is None
                    and not (self._hedging and name != "cpu"
                             and not task.op.cpu_only)):
                # Plain path — identical to the executor without the
                # lifecycle layer (the zero-overhead guarantee).
                result = yield from execute_operator(
                    ctx,
                    task.op,
                    task.child_results,
                    name,
                    admit_to_cache=self.strategy.admit_to_cache,
                )
                ctx.load.finish(name, task.estimate)
                yield from self._complete(task, result)
                continue
            yield from self._run_supervised(task, name)

    def _run_supervised(self, task: _Task, name: str) -> Generator:
        """Run one cancellable (and possibly hedged) operator.

        The operator becomes its own DES process registered with the
        query context, so a cancel can interrupt it mid-execution; the
        worker joins it and performs bookkeeping and completion.
        """
        ctx = self.ctx if task.ctx is None else task.ctx
        qctx = task.qctx
        race = task.race
        estimate = (race.estimates.get(name, task.estimate)
                    if race is not None else task.estimate)
        if qctx is not None and qctx.cancelled:
            # skipped at pickup: the query died while the task queued
            ctx.load.finish(name, estimate)
            ctx.metrics.record_cancelled_skip()
            self._release_children(task)
            return
        if race is not None and race.done:
            # the rival finished while this copy sat in the queue
            ctx.load.finish(name, estimate)
            return
        if race is None and self._hedging and name != "cpu" \
                and not task.op.cpu_only:
            race = _HedgeRace(name, task.estimate)
            task.race = race
            race.watchdog = ctx.env.process(self._hedge_watchdog(task))
            race.watchdog.defused = True
        proc = ctx.env.process(execute_operator(
            ctx, task.op, task.child_results, name,
            admit_to_cache=self.strategy.admit_to_cache, qctx=qctx,
        ))
        proc.defused = True
        if qctx is not None:
            qctx.register(proc)
        if race is not None:
            race.procs[name] = proc
        started = ctx.env.now
        try:
            result = yield proc
        except (Interrupted, QueryCancelled):
            result = None
        ctx.load.finish(name, estimate)
        if race is not None:
            if race.done:
                # lost the race: the winner already notified the parent;
                # everything this copy executed was hedging's wasted work
                if race.hedged:
                    ctx.metrics.record_hedge_wasted(ctx.env.now - started)
                if result is not None:
                    result.release_device_memory()
                return
            if result is not None:
                race.done = True
                race.winner = name
                if race.watchdog is not None and race.watchdog.is_alive:
                    race.watchdog.interrupt()
                for rival_name, rival in race.procs.items():
                    if rival_name != name and rival.is_alive:
                        rival.defused = True
                        rival.interrupt(QueryCancelled(
                            task.op.plan_name or "?", "hedged"
                        ))
                if race.hedged:
                    if name != race.primary:
                        ctx.metrics.record_hedge_win()
                    else:
                        ctx.metrics.record_hedge_loss()
        if result is None:
            # interrupted mid-flight; the operator rolled its own device
            # state back, this task's staged inputs go with it
            if qctx is not None and qctx.cancelled:
                self._release_children(task)
            return
        yield from self._complete(task, result)

    def _hedge_watchdog(self, task: _Task) -> Generator:
        """Hedge ``task`` onto the CPU pool once the primary straggles.

        Sleeps ``hedge_factor`` times the primary's HyPE estimate; if
        the operator is still running then (heap-contention stall,
        fault-induced retry storm), the same task is enqueued on the
        CPU ready queue and the two copies race.
        """
        lifecycle = self.lifecycle
        race = task.race
        wait = max(task.estimate, lifecycle.hedge_min_seconds) \
            * lifecycle.hedge_factor
        try:
            yield self.ctx.env.timeout(wait)
        except Interrupted:
            return
        if race.done:
            return
        qctx = task.qctx
        if qctx is not None and qctx.cancelled:
            return
        race.hedged = True
        cpu_estimate = estimate_runtime(
            self.ctx if task.ctx is None else task.ctx,
            task.op, task.child_results, "cpu"
        )
        race.estimates["cpu"] = cpu_estimate
        self.ctx.load.assign("cpu", cpu_estimate)
        self.ctx.metrics.record_hedge_started()
        self.ready["cpu"].put(task, priority=cpu_estimate)

    def _complete(self, task: _Task, result) -> Generator:
        """Return the root result (d2h) or notify the parent task."""
        ctx = self.ctx if task.ctx is None else task.ctx
        parent = task.parent
        if parent is None:
            root_event = task.root_event
            if root_event.triggered:
                # cancelled while the final operator was finishing
                result.release_device_memory()
                return
            if result.location != "cpu":
                yield from ctx.hardware.host_transfer(
                    result.nominal_bytes, "d2h", device=result.location
                )
                result.release_device_memory()
                result.location = "cpu"
                if root_event.triggered:  # cancelled during the d2h
                    return
            root_event.succeed(result)
            return
        parent.child_results[task.child_index] = result
        parent.pending -= 1
        if parent.pending == 0:
            self._dispatch(parent)

    @staticmethod
    def _release_children(task: _Task) -> None:
        for child in task.child_results:
            if child is not None:
                child.release_device_memory()
