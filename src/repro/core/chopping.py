"""Query chopping (Sec. 5).

Chopping is a progressive query optimizer: it chops the leaf operators
off submitted queries and inserts them into a global operator stream.
Each operator is placed on a processor *when it becomes ready* (all
children finished), then waits in that processor's ready queue until a
worker thread pulls it.  Finished operators notify their parents; a
parent whose children have all completed inserts itself into the
stream (Fig. 10/11).

The worker pools bound operator-level concurrency per processor —
operators allocate device memory only once a worker runs them, which is
what prevents heap contention (Sec. 5.2).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.core.placement.base import estimate_runtime
from repro.engine.execution.context import ExecutionContext
from repro.engine.execution.operator_task import execute_operator
from repro.engine.operators import PhysicalOperator, PhysicalPlan
from repro.sim import Event, PriorityStore, Store


class _Task:
    """One operator instance traveling through the operator stream."""

    __slots__ = (
        "op",
        "parent",
        "child_index",
        "pending",
        "child_results",
        "root_event",
        "assigned",
        "estimate",
    )

    def __init__(self, op: PhysicalOperator):
        self.op = op
        self.parent: Optional[_Task] = None
        self.child_index = 0
        self.pending = len(op.children)
        self.child_results: List = [None] * len(op.children)
        self.root_event: Optional[Event] = None
        self.assigned = "cpu"
        self.estimate = 0.0


class ChoppingExecutor:
    """Thread-pool execution engine with run-time placement."""

    def __init__(self, ctx: ExecutionContext, strategy,
                 cpu_workers: int = 4, gpu_workers: int = 2,
                 scheduling: str = "fifo"):
        if cpu_workers < 1 or gpu_workers < 1:
            raise ValueError("worker pools need at least one thread")
        if scheduling not in ("fifo", "sjf"):
            raise ValueError("scheduling must be 'fifo' or 'sjf'")
        self.ctx = ctx
        self.strategy = strategy
        self.cpu_workers = cpu_workers
        self.gpu_workers = gpu_workers
        #: ready-queue discipline: FIFO (the paper's thread pool) or
        #: shortest-job-first by HyPE's runtime estimate
        self.scheduling = scheduling
        env = ctx.env
        store_class = Store if scheduling == "fifo" else PriorityStore
        #: per-processor ready queues fed by the global operator stream
        #: (one queue and one worker pool per co-processor)
        self.ready: Dict[str, Store] = {"cpu": store_class(env)}
        for _ in range(cpu_workers):
            env.process(self._worker("cpu"))
        for name in ctx.hardware.gpu_names:
            self.ready[name] = store_class(env)
            for _ in range(gpu_workers):
                env.process(self._worker(name))

    # -- query submission -------------------------------------------------

    def submit(self, plan: PhysicalPlan) -> Event:
        """Chop ``plan`` into the operator stream.

        Returns an event that fires with the root
        :class:`~repro.engine.intermediates.OperatorResult` once the
        query completes.
        """
        root_event = self.ctx.env.event()
        tasks: Dict[int, _Task] = {}
        for op in plan.operators:  # post order
            task = _Task(op)
            tasks[op.op_id] = task
            for index, child in enumerate(op.children):
                child_task = tasks[child.op_id]
                child_task.parent = task
                child_task.child_index = index
        tasks[plan.root.op_id].root_event = root_event
        # Leaves have no dependencies: they enter the stream immediately.
        for op in plan.operators:
            if not op.children:
                self._dispatch(tasks[op.op_id])
        return root_event

    # -- scheduling ---------------------------------------------------------

    def _dispatch(self, task: _Task) -> None:
        """Place a ready operator and enqueue it (HyPE's tactical step)."""
        name = self.strategy.choose_processor(
            self.ctx, task.op, task.child_results
        )
        task.assigned = name
        task.estimate = estimate_runtime(
            self.ctx, task.op, task.child_results, name
        )
        self.ctx.load.assign(name, task.estimate)
        self.ready[name].put(task, priority=task.estimate)

    def _worker(self, name: str) -> Generator:
        """One worker thread: pull, execute, notify the parent."""
        ctx = self.ctx
        while True:
            task = yield self.ready[name].get()
            result = yield from execute_operator(
                ctx,
                task.op,
                task.child_results,
                name,
                admit_to_cache=self.strategy.admit_to_cache,
            )
            ctx.load.finish(name, task.estimate)
            parent = task.parent
            if parent is None:
                if result.location != "cpu":
                    yield from ctx.hardware.host_transfer(
                        result.nominal_bytes, "d2h", device=result.location
                    )
                    result.release_device_memory()
                    result.location = "cpu"
                task.root_event.succeed(result)
                continue
            parent.child_results[task.child_index] = result
            parent.pending -= 1
            if parent.pending == 0:
                self._dispatch(parent)
