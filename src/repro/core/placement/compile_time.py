"""Trivial compile-time strategies: CPU-Only, GPU-Preferred, admission
control."""

from __future__ import annotations

from repro.core.placement.base import PlacementStrategy


class CpuOnly(PlacementStrategy):
    """Everything on the host — the robustness baseline."""

    name = "cpu_only"

    def prepare_plan(self, ctx, plan) -> None:
        plan.assign_all("cpu")


class GpuPreferred(PlacementStrategy):
    """The paper's *GPU Preferred* reference heuristic (Sec. 6.2):
    every operator on the GPU, switching back to the CPU only when an
    operator runs out of memory."""

    name = "gpu_only"

    def prepare_plan(self, ctx, plan) -> None:
        for op in plan.operators:
            op.placement = "cpu" if op.cpu_only else "gpu"


class AdmissionControlGpu(GpuPreferred):
    """GPU-preferred behind an admission control that lets one query
    into the system at a time — the Wang et al. style reference point
    of Sec. 6.2.2."""

    name = "admission_control"
    admission_limit = 1
