"""Placement strategy interface."""

from __future__ import annotations

from typing import List, Optional

from repro.engine.execution.context import ExecutionContext
from repro.engine.intermediates import OperatorResult
from repro.engine.operators import PhysicalOperator, PhysicalPlan
from repro.hardware.processor import ProcessorKind

PROCESSOR_KINDS = {"cpu": ProcessorKind.CPU, "gpu": ProcessorKind.GPU}


def processor_kind(name: str) -> ProcessorKind:
    """Kind of a processor by name ('cpu' or any 'gpuN')."""
    return ProcessorKind.CPU if name == "cpu" else ProcessorKind.GPU


class PlacementStrategy:
    """How operators are assigned to processors.

    Compile-time strategies implement :meth:`prepare_plan` and leave
    :meth:`choose_processor` reading the fixed assignment; run-time
    strategies decide in :meth:`choose_processor`, seeing actual input
    sizes and result locations.
    """

    #: "eager" (unbounded inter-operator parallelism) or "chopping"
    executor = "eager"
    #: whether GPU staging inserts missed columns into the cache
    #: (operator-driven data placement); data-driven strategies disable
    #: this — the placement manager alone controls cache content
    admit_to_cache = True
    #: whether the harness should run the data-placement manager and
    #: pin the hot set before the workload
    uses_data_placement = False
    #: maximum queries admitted concurrently (None = unbounded)
    admission_limit: Optional[int] = None

    def __init__(self, name: Optional[str] = None, executor: Optional[str] = None):
        if name is not None:
            self.name = name
        elif not hasattr(type(self), "name"):
            self.name = type(self).__name__.lower()
        if executor is not None:
            self.executor = executor

    def prepare_plan(self, ctx: ExecutionContext, plan: PhysicalPlan) -> None:
        """Fix compile-time placements (no-op for run-time strategies)."""

    def choose_processor(self, ctx: ExecutionContext, op: PhysicalOperator,
                         child_results: List[OperatorResult]) -> str:
        """Processor for ``op``, consulted when its inputs are ready."""
        if op.cpu_only:
            return "cpu"
        return op.placement or "cpu"

    def ratio_hint(self, ctx: ExecutionContext, op: PhysicalOperator,
                   device) -> Optional[float]:
        """Strategy-specific GPU work-fraction hint for split execution
        (:mod:`repro.engine.execution.split`), blended into the split
        cost model's ratio.  None means no opinion — the default for
        strategies with no data-placement knowledge."""
        return None

    def __repr__(self) -> str:
        return "<strategy {}>".format(getattr(self, "name", "?"))


def estimate_runtime(ctx: ExecutionContext, op: PhysicalOperator,
                     child_results: List[OperatorResult],
                     processor_name: str) -> float:
    """HyPE runtime estimate for load tracking and placement costing."""
    input_bytes = op.input_nominal_bytes(ctx.database, child_results)
    return ctx.cost_model.estimate(
        op.kind, processor_kind(processor_name), input_bytes
    )
