"""The *Critical Path* compile-time optimizer (Appendix D).

CoGaDB's default heuristic: a cost-based iterative refinement that only
considers plans where each leaf-to-root path runs entirely on one
processor (binary operators continue on the co-processor only if both
children ran there).  Starting from a pure CPU plan, leaves are
promoted to the GPU greedily; the globally cheapest assignment seen
wins — quadratic in the number of leaves.

Cardinalities are estimated by propagating sampled selectivities
through the plan, so transfer volumes for intermediate results are
realistic (the run-time strategies instead see exact sizes).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, NamedTuple

from repro.core.placement.base import PROCESSOR_KINDS, PlacementStrategy
from repro.engine.cardinality import estimate_selectivity
from repro.engine.operators import (
    GroupByAggregate,
    HashJoin,
    Materialize,
    PhysicalPlan,
    RefineSelect,
    ScanSelect,
    TidIntersect,
)
from repro.engine.operators.base import TID_BYTES


class _OpEstimate(NamedTuple):
    """Compile-time size estimates for one operator."""

    input_bytes: float
    out_rows: float
    out_bytes: float


class CriticalPath(PlacementStrategy):
    """Iterative-refinement response-time optimizer."""

    name = "critical_path"
    #: iteration budget for plans with many leaves
    max_iterations = 20

    def prepare_plan(self, ctx, plan: PhysicalPlan) -> None:
        estimates = self._estimate_sizes(ctx, plan)
        leaves = plan.leaves
        current: FrozenSet[int] = frozenset()
        best_set = current
        best_cost = self._plan_cost(ctx, plan, current, estimates)
        # Plateau-tolerant greedy: promoting a single leaf often shows
        # no gain until its sibling follows (binary operators need both
        # children on the co-processor), so we always promote the
        # cheapest leaf and keep the globally best assignment seen.
        for _ in range(min(len(leaves), self.max_iterations)):
            best_candidate = None
            best_candidate_cost = float("inf")
            for leaf in leaves:
                if leaf.op_id in current:
                    continue
                candidate = current | {leaf.op_id}
                cost = self._plan_cost(ctx, plan, candidate, estimates)
                if cost < best_candidate_cost:
                    best_candidate = frozenset(candidate)
                    best_candidate_cost = cost
            if best_candidate is None:
                break
            current = best_candidate
            if best_candidate_cost < best_cost:
                best_cost = best_candidate_cost
                best_set = best_candidate
        placement = self._assignments(plan, best_set)
        for op in plan.operators:
            op.placement = placement[op.op_id]

    # -- size estimation ------------------------------------------------

    def _estimate_sizes(self, ctx, plan: PhysicalPlan) -> Dict[int, _OpEstimate]:
        """Propagate sampled selectivities through the plan once."""
        database = ctx.database
        estimates: Dict[int, _OpEstimate] = {}
        for op in plan.operators:  # post order
            children = [estimates[c.op_id] for c in op.children]
            if isinstance(op, ScanSelect):
                table = database.table(op.table)
                selectivity = estimate_selectivity(
                    database, op.table, op.predicate
                )
                out_rows = selectivity * table.nominal_rows
                out_bytes = (
                    out_rows * TID_BYTES if op.predicate is not None else 0.0
                )
                estimates[op.op_id] = _OpEstimate(
                    op.estimate_input_nominal_bytes(database),
                    out_rows, out_bytes,
                )
            elif isinstance(op, RefineSelect):
                (child,) = children
                selectivity = estimate_selectivity(
                    database, op.table, op.predicate
                )
                width = TID_BYTES + sum(
                    database.column(k).ctype.itemsize
                    for k in op.required_columns()
                )
                estimates[op.op_id] = _OpEstimate(
                    child.out_rows * width,
                    child.out_rows * selectivity,
                    child.out_rows * selectivity * TID_BYTES,
                )
            elif isinstance(op, TidIntersect):
                smaller = min(c.out_rows for c in children)
                estimates[op.op_id] = _OpEstimate(
                    sum(c.out_bytes for c in children),
                    smaller * 0.5,
                    smaller * 0.5 * TID_BYTES,
                )
            elif isinstance(op, HashJoin):
                probe, build = children
                build_rows = database.table(op.build_key.table).nominal_rows
                build_selectivity = (
                    min(build.out_rows / build_rows, 1.0) if build_rows else 1.0
                )
                key_width = database.column(op.probe_key.key).ctype.itemsize
                out_rows = probe.out_rows * build_selectivity
                estimates[op.op_id] = _OpEstimate(
                    (probe.out_rows + build.out_rows)
                    * (TID_BYTES + key_width),
                    out_rows,
                    out_rows * 2 * TID_BYTES,
                )
            elif isinstance(op, GroupByAggregate):
                (child,) = children
                width = TID_BYTES * (
                    len(op.group_refs) + max(len(op.aggregates), 1)
                )
                out_rows = min(child.out_rows, 10_000.0)
                estimates[op.op_id] = _OpEstimate(
                    child.out_rows * width, out_rows, out_rows * 2 * width
                )
            elif isinstance(op, Materialize):
                (child,) = children
                width = sum(
                    database.column(k).ctype.itemsize
                    for k in op.required_columns()
                ) or TID_BYTES
                estimates[op.op_id] = _OpEstimate(
                    child.out_rows * width,
                    child.out_rows,
                    child.out_rows * width,
                )
            else:  # Sort, Limit and friends: volume-preserving
                (child,) = children
                estimates[op.op_id] = _OpEstimate(
                    child.out_bytes, child.out_rows, child.out_bytes
                )
        return estimates

    # -- placement derivation ---------------------------------------------

    @staticmethod
    def _assignments(plan: PhysicalPlan,
                     gpu_leaves: FrozenSet[int]) -> Dict[int, str]:
        """Derive per-operator placement from the GPU leaf set.

        Paths continue on the GPU until an operator whose children are
        not all on the GPU (or a host-only operator) is reached.
        """
        placement: Dict[int, str] = {}
        for op in plan.operators:  # post order
            if op.cpu_only:
                placement[op.op_id] = "cpu"
            elif not op.children:
                placement[op.op_id] = (
                    "gpu" if op.op_id in gpu_leaves else "cpu"
                )
            else:
                all_gpu = all(
                    placement[c.op_id] == "gpu" for c in op.children
                )
                placement[op.op_id] = "gpu" if all_gpu else "cpu"
        return placement

    def _plan_cost(self, ctx, plan: PhysicalPlan,
                   gpu_leaves: FrozenSet[int],
                   estimates: Dict[int, _OpEstimate]) -> float:
        """Estimated response time of the plan under an assignment."""
        placement = self._assignments(plan, gpu_leaves)
        finish: Dict[int, float] = {}
        for op in plan.operators:  # post order
            ready = max((finish[c.op_id] for c in op.children), default=0.0)
            estimate = estimates[op.op_id]
            processor = placement[op.op_id]
            execution = ctx.cost_model.estimate(
                op.kind, PROCESSOR_KINDS[processor], estimate.input_bytes
            )
            transfer = 0.0
            if processor == "gpu":
                for key in op.required_columns():
                    if key not in ctx.gpu_cache:
                        column = ctx.database.column(key)
                        transfer += ctx.bus.transfer_time(column.nominal_bytes)
                for child in op.children:
                    if placement[child.op_id] != "gpu":
                        transfer += ctx.bus.transfer_time(
                            estimates[child.op_id].out_bytes
                        )
            else:
                for child in op.children:
                    if placement[child.op_id] == "gpu":
                        transfer += ctx.bus.transfer_time(
                            estimates[child.op_id].out_bytes
                        )
            finish[op.op_id] = ready + transfer + execution
        return finish[plan.root.op_id]
