"""Run-time operator placement via HyPE (Sec. 4).

Placement happens when an operator's inputs are available, so the
decision sees exact input cardinalities (no estimation error), actual
result locations (dynamic reaction to aborts), the current device heap
occupancy, and the load of every processor's ready queue.  With several
co-processors (Sec. 6.3) every device is a candidate.
"""

from __future__ import annotations

from repro.core.placement.base import PlacementStrategy, processor_kind


class RuntimeHype(PlacementStrategy):
    """Cost-based run-time placement (used standalone and by
    *Chopping*)."""

    name = "runtime"

    def choose_processor(self, ctx, op, child_results) -> str:
        if op.cpu_only:
            return "cpu"
        # re-snapshot the breaker penalties: a breaker that opened (or
        # half-opened) since the last placement must show up in the
        # load estimates this decision reads
        ctx.load.refresh()
        footprint = op.device_footprint_bytes(
            ctx.profile, ctx.database, child_results
        )
        input_bytes = op.input_nominal_bytes(ctx.database, child_results)
        best_name = "cpu"
        best_cost = self._estimated_cost(ctx, op, child_results, "cpu",
                                         input_bytes, None)
        for device in ctx.hardware.gpus:
            # Run-time placement sees the *current* device state
            # (Sec. 4): an operator whose footprint cannot fit right
            # now would only abort — skip the device.  A device whose
            # circuit breaker is open (too many injected transient
            # faults) would be skipped at execution anyway.
            if footprint > device.heap.available:
                continue
            if not ctx.resilience.available(device.name, ctx.env.now):
                continue
            cost = self._estimated_cost(ctx, op, child_results, device.name,
                                        input_bytes, device)
            if cost < best_cost:
                best_cost = cost
                best_name = device.name
        return best_name

    def _estimated_cost(self, ctx, op, child_results, name, input_bytes,
                        device):
        """exec estimate + pending transfers + ready-queue load.

        Transfers are scaled by the current PCIe queue length: under
        contention every copy waits behind the transfers already in
        flight, so chasing the faster processor across a congested bus
        is a losing move.
        """
        execution = ctx.cost_model.estimate(
            op.kind, processor_kind(name), input_bytes
        )
        transfer = 0.0
        if device is not None:
            for key in op.required_columns():
                if key not in device.cache:
                    column = ctx.database.column(key)
                    transfer += ctx.bus.transfer_time(column.nominal_bytes)
            for child in child_results:
                if child.location != name:
                    factor = 2.0 if child.location != "cpu" else 1.0
                    transfer += factor * ctx.bus.transfer_time(
                        child.nominal_bytes
                    )
        else:
            for child in child_results:
                if child.location != "cpu":
                    transfer += ctx.bus.transfer_time(child.nominal_bytes)
        transfer *= 1 + ctx.bus.queue_length
        load = ctx.load.estimated_completion(name)
        return execution + transfer + load


class SplitHype(RuntimeHype):
    """Run-time placement for intra-operator split execution.

    Identical cost-based choice to :class:`RuntimeHype`, with one
    relaxation: a device whose free heap covers only *part* of the
    operator's footprint stays a candidate, because the split executor
    (:mod:`repro.engine.execution.split`) can ship exactly the
    fraction that fits and stream the rest on the CPU.  The estimated
    device cost models the split: both sides run concurrently, so the
    operator finishes when the slower side does.
    """

    name = "split"

    #: a device must fit at least this fraction of the footprint to be
    #: worth splitting onto (mirrors split.MIN_SHARE)
    MIN_SHARE = 0.05

    def choose_processor(self, ctx, op, child_results) -> str:
        if op.cpu_only:
            return "cpu"
        ctx.load.refresh()
        footprint = op.device_footprint_bytes(
            ctx.profile, ctx.database, child_results
        )
        input_bytes = op.input_nominal_bytes(ctx.database, child_results)
        best_name = "cpu"
        best_cost = self._estimated_cost(ctx, op, child_results, "cpu",
                                         input_bytes, None)
        for device in ctx.hardware.gpus:
            capacity = (device.heap.available / footprint
                        if footprint > 0 else 1.0)
            if capacity < self.MIN_SHARE:
                continue  # not even a split share fits right now
            if not ctx.resilience.available(device.name, ctx.env.now):
                continue
            cost = self._split_cost(ctx, op, child_results, device,
                                    input_bytes, min(capacity, 1.0))
            if cost < best_cost:
                best_cost = cost
                best_name = device.name
        return best_name

    def _split_cost(self, ctx, op, child_results, device, input_bytes,
                    capacity):
        """Estimated makespan of splitting ``op`` onto ``device``."""
        t_cpu = ctx.cost_model.estimate(
            op.kind, processor_kind("cpu"), input_bytes)
        t_gpu = ctx.cost_model.estimate(
            op.kind, processor_kind(device.name), input_bytes)
        transfer = 0.0
        if not ctx.hardware.config.coupled:
            for key in op.required_columns():
                if key not in device.cache:
                    column = ctx.database.column(key)
                    transfer += ctx.bus.transfer_time(column.nominal_bytes)
            for child in child_results:
                if child.location != device.name:
                    transfer += ctx.bus.transfer_time(child.nominal_bytes)
            transfer *= 1 + ctx.bus.queue_length
        from repro.hype.models import SplitCostModel

        ratio = min(SplitCostModel.balance(t_cpu, t_gpu, transfer),
                    capacity)
        makespan = max(ratio * (t_gpu + transfer),
                       (1.0 - ratio) * t_cpu)
        load = max(ctx.load.estimated_completion("cpu"),
                   ctx.load.estimated_completion(device.name))
        return makespan + load
