"""Run-time operator placement via HyPE (Sec. 4).

Placement happens when an operator's inputs are available, so the
decision sees exact input cardinalities (no estimation error), actual
result locations (dynamic reaction to aborts), the current device heap
occupancy, and the load of every processor's ready queue.  With several
co-processors (Sec. 6.3) every device is a candidate.
"""

from __future__ import annotations

from repro.core.placement.base import PlacementStrategy, processor_kind


class RuntimeHype(PlacementStrategy):
    """Cost-based run-time placement (used standalone and by
    *Chopping*)."""

    name = "runtime"

    def choose_processor(self, ctx, op, child_results) -> str:
        if op.cpu_only:
            return "cpu"
        footprint = op.device_footprint_bytes(
            ctx.profile, ctx.database, child_results
        )
        input_bytes = op.input_nominal_bytes(ctx.database, child_results)
        best_name = "cpu"
        best_cost = self._estimated_cost(ctx, op, child_results, "cpu",
                                         input_bytes, None)
        for device in ctx.hardware.gpus:
            # Run-time placement sees the *current* device state
            # (Sec. 4): an operator whose footprint cannot fit right
            # now would only abort — skip the device.  A device whose
            # circuit breaker is open (too many injected transient
            # faults) would be skipped at execution anyway.
            if footprint > device.heap.available:
                continue
            if not ctx.resilience.available(device.name, ctx.env.now):
                continue
            cost = self._estimated_cost(ctx, op, child_results, device.name,
                                        input_bytes, device)
            if cost < best_cost:
                best_cost = cost
                best_name = device.name
        return best_name

    def _estimated_cost(self, ctx, op, child_results, name, input_bytes,
                        device):
        """exec estimate + pending transfers + ready-queue load.

        Transfers are scaled by the current PCIe queue length: under
        contention every copy waits behind the transfers already in
        flight, so chasing the faster processor across a congested bus
        is a losing move.
        """
        execution = ctx.cost_model.estimate(
            op.kind, processor_kind(name), input_bytes
        )
        transfer = 0.0
        if device is not None:
            for key in op.required_columns():
                if key not in device.cache:
                    column = ctx.database.column(key)
                    transfer += ctx.bus.transfer_time(column.nominal_bytes)
            for child in child_results:
                if child.location != name:
                    factor = 2.0 if child.location != "cpu" else 1.0
                    transfer += factor * ctx.bus.transfer_time(
                        child.nominal_bytes
                    )
        else:
            for child in child_results:
                if child.location != "cpu":
                    transfer += ctx.bus.transfer_time(child.nominal_bytes)
        transfer *= 1 + ctx.bus.queue_length
        load = ctx.load.estimated_completion(name)
        return execution + transfer + load
