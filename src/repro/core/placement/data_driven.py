"""Data-driven operator placement (Sec. 3).

Operators run on a co-processor if and only if every base column they
read is resident in that device's (pinned) cache and every child
operator also ran there; the first operator violating the rule switches
the chain to the CPU, and everything above stays on the CPU.  Device
cache content is owned exclusively by the
:class:`~repro.core.data_placement.DataPlacementManager`.

With several co-processors (Sec. 6.3), the placement manager partitions
the hot columns across the devices and the rule picks the device
holding the operator's inputs — the horizontal scale-out the paper
sketches.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.placement.base import PlacementStrategy


def _eligible_device(ctx, op, child_locations: List[str]) -> Optional[str]:
    """The co-processor the data-driven rule allows, if any.

    All required base columns must be cached on the device and every
    (location-constrained) child must reside there too.  Children whose
    location is None are *neutral* — zero-size metadata results (bare
    scans) that follow their parent for free.
    """
    required = op.required_columns()
    constrained = [loc for loc in child_locations if loc is not None]
    if any(loc == "cpu" for loc in constrained):
        return None  # a child already fell to the CPU: the chain ended
    preferred = set(constrained)
    candidates = [
        device.name
        for device in ctx.hardware.gpus
        if all(key in device.cache for key in required)
        # a device with an open circuit breaker is off-limits even when
        # it holds the data — the chain degrades to the CPU instead
        and ctx.resilience.available(device.name, ctx.env.now)
    ]
    if not candidates:
        return None
    # Stay where the children already are if possible; otherwise hop to
    # the device holding this operator's columns — intermediates after
    # the selective joins are small, so the device switch is cheap (the
    # same argument the paper makes for switching back to the CPU).
    for name in candidates:
        if name in preferred:
            return name
    return candidates[0]


def _runtime_location(result) -> Optional[str]:
    """A child's placement constraint at run time (None = neutral)."""
    if result.nominal_bytes == 0:
        return None
    return result.location


def _compile_location(child_op) -> Optional[str]:
    """A child's placement constraint at compile time (None = neutral)."""
    if not child_op.required_columns() and not child_op.children:
        # bare scan: produces a zero-size metadata result
        return None
    return child_op.placement


class DataDrivenCompile(PlacementStrategy):
    """Compile-time data-driven placement (the *Data-Driven* line)."""

    name = "data_driven"
    admit_to_cache = False
    uses_data_placement = True

    def prepare_plan(self, ctx, plan) -> None:
        for op in plan.operators:  # post order: children assigned first
            if op.cpu_only:
                op.placement = "cpu"
                continue
            child_locations = [
                _compile_location(child) for child in op.children
            ]
            device = _eligible_device(ctx, op, child_locations)
            op.placement = device if device is not None else "cpu"

    def ratio_hint(self, ctx, op, device):
        return _cached_fraction(ctx, op, device)


def _cached_fraction(ctx, op, device) -> Optional[float]:
    """Fraction of the operator's required column bytes resident in
    ``device``'s cache — the data-driven split-ratio hint: work should
    flow to where the data already lives."""
    required = sorted(op.required_columns())
    if not required:
        return None
    total = 0
    resident = 0
    for key in required:
        nbytes = ctx.database.column(key).nominal_bytes
        total += nbytes
        if key in device.cache:
            resident += nbytes
    if total == 0:
        return None
    return resident / total


class DataDrivenRuntime(PlacementStrategy):
    """The data-driven rule applied at run time (used by *Data-Driven
    Chopping*): identical placement logic, but child locations are the
    *observed* ones, so the strategy reacts to aborts — once a child
    fell back to the CPU, the rest of the query stays there
    (Sec. 5.4)."""

    name = "data_driven_runtime"
    admit_to_cache = False
    uses_data_placement = True

    def choose_processor(self, ctx, op, child_results) -> str:
        if op.cpu_only:
            return "cpu"
        child_locations = [
            _runtime_location(result) for result in child_results
        ]
        device = _eligible_device(ctx, op, child_locations)
        return device if device is not None else "cpu"

    def ratio_hint(self, ctx, op, device):
        return _cached_fraction(ctx, op, device)
