"""Operator placement strategies.

The registry maps the paper's strategy names to implementations:

========================  ==========  ============  ====================
name                      placement   executor      data placement
========================  ==========  ============  ====================
``cpu_only``              compile     eager         —
``gpu_only``              compile     eager         operator-driven
``critical_path``         compile     eager         operator-driven
``data_driven``           compile     eager         data-driven (pinned)
``runtime``               run time    eager         operator-driven
``chopping``              run time    thread pool   operator-driven
``data_driven_chopping``  run time    thread pool   data-driven (pinned)
``admission_control``     compile     eager         operator-driven,
                                                    one query at a time
========================  ==========  ============  ====================
"""

from repro.core.placement.base import PlacementStrategy
from repro.core.placement.compile_time import (
    AdmissionControlGpu,
    CpuOnly,
    GpuPreferred,
)
from repro.core.placement.critical_path import CriticalPath
from repro.core.placement.data_driven import DataDrivenCompile, DataDrivenRuntime
from repro.core.placement.runtime import RuntimeHype, SplitHype

_REGISTRY = {
    "cpu_only": CpuOnly,
    "gpu_only": GpuPreferred,
    "gpu_preferred": GpuPreferred,
    "critical_path": CriticalPath,
    "data_driven": DataDrivenCompile,
    "runtime": RuntimeHype,
    "chopping": lambda: RuntimeHype(executor="chopping", name="chopping"),
    "data_driven_chopping": lambda: DataDrivenRuntime(
        executor="chopping", name="data_driven_chopping"
    ),
    "admission_control": AdmissionControlGpu,
    "split": SplitHype,
}

#: Canonical strategy names, in the order the paper's figures use.
STRATEGY_NAMES = (
    "cpu_only",
    "gpu_only",
    "critical_path",
    "data_driven",
    "runtime",
    "chopping",
    "data_driven_chopping",
    "admission_control",
    "split",
)


def get_strategy(name: str) -> PlacementStrategy:
    """Instantiate a placement strategy by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            "unknown strategy {!r}; choose from {}".format(
                name, sorted(_REGISTRY)
            )
        )
    return factory()


__all__ = [
    "AdmissionControlGpu",
    "CpuOnly",
    "CriticalPath",
    "DataDrivenCompile",
    "DataDrivenRuntime",
    "GpuPreferred",
    "PlacementStrategy",
    "RuntimeHype",
    "SplitHype",
    "STRATEGY_NAMES",
    "get_strategy",
]
