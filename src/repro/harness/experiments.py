"""Per-figure experiment drivers.

Every figure of the paper's evaluation has a ``figureNN`` function here
returning an :class:`ExperimentResult` whose rows are the series the
paper plots.  The drivers accept scale knobs (repetitions, sweep
points) so the benchmark suite can trade fidelity for wall time; the
defaults are sized to finish in seconds while preserving the paper's
shapes.

Each driver describes its measurement grid as a list of declarative
:class:`~repro.harness.parallel.Cell` specs and executes them through
:func:`~repro.harness.parallel.run_cells` — sequentially by default, or
fanned out over worker processes with ``jobs=N`` (also settable
globally via ``--jobs`` on the CLI / ``REPRO_JOBS`` in the
environment).  Cell order fixes row order, so the printed tables are
identical for any worker count.

Setting ``REPRO_FAST=1`` shrinks every sweep grid (endpoints only,
single repetition) for CI smoke runs.

The micro-benchmark platform follows Sec. 2.3/3.4: a device where
roughly 5 GiB of heap are available, so that with the 3.25x selection
footprint about seven parallel queries fit.  The full-workload
platform is the paper's GTX 770 (4 GiB device memory).
"""

from __future__ import annotations

import functools
import os
from typing import Optional, Sequence, Tuple

from repro.engine import caches, kernels, plan_cache  # noqa: F401
from repro.hardware import SystemConfig
from repro.hardware.calibration import COGADB_PROFILE, GIB, OCELOT_PROFILE
from repro.harness.parallel import Cell, clear_workload_cache, run_cells
from repro.harness.tables import ExperimentResult
from repro.storage import Database
from repro.workloads import ssb, tpch

#: Default reduction of actual vs. nominal data (see DESIGN.md §2).
DATA_SCALE = 1e-4

#: Environment knob: shrink every grid for CI smoke runs.
FAST_ENV = "REPRO_FAST"

#: Full-workload platform: the paper's GTX 770 (4 GiB device memory),
#: 1.5 GiB of it used as column cache, the rest as operator heap.
FULL_CONFIG = SystemConfig(
    gpu_memory_bytes=4 * GIB, gpu_cache_bytes=int(1.5 * GIB)
)

#: Micro-benchmark platform (Sec. 3.4 assumes ~5 GB of device heap).
MICRO_CONFIG = SystemConfig(
    gpu_memory_bytes=int(5.75 * GIB), gpu_cache_bytes=int(0.5 * GIB)
)


def fast_mode() -> bool:
    """True when ``REPRO_FAST`` asks for shrunken smoke-test grids."""
    return os.environ.get(FAST_ENV, "") not in ("", "0")


def _grid(values: Sequence) -> Tuple:
    """A sweep axis, reduced to its endpoints under ``REPRO_FAST``."""
    values = tuple(values)
    if fast_mode() and len(values) > 2:
        return (values[0], values[-1])
    return values


def _reps(repetitions: int) -> int:
    """Repetition count, capped at 1 under ``REPRO_FAST``."""
    return 1 if fast_mode() else repetitions


@functools.lru_cache(maxsize=8)
def ssb_database(scale_factor: float, data_scale: float = DATA_SCALE) -> Database:
    """Cached SSB database (deterministic)."""
    return ssb.generate(scale_factor, data_scale=data_scale)


@functools.lru_cache(maxsize=8)
def tpch_database(scale_factor: float, data_scale: float = DATA_SCALE) -> Database:
    """Cached TPC-H database (deterministic)."""
    return tpch.generate(scale_factor, data_scale=data_scale)


def clear_database_caches() -> None:
    """Drop every cached database, workload, and memoised plan result.

    Up to 8 full databases per generator can accumulate in a process
    (16 with the per-cell workload cache on top); long pytest sessions
    and pooled worker processes call this between phases to keep the
    footprint flat.
    """
    ssb_database.cache_clear()
    tpch_database.cache_clear()
    clear_workload_cache()
    # Registry-wide: plan cache, kernel cache (join indexes and zone
    # maps), and anything registered later.
    caches.invalidate_all()


# ---------------------------------------------------------------------------
# Figure 1 — query execution strategies on SSB Q3.3
# ---------------------------------------------------------------------------

def figure01(scale_factor: float = 20, repetitions: int = 5,
             jobs: Optional[int] = None) -> ExperimentResult:
    """CPU vs. GPU (cold cache) vs. GPU (hot cache) for SSB Q3.3."""
    repetitions = _reps(repetitions)
    result = ExperimentResult(
        "Figure 1: SSB Q3.3 execution strategies (SF {})".format(scale_factor),
        notes="GPU with cold cache is slower than the CPU; hot cache wins.",
    )
    cases = [
        ("cpu", "cpu_only", False),
        ("gpu (cold cache)", "gpu_only", False),
        ("gpu (hot cache)", "gpu_only", True),
    ]
    cells = [
        Cell(
            workload="ssb", scale_factor=scale_factor, strategy=strategy,
            config=FULL_CONFIG, repetitions=repetitions, warm_cache=warm,
            query_names=("Q3.3",),
        )
        for _, strategy, warm in cases
    ]
    for (label, _, _), outcome in zip(cases, run_cells(cells, jobs)):
        result.add(
            strategy=label,
            seconds=outcome.mean_latency("Q3.3"),
            h2d_seconds=outcome.h2d_seconds / repetitions,
        )
    return result


# ---------------------------------------------------------------------------
# Figures 2, 5, 6 — serial selection workload vs. GPU buffer size
# ---------------------------------------------------------------------------

def buffer_size_sweep(
    strategies: Sequence[str] = ("gpu_only", "data_driven"),
    buffer_gib: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 1.75, 2.0, 2.25, 2.5),
    scale_factor: float = 10,
    repetitions: int = 10,
    title: str = "Serial selection workload vs. GPU buffer size",
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """The cache-thrashing micro benchmark (Appendix B.1).

    The working set is eight lineorder columns (1.9 GB at SF 10);
    operator-driven placement thrashes whenever the buffer is smaller.
    """
    buffer_gib = _grid(buffer_gib)
    repetitions = _reps(repetitions)
    grid = [(strategy, gib) for strategy in strategies for gib in buffer_gib]
    cells = [
        Cell(
            workload="micro_serial", scale_factor=scale_factor,
            strategy=strategy,
            config=SystemConfig(
                gpu_memory_bytes=4 * GIB,
                gpu_cache_bytes=int(gib * GIB),
            ),
            repetitions=repetitions,
        )
        for strategy, gib in grid
    ]
    result = ExperimentResult(title)
    for (strategy, gib), outcome in zip(grid, run_cells(cells, jobs)):
        result.add(
            strategy=strategy,
            buffer_gib=gib,
            seconds=outcome.seconds,
            h2d_seconds=outcome.h2d_seconds,
            d2h_seconds=outcome.d2h_seconds,
            cache_hit_rate=outcome.cache_hit_rate,
            aborts=outcome.aborts,
        )
    return result


def figure02(**kwargs) -> ExperimentResult:
    """Cache thrashing: operator-driven placement only (Fig. 2)."""
    kwargs.setdefault("strategies", ("gpu_only",))
    kwargs.setdefault(
        "title",
        "Figure 2: selection workload, operator-driven placement "
        "(cache thrashing)",
    )
    return buffer_size_sweep(**kwargs)


def figure05(**kwargs) -> ExperimentResult:
    """Data-driven placement avoids the degradation (Fig. 5)."""
    kwargs.setdefault("strategies", ("gpu_only", "data_driven"))
    kwargs.setdefault(
        "title", "Figure 5: selection workload, data-driven vs operator-driven"
    )
    return buffer_size_sweep(**kwargs)


def figure06(**kwargs) -> ExperimentResult:
    """Transfer time view of the same sweep (Fig. 6)."""
    kwargs.setdefault(
        "title", "Figure 6: data transfer time in the selection workload"
    )
    return buffer_size_sweep(**kwargs)


# ---------------------------------------------------------------------------
# Figures 3, 7, 9, 12, 13 — parallel selection workload vs. #users
# ---------------------------------------------------------------------------

def micro_users_sweep(
    strategies: Sequence[str] = ("gpu_only",),
    users: Sequence[int] = (1, 2, 4, 6, 7, 8, 10, 12, 16, 20),
    scale_factor: float = 10,
    total_queries: int = 100,
    title: str = "Parallel selection workload vs. #users",
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """The heap-contention micro benchmark (Appendix B.2).

    One query with a 744 MiB first-operator footprint; about seven fit
    the ~5 GiB heap, so contention sets in beyond that.
    """
    users = _grid(users)
    if fast_mode():
        total_queries = min(total_queries, 30)
    grid = [(strategy, n_users) for strategy in strategies for n_users in users]
    cells = [
        Cell(
            workload="micro_parallel", scale_factor=scale_factor,
            strategy=strategy, config=MICRO_CONFIG,
            users=n_users, repetitions=total_queries,
        )
        for strategy, n_users in grid
    ]
    result = ExperimentResult(title)
    for (strategy, n_users), outcome in zip(grid, run_cells(cells, jobs)):
        result.add(
            strategy=strategy,
            users=n_users,
            seconds=outcome.seconds,
            h2d_seconds=outcome.h2d_seconds,
            d2h_seconds=outcome.d2h_seconds,
            aborts=outcome.aborts,
            wasted_seconds=outcome.wasted_seconds,
        )
    return result


def figure03(**kwargs) -> ExperimentResult:
    kwargs.setdefault("strategies", ("gpu_only",))
    kwargs.setdefault(
        "title",
        "Figure 3: parallel selection workload (heap contention, "
        "operator-driven)",
    )
    return micro_users_sweep(**kwargs)


def figure07(**kwargs) -> ExperimentResult:
    kwargs.setdefault("strategies", ("gpu_only", "data_driven"))
    kwargs.setdefault(
        "title",
        "Figure 7: Data-Driven does not solve heap contention",
    )
    return micro_users_sweep(**kwargs)


def figure09(**kwargs) -> ExperimentResult:
    kwargs.setdefault("strategies", ("gpu_only", "runtime"))
    kwargs.setdefault(
        "title",
        "Figure 9: run-time placement improves but is not optimal",
    )
    return micro_users_sweep(**kwargs)


def figure12(**kwargs) -> ExperimentResult:
    kwargs.setdefault(
        "strategies", ("gpu_only", "runtime", "chopping", "data_driven_chopping")
    )
    kwargs.setdefault(
        "title", "Figure 12: Chopping achieves near-optimal performance"
    )
    return micro_users_sweep(**kwargs)


def figure13(**kwargs) -> ExperimentResult:
    kwargs.setdefault(
        "strategies", ("gpu_only", "runtime", "chopping")
    )
    kwargs.setdefault(
        "title", "Figure 13: operator aborts per strategy"
    )
    return micro_users_sweep(**kwargs)


# ---------------------------------------------------------------------------
# Figures 14, 15, 16 — scaling the database size
# ---------------------------------------------------------------------------

#: The strategy set of Sec. 6.2.
FULL_WORKLOAD_STRATEGIES = (
    "cpu_only",
    "gpu_only",
    "critical_path",
    "data_driven",
    "chopping",
    "data_driven_chopping",
)


def scale_factor_sweep(
    benchmark: str = "ssb",
    scale_factors: Sequence[float] = (5, 10, 15, 20, 30),
    strategies: Sequence[str] = FULL_WORKLOAD_STRATEGIES,
    repetitions: int = 2,
    title: Optional[str] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Workload time / transfer time / footprint vs. scale factor."""
    scale_factors = _grid(scale_factors)
    repetitions = _reps(repetitions)
    grid = [
        (scale_factor, strategy)
        for scale_factor in scale_factors
        for strategy in strategies
    ]
    cells = [
        Cell(
            workload=benchmark, scale_factor=scale_factor, strategy=strategy,
            config=FULL_CONFIG, repetitions=repetitions,
        )
        for scale_factor, strategy in grid
    ]
    result = ExperimentResult(
        title or "Scale factor sweep ({})".format(benchmark)
    )
    for (scale_factor, strategy), outcome in zip(grid, run_cells(cells, jobs)):
        result.add(
            benchmark=benchmark,
            scale_factor=scale_factor,
            strategy=strategy,
            seconds=outcome.seconds,
            h2d_seconds=outcome.h2d_seconds,
            d2h_seconds=outcome.d2h_seconds,
            aborts=outcome.aborts,
            footprint_gib=outcome.footprint_bytes / GIB,
        )
    return result


def figure14(benchmark: str = "ssb", **kwargs) -> ExperimentResult:
    kwargs.setdefault(
        "title",
        "Figure 14: workload execution time vs. scale factor "
        "({})".format(benchmark),
    )
    return scale_factor_sweep(benchmark, **kwargs)


def figure15(benchmark: str = "ssb", **kwargs) -> ExperimentResult:
    kwargs.setdefault(
        "title",
        "Figure 15: CPU->GPU transfer time vs. scale factor "
        "({})".format(benchmark),
    )
    return scale_factor_sweep(benchmark, **kwargs)


def figure16(
    benchmarks: Sequence[str] = ("ssb", "tpch"),
    scale_factors: Sequence[float] = (5, 10, 15, 20, 30),
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Workload memory footprint vs. scale factor (no execution)."""
    scale_factors = _grid(scale_factors)
    grid = [
        (benchmark, scale_factor)
        for benchmark in benchmarks
        for scale_factor in scale_factors
    ]
    cells = [
        Cell(workload=benchmark, scale_factor=scale_factor,
             measure="footprint")
        for benchmark, scale_factor in grid
    ]
    result = ExperimentResult(
        "Figure 16: memory footprint of the workloads",
        notes="The GPU data cache is {} GiB.".format(
            FULL_CONFIG.gpu_cache_bytes / GIB
        ),
    )
    for (benchmark, scale_factor), outcome in zip(grid, run_cells(cells, jobs)):
        footprint = outcome.footprint_bytes
        result.add(
            benchmark=benchmark,
            scale_factor=scale_factor,
            footprint_gib=footprint / GIB,
            exceeds_cache=footprint > FULL_CONFIG.gpu_cache_bytes,
        )
    return result


# ---------------------------------------------------------------------------
# Figure 17 — selected SSB queries at scale factor 30, single user
# ---------------------------------------------------------------------------

def query_latencies(
    benchmark: str = "ssb",
    scale_factor: float = 30,
    strategies: Sequence[str] = (
        "cpu_only", "gpu_only", "critical_path", "data_driven_chopping"
    ),
    users: int = 1,
    repetitions: int = 3,
    query_names: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Mean per-query latency per strategy."""
    repetitions = _reps(repetitions)
    cells = [
        Cell(
            workload=benchmark, scale_factor=scale_factor, strategy=strategy,
            config=FULL_CONFIG, users=users, repetitions=repetitions,
            query_names=tuple(query_names) if query_names is not None else None,
        )
        for strategy in strategies
    ]
    result = ExperimentResult(
        title
        or "Per-query latencies ({}, SF {}, {} users)".format(
            benchmark, scale_factor, users
        )
    )
    for strategy, outcome in zip(strategies, run_cells(cells, jobs)):
        for name, latency in outcome.latencies.items():
            result.add(
                query=name, strategy=strategy, seconds=latency
            )
    return result


def figure17(**kwargs) -> ExperimentResult:
    kwargs.setdefault(
        "title",
        "Figure 17: SSB query execution times, single user, SF 30",
    )
    return query_latencies(**kwargs)


# ---------------------------------------------------------------------------
# Figures 18, 19, 20 — scaling user parallelism on the full workloads
# ---------------------------------------------------------------------------

def benchmark_users_sweep(
    benchmark: str = "ssb",
    scale_factor: float = 10,
    users: Sequence[int] = (1, 5, 10, 15, 20),
    strategies: Sequence[str] = (
        "gpu_only", "data_driven", "chopping", "data_driven_chopping"
    ),
    repetitions: int = 3,
    title: Optional[str] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Workload time, transfer time, aborts and wasted time vs. #users."""
    users = _grid(users)
    repetitions = _reps(repetitions)
    grid = [(strategy, n_users) for strategy in strategies for n_users in users]
    cells = [
        Cell(
            workload=benchmark, scale_factor=scale_factor, strategy=strategy,
            config=FULL_CONFIG, users=n_users, repetitions=repetitions,
        )
        for strategy, n_users in grid
    ]
    result = ExperimentResult(
        title
        or "User parallelism sweep ({}, SF {})".format(benchmark, scale_factor)
    )
    for (strategy, n_users), outcome in zip(grid, run_cells(cells, jobs)):
        result.add(
            benchmark=benchmark,
            strategy=strategy,
            users=n_users,
            seconds=outcome.seconds,
            h2d_seconds=outcome.h2d_seconds,
            d2h_seconds=outcome.d2h_seconds,
            aborts=outcome.aborts,
            wasted_seconds=outcome.wasted_seconds,
        )
    return result


def figure18(benchmark: str = "ssb", **kwargs) -> ExperimentResult:
    kwargs.setdefault(
        "title",
        "Figure 18: workload execution time vs. #users ({})".format(benchmark),
    )
    return benchmark_users_sweep(benchmark, **kwargs)


def figure19(benchmark: str = "ssb", **kwargs) -> ExperimentResult:
    kwargs.setdefault(
        "title",
        "Figure 19: CPU->GPU transfer time vs. #users ({})".format(benchmark),
    )
    return benchmark_users_sweep(benchmark, **kwargs)


def figure20(**kwargs) -> ExperimentResult:
    kwargs.setdefault(
        "title", "Figure 20: wasted time of aborted GPU operators (SSB)"
    )
    return benchmark_users_sweep("ssb", **kwargs)


# ---------------------------------------------------------------------------
# Figure 21 / 25 — query latencies under parallel users
# ---------------------------------------------------------------------------

def figure21(**kwargs) -> ExperimentResult:
    kwargs.setdefault("scale_factor", 10)
    kwargs.setdefault("users", 20)
    kwargs.setdefault(
        "strategies",
        ("gpu_only", "admission_control", "chopping", "data_driven_chopping"),
    )
    kwargs.setdefault(
        "title", "Figure 21: SSB query latencies, 20 users, SF 10"
    )
    return query_latencies(**kwargs)


def figure25(
    users: Sequence[int] = (1, 5, 10, 20),
    strategies: Sequence[str] = (
        "gpu_only", "admission_control", "chopping", "data_driven_chopping"
    ),
    scale_factor: float = 10,
    repetitions: int = 2,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Latencies of all SSB queries for a varying number of users."""
    users = _grid(users)
    repetitions = _reps(repetitions)
    grid = [(strategy, n_users) for strategy in strategies for n_users in users]
    cells = [
        Cell(
            workload="ssb", scale_factor=scale_factor, strategy=strategy,
            config=FULL_CONFIG, users=n_users, repetitions=repetitions,
        )
        for strategy, n_users in grid
    ]
    result = ExperimentResult(
        "Figure 25: SSB query latencies vs. #users (SF {})".format(scale_factor)
    )
    for (strategy, n_users), outcome in zip(grid, run_cells(cells, jobs)):
        for name, latency in outcome.latencies.items():
            result.add(
                query=name, strategy=strategy, users=n_users,
                seconds=latency,
            )
    return result


# ---------------------------------------------------------------------------
# Figures 22, 23 — engine comparison (CoGaDB vs. Ocelot profile)
# ---------------------------------------------------------------------------

def engine_comparison(
    benchmark: str,
    scale_factor: float = 10,
    repetitions: int = 3,
    title: Optional[str] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Per-query CPU and GPU backend latencies for both engine profiles.

    Substitution (DESIGN.md §2): Ocelot is modelled as a second
    calibration profile on the same simulated hardware.
    """
    repetitions = _reps(repetitions)
    result = ExperimentResult(
        title
        or "Engine comparison on {} (SF {})".format(benchmark, scale_factor),
        notes="Configuration without thrashing or contention (App. A): "
              "a device large enough to hold the working set.",
    )
    # The appendix explicitly measures raw query-processing power in a
    # configuration where neither cache thrashing nor heap contention
    # occurs — model that with a roomy device.
    roomy = SystemConfig(gpu_memory_bytes=8 * GIB, gpu_cache_bytes=5 * GIB)
    grid = [
        (profile, backend, strategy)
        for profile in (COGADB_PROFILE, OCELOT_PROFILE)
        for backend, strategy in (("cpu", "cpu_only"), ("gpu", "gpu_only"))
    ]
    cells = [
        Cell(
            workload=benchmark, scale_factor=scale_factor, strategy=strategy,
            config=roomy.with_profile(profile), repetitions=repetitions,
        )
        for profile, backend, strategy in grid
    ]
    for (profile, backend, _), outcome in zip(grid, run_cells(cells, jobs)):
        for name, latency in outcome.latencies.items():
            result.add(
                query=name,
                engine=profile.name,
                backend=backend,
                seconds=latency,
            )
    return result


def figure22(**kwargs) -> ExperimentResult:
    kwargs.setdefault(
        "title", "Figure 22: TPC-H per-query times, CoGaDB vs Ocelot profile"
    )
    return engine_comparison("tpch", **kwargs)


def figure23(**kwargs) -> ExperimentResult:
    kwargs.setdefault(
        "title", "Figure 23: SSB per-query times, CoGaDB vs Ocelot profile"
    )
    return engine_comparison("ssb", **kwargs)


# ---------------------------------------------------------------------------
# Extension: multiple co-processors (Sec. 6.3 scale-up discussion)
# ---------------------------------------------------------------------------

def multi_gpu_scaling(
    benchmark: str = "ssb",
    scale_factor: float = 30,
    gpu_counts: Sequence[int] = (1, 2, 4),
    strategies: Sequence[str] = ("data_driven_chopping", "chopping"),
    users: int = 10,
    repetitions: int = 2,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Scale-up with several co-processors.

    Sec. 6.3: "it is common to use multiple GPUs in a single machine,
    which can handle larger databases and more parallel users...  Our
    Data-Driven strategy can support multiple co-processors by
    performing horizontal partitioning."  The placement manager
    partitions the hot columns across the devices; data-driven chopping
    sends each operator to the device holding its inputs.
    """
    gpu_counts = _grid(gpu_counts)
    repetitions = _reps(repetitions)
    grid = [
        (strategy, gpu_count)
        for strategy in strategies
        for gpu_count in gpu_counts
    ]
    cells = [
        Cell(
            workload=benchmark, scale_factor=scale_factor, strategy=strategy,
            config=SystemConfig(
                gpu_count=gpu_count,
                gpu_memory_bytes=FULL_CONFIG.gpu_memory_bytes,
                gpu_cache_bytes=FULL_CONFIG.gpu_cache_bytes,
            ),
            users=users, repetitions=repetitions,
        )
        for strategy, gpu_count in grid
    ]
    result = ExperimentResult(
        "Extension: multi-GPU scale-up ({}, SF {}, {} users)".format(
            benchmark, scale_factor, users
        )
    )
    for (strategy, gpu_count), outcome in zip(grid, run_cells(cells, jobs)):
        gpu_ops = sum(
            count
            for name, count in outcome.operators_per_processor.items()
            if name != "cpu"
        )
        result.add(
            strategy=strategy,
            gpus=gpu_count,
            seconds=outcome.seconds,
            h2d_seconds=outcome.h2d_seconds,
            aborts=outcome.aborts,
            gpu_operators=gpu_ops,
        )
    return result


# ---------------------------------------------------------------------------
# Figure 24 — LFU vs. LRU data placement
# ---------------------------------------------------------------------------

def figure24(
    fractions: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    policies: Sequence[str] = ("lru", "lfu"),
    scale_factor: float = 10,
    repetitions: int = 2,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """SSB workload under Data-Driven with varying cache fraction.

    The fraction scales a 3.5 GiB budget so at least 0.5 GiB of heap
    remains for operator intermediates.
    """
    fractions = _grid(fractions)
    repetitions = _reps(repetitions)
    budget = 3.0 * GIB
    grid = [
        (policy, fraction) for policy in policies for fraction in fractions
    ]
    cells = [
        Cell(
            workload="ssb", scale_factor=scale_factor, strategy="data_driven",
            config=SystemConfig(
                gpu_memory_bytes=4 * GIB,
                gpu_cache_bytes=int(fraction * budget),
            ),
            repetitions=repetitions, placement_policy=policy,
        )
        for policy, fraction in grid
    ]
    result = ExperimentResult(
        "Figure 24: LFU vs LRU data placement (SSB, SF {})".format(scale_factor)
    )
    for (policy, fraction), outcome in zip(grid, run_cells(cells, jobs)):
        result.add(
            policy=policy,
            cache_fraction=fraction,
            seconds=outcome.seconds,
            h2d_seconds=outcome.h2d_seconds,
        )
    return result


# ---------------------------------------------------------------------------
# Chaos — graceful degradation under injected faults
# ---------------------------------------------------------------------------

def chaos_sweep(
    fault_rates: Sequence[float] = (0.0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2),
    strategy: str = "runtime",
    scale_factor: float = 10,
    users: int = 2,
    repetitions: int = 2,
    seed: int = 7,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Degradation curve: SSB makespan vs. injected fault rate.

    Every faulted cell runs with ``validate=True`` — the correctness
    gate of the tentpole: faults cost time, never answers.  The final
    row is the CPU-only configuration, the asymptote a co-processor
    system degrades towards as its devices become unusable; graceful
    degradation means the faulted makespans stay bounded by (about)
    that floor instead of diverging or crashing.
    """
    from repro.faults import FaultConfig

    fault_rates = _grid(fault_rates)
    repetitions = _reps(repetitions)
    cells = [
        Cell(
            workload="ssb", scale_factor=scale_factor, strategy=strategy,
            config=FULL_CONFIG, users=users, repetitions=repetitions,
            faults=(FaultConfig.uniform(rate, seed=seed) if rate > 0
                    else None),
            validate=True,
        )
        for rate in fault_rates
    ]
    # the CPU-only floor: the latency bound a degraded system approaches
    cells.append(
        Cell(
            workload="ssb", scale_factor=scale_factor, strategy="cpu_only",
            config=FULL_CONFIG, users=users, repetitions=repetitions,
            validate=True,
        )
    )
    result = ExperimentResult(
        "Chaos: SSB under injected faults ({}, SF {})".format(
            strategy, scale_factor
        ),
        notes="results validated at every rate; cpu_only row is the "
              "degradation asymptote",
    )
    outcomes = run_cells(cells, jobs)
    for rate, outcome in zip(fault_rates, outcomes[:-1]):
        result.add(
            strategy=strategy,
            fault_rate=rate,
            seconds=outcome.seconds,
            faults_injected=outcome.faults_injected,
            retries=outcome.retries,
            aborts=outcome.aborts,
            breaker_opens=outcome.breaker_opens,
            breaker_half_opens=outcome.breaker_half_opens,
            breaker_closes=outcome.breaker_closes,
            breaker_skips=outcome.breaker_skips,
            wasted_seconds=outcome.wasted_seconds,
        )
    floor = outcomes[-1]
    result.add(
        strategy="cpu_only",
        fault_rate=float("nan"),
        seconds=floor.seconds,
        faults_injected=0,
        retries=0,
        aborts=floor.aborts,
        breaker_opens=0,
        breaker_half_opens=0,
        breaker_closes=0,
        breaker_skips=0,
        wasted_seconds=floor.wasted_seconds,
    )
    return result


# ---------------------------------------------------------------------------
# Extension — asynchronous copy engine: transfer/compute overlap
# ---------------------------------------------------------------------------

def overlap_sweep(
    benchmark: str = "ssb",
    scale_factor: float = 10,
    users: Sequence[int] = (1, 2, 4, 8),
    gpu_count: int = 2,
    strategy: str = "runtime",
    repetitions: int = 2,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Transfer-bound sweep: serialized bus vs. asynchronous copy engine.

    Every cell starts cold (``warm_cache=False``) so staging traffic
    dominates, the shape of Figs. 6/15 where the bus is the bottleneck.
    Each user count runs twice — once on the paper-faithful serialized
    single-channel bus, once with the copy engine's per-device duplex
    channels, coalescing, and placement-driven prefetch — and the table
    reports the speedup together with the new bus-accounting counters
    (queueing delay, overlap ratio, coalesce and prefetch-hit counts).
    """
    users = _grid(users)
    repetitions = _reps(repetitions)
    base_config = SystemConfig(
        gpu_count=gpu_count,
        gpu_memory_bytes=FULL_CONFIG.gpu_memory_bytes,
        gpu_cache_bytes=FULL_CONFIG.gpu_cache_bytes,
    )
    grid = [(n_users, engine) for n_users in users
            for engine in (False, True)]
    cells = [
        Cell(
            workload=benchmark, scale_factor=scale_factor, strategy=strategy,
            config=base_config.with_copy_engine(engine),
            users=n_users, repetitions=repetitions, warm_cache=False,
        )
        for n_users, engine in grid
    ]
    result = ExperimentResult(
        "Extension: copy-engine overlap sweep ({}, SF {}, {} GPUs)".format(
            benchmark, scale_factor, gpu_count
        )
    )
    outcomes = run_cells(cells, jobs)
    baseline_seconds = {}
    for (n_users, engine), outcome in zip(grid, outcomes):
        if not engine:
            baseline_seconds[n_users] = outcome.seconds
        result.add(
            users=n_users,
            copy_engine=engine,
            seconds=outcome.seconds,
            speedup=(baseline_seconds[n_users] / outcome.seconds
                     if outcome.seconds else float("nan")),
            h2d_seconds=outcome.h2d_seconds,
            queue_seconds=outcome.queue_seconds,
            overlap_ratio=outcome.overlap_ratio,
            coalesced=outcome.coalesced_transfers,
            prefetch_hits=outcome.prefetch_hits,
        )
    return result


# ---------------------------------------------------------------------------
# Extension — overload-safe query lifecycle
# ---------------------------------------------------------------------------

def overload_sweep(
    loads: Sequence[int] = (1, 2, 4, 8),
    strategy: str = "chopping",
    scale_factor: float = 10,
    repetitions: int = 2,
    max_inflight: int = 2,
    overload_policy: str = "queue",
    deadline_seconds: Optional[float] = None,
    hedge_factor: Optional[float] = 3.0,
    fault_rate: float = 0.02,
    seed: int = 7,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Overload sweep: tail latency with the query lifecycle off vs. on.

    Each load level (concurrent user sessions issuing the same fixed
    SSB workload) runs twice: once with the lifecycle layer off — the
    unbounded query stream the paper's executors accept — and once with
    admission control (``max_inflight``/``overload_policy``), optional
    per-query deadlines, and straggler hedging.  Faulted cells exercise
    the interplay with the fault-injection layer: retry storms create
    exactly the stragglers hedging is for.  Every cell validates its
    results, so the table doubles as the cancellation-correctness gate.
    """
    from repro.engine.execution import LifecycleConfig
    from repro.faults import FaultConfig

    loads = _grid(loads)
    repetitions = _reps(repetitions)
    lifecycle = LifecycleConfig(
        max_inflight=max_inflight,
        overload_policy=overload_policy,
        deadline_seconds=deadline_seconds,
        hedge_factor=hedge_factor,
    )
    faults = (FaultConfig.uniform(fault_rate, seed=seed)
              if fault_rate > 0 else None)
    grid = [(n_users, on) for n_users in loads for on in (False, True)]
    cells = [
        Cell(
            workload="ssb", scale_factor=scale_factor, strategy=strategy,
            config=FULL_CONFIG, users=n_users, repetitions=repetitions,
            faults=faults, lifecycle=(lifecycle if on else None),
            validate=True,
        )
        for n_users, on in grid
    ]
    result = ExperimentResult(
        "Extension: overload sweep ({}, SF {}, policy {})".format(
            strategy, scale_factor, overload_policy
        ),
        notes="results validated in every cell; 'lifecycle' toggles "
              "admission control, deadlines, and hedging",
    )
    for (n_users, on), outcome in zip(grid, run_cells(cells, jobs)):
        result.add(
            users=n_users,
            lifecycle="on" if on else "off",
            seconds=outcome.seconds,
            p50_latency=outcome.p50_latency,
            p99_latency=outcome.p99_latency,
            completed=outcome.completed,
            admission_waits=outcome.admission_waits,
            admission_wait_seconds=outcome.admission_wait_seconds,
            sheds=outcome.sheds,
            degraded=outcome.degraded_to_cpu,
            deadline_misses=outcome.deadline_misses,
            cancelled=outcome.cancelled,
            hedges=outcome.hedges,
            hedge_wins=outcome.hedge_wins,
        )
    return result
