"""Tabular experiment results, printed in the shape the paper reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class ExperimentResult:
    """Rows of measurements for one figure/table."""

    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def add(self, **measurements) -> None:
        self.rows.append(measurements)

    def columns(self) -> List[str]:
        seen: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        return seen

    def series(self, x: str, y: str, by: str) -> Dict[object, List[tuple]]:
        """Group rows into (x, y) series keyed by the ``by`` column —
        the same series a paper figure plots."""
        grouped: Dict[object, List[tuple]] = {}
        for row in self.rows:
            grouped.setdefault(row.get(by), []).append(
                (row.get(x), row.get(y))
            )
        for points in grouped.values():
            points.sort(key=lambda p: (p[0] is None, p[0]))
        return grouped

    def column_values(self, name: str) -> List[object]:
        return [row.get(name) for row in self.rows]

    def format_table(self, float_digits: int = 4) -> str:
        """Aligned plain-text table."""
        columns = self.columns()
        rendered: List[List[str]] = [columns]
        for row in self.rows:
            cells = []
            for column in columns:
                value = row.get(column, "")
                if isinstance(value, float):
                    cells.append("{:.{}f}".format(value, float_digits))
                else:
                    cells.append(str(value))
            rendered.append(cells)
        widths = [
            max(len(line[i]) for line in rendered) for i in range(len(columns))
        ]
        lines = [self.title]
        if self.notes:
            lines.append(self.notes)
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(rendered[0]))
        )
        lines.append("  ".join("-" * w for w in widths))
        for cells in rendered[1:]:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
            )
        return "\n".join(lines)

    def print(self) -> None:
        print(self.format_table())
        print()
