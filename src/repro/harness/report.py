"""Reproduction report generator.

Runs the headline experiments and renders a markdown table comparing
each paper claim with the freshly measured value — the same structure
as EXPERIMENTS.md, regenerated from live runs so drift between code
and documentation is detectable (`python -m repro report`).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.harness import experiments as E


@dataclass
class Claim:
    """One paper claim with its measurement."""

    figure: str
    claim: str
    paper_value: str
    measure: Callable[[Dict], float]
    render: str  # format string applied to the measured value
    holds: Callable[[float], bool]


@contextmanager
def _pinned_grids():
    """The claims index exact sweep points (SF 15, 20 users, ...), so
    REPRO_FAST grid clipping must not apply here; the report's own
    ``fast`` knob bounds its cost instead."""
    saved = os.environ.pop(E.FAST_ENV, None)
    try:
        yield
    finally:
        if saved is not None:
            os.environ[E.FAST_ENV] = saved


def _collect_measurements(fast: bool = True) -> Dict:
    """Run the sweeps the claims draw from (shared across claims)."""
    scale = dict(repetitions=1) if fast else dict(repetitions=2)
    data: Dict = {}

    fig01 = E.figure01(scale_factor=20, **scale)
    data["fig01"] = {row["strategy"]: row["seconds"] for row in fig01.rows}
    fig01_sf10 = E.figure01(scale_factor=10, **scale)
    data["fig01_sf10"] = {
        row["strategy"]: row["seconds"] for row in fig01_sf10.rows
    }

    fig02 = E.figure02(buffer_gib=(0.0, 2.5),
                       repetitions=4 if fast else 10)
    data["fig02"] = dict(
        fig02.series("buffer_gib", "seconds", "strategy")["gpu_only"]
    )

    sweep = E.micro_users_sweep(
        strategies=("gpu_only", "runtime", "chopping"),
        users=(4, 7, 20), total_queries=60 if fast else 100,
    )
    data["micro"] = {
        (row["strategy"], row["users"]): row for row in sweep.rows
    }

    scale_sweep = E.scale_factor_sweep(
        "ssb", scale_factors=(5, 15, 30),
        strategies=("cpu_only", "gpu_only", "data_driven_chopping"),
        repetitions=1,
    )
    data["scale"] = {
        (row["strategy"], row["scale_factor"]): row
        for row in scale_sweep.rows
    }

    fig17 = E.figure17(repetitions=1,
                       strategies=("cpu_only", "data_driven_chopping"))
    table: Dict = {}
    for row in fig17.rows:
        table.setdefault(row["query"], {})[row["strategy"]] = row["seconds"]
    data["fig17"] = table

    users = E.benchmark_users_sweep(
        "ssb", users=(1, 20),
        strategies=("gpu_only", "chopping", "data_driven_chopping"),
        repetitions=1,
    )
    data["users"] = {
        (row["strategy"], row["users"]): row for row in users.rows
    }
    return data


CLAIMS: List[Claim] = [
    Claim(
        "Fig. 1", "GPU with cold cache is slower than the CPU (SF 20)",
        "~3x slower",
        lambda d: d["fig01"]["gpu (cold cache)"] / d["fig01"]["cpu"],
        "{:.2f}x slower", lambda v: v > 1.0,
    ),
    Claim(
        "Fig. 1", "hot-cache GPU accelerates the query (SF 10)",
        "~2.5x faster",
        lambda d: d["fig01_sf10"]["cpu"] / d["fig01_sf10"]["gpu (hot cache)"],
        "{:.2f}x faster", lambda v: v > 1.5,
    ),
    Claim(
        "Fig. 2", "cache thrashing degradation",
        "factor ~24",
        lambda d: d["fig02"][0.0] / d["fig02"][2.5],
        "factor {:.1f}", lambda v: v > 10,
    ),
    Claim(
        "Fig. 3", "heap contention degrades beyond ~7 users",
        "degradation past 7 users",
        lambda d: (d["micro"][("gpu_only", 20)]["seconds"]
                   / d["micro"][("gpu_only", 4)]["seconds"]),
        "{:.2f}x at 20 users", lambda v: v > 1.4,
    ),
    Claim(
        "Fig. 13", "aborts: compile-time > run-time > chopping (=0)",
        "monotone, chopping ~0",
        lambda d: d["micro"][("chopping", 20)]["aborts"],
        "chopping aborts = {:.0f}",
        lambda v: v == 0,
    ),
    Claim(
        "Fig. 14", "GPU-only falls behind from SF 15",
        "crossover at SF 15",
        lambda d: (d["scale"][("gpu_only", 15)]["seconds"]
                   / d["scale"][("cpu_only", 15)]["seconds"]),
        "{:.2f}x slower at SF 15", lambda v: v > 1.0,
    ),
    Claim(
        "Fig. 14", "Data-Driven Chopping never worse than CPU-only",
        "robustness",
        lambda d: max(
            d["scale"][("data_driven_chopping", sf)]["seconds"]
            / d["scale"][("cpu_only", sf)]["seconds"]
            for sf in (5, 15, 30)
        ),
        "worst ratio {:.2f}", lambda v: v <= 1.15,
    ),
    Claim(
        "Fig. 17", "high-selectivity Q3.4 accelerates at SF 30",
        "up to ~2.5x",
        lambda d: (d["fig17"]["Q3.4"]["cpu_only"]
                   / d["fig17"]["Q3.4"]["data_driven_chopping"]),
        "{:.2f}x", lambda v: v > 1.5,
    ),
    Claim(
        "Fig. 19", "Data-Driven Chopping slashes CPU->GPU IO at 20 users",
        "factor 48",
        lambda d: min(
            d["users"][("gpu_only", 20)]["h2d_seconds"]
            / max(d["users"][("data_driven_chopping", 20)]["h2d_seconds"],
                  1e-9),
            9999.0,  # a zero denominator means "all IO eliminated"
        ),
        "factor {:.0f}+", lambda v: v > 10,
    ),
    Claim(
        "Fig. 20", "Chopping removes nearly all wasted time at 20 users",
        "factor up to 74",
        lambda d: min(
            d["users"][("gpu_only", 20)]["wasted_seconds"]
            / max(d["users"][("chopping", 20)]["wasted_seconds"], 1e-9),
            9999.0,
        ),
        "factor {:.0f}+", lambda v: v > 5,
    ),
]


def fault_attribution_section(fault_rate: float = 0.05,
                              scale_factor: float = 5,
                              seed: int = 7) -> List[str]:
    """Markdown lines attributing faults to the queries they hit.

    Runs one SSB workload under uniform fault injection (validated
    against the reference evaluator) and renders the per-query
    abort/wasted/retry accounting from
    :meth:`MetricsCollector.per_query_fault_report`.
    """
    from repro.faults import FaultConfig
    from repro.harness.runner import run_workload
    from repro.workloads import ssb

    database = E.ssb_database(scale_factor)
    run = run_workload(
        database, ssb.workload(database), "runtime",
        config=E.FULL_CONFIG, users=2,
        faults=FaultConfig.uniform(fault_rate, seed=seed),
        validate=True,
    )
    lines = [
        "## Fault attribution (rate {:g}, seed {}, results validated)"
        .format(fault_rate, seed),
        "",
        "| Query | Executions | Aborts | Wasted s | Retries |",
        "|-------|------------|--------|----------|---------|",
    ]
    for name, row in sorted(run.metrics.per_query_fault_report().items()):
        lines.append("| {} | {:.0f} | {:.0f} | {:.4f} | {:.0f} |".format(
            name, row["executions"], row["aborts"],
            row["wasted_seconds"], row["retries"],
        ))
    lines.append("")
    lines.append(
        "{} faults injected; every query result matched the fault-free "
        "reference.".format(run.faults_injected)
    )
    return lines


def bus_accounting_section(scale_factor: float = 5,
                           users: int = 4) -> List[str]:
    """Markdown lines for the PCIe bus accounting and copy engine.

    Runs one cold-cache SSB workload twice — serialized bus vs.
    asynchronous copy engine — and renders the wire/queueing split
    introduced with the engine: wire seconds, queueing delay, bus
    utilization, transfer/compute overlap ratio, and the coalesce and
    prefetch-hit counters.  Utilization above 1.0 simply means the
    duplex channels moved more wire-seconds than one serialized bus
    could have in the same makespan.
    """
    from repro.harness.runner import run_workload
    from repro.workloads import ssb

    database = E.ssb_database(scale_factor)
    queries = ssb.workload(database)
    rows = []
    for label, engine in (("serialized bus", False), ("copy engine", True)):
        run = run_workload(
            database, queries, "runtime",
            config=E.FULL_CONFIG.with_copy_engine(engine),
            users=users, warm_cache=False,
        )
        m = run.metrics
        rows.append((label, run.seconds, m.transfer_seconds,
                     m.transfer_queue_seconds, m.bus_utilization,
                     m.overlap_ratio, m.coalesced_transfers,
                     m.prefetch_hits))
    lines = [
        "## PCIe accounting (SSB SF {:g}, {} users, cold cache)".format(
            scale_factor, users
        ),
        "",
        "| Mode | Makespan s | Wire s | Queueing s | Utilization "
        "| Overlap | Coalesced | Prefetch hits |",
        "|------|------------|--------|------------|-------------"
        "|---------|-----------|---------------|",
    ]
    for (label, seconds, wire, queue, util, overlap, coal, hits) in rows:
        lines.append(
            "| {} | {:.4f} | {:.4f} | {:.4f} | {:.2f} | {:.2f} "
            "| {:.0f} | {:.0f} |".format(
                label, seconds, wire, queue, util, overlap, coal, hits
            )
        )
    lines.append("")
    lines.append(
        "Transfer counters report pure wire time; channel queueing is "
        "the separate column above (it used to be folded into the copy "
        "time)."
    )
    return lines


def morsel_section(scale_factor: float = 5) -> List[str]:
    """Markdown lines for the fused morsel-execution counters.

    Runs one warm-cache SSB workload twice — the operator-at-a-time
    reference engine and the fused morsel path — and renders the
    fusion accounting recorded by
    :meth:`MetricsCollector.morsel_summary`: queries fused, operators
    folded into pipelines, morsels executed, partial-aggregate merges,
    and declines.  Both runs produce byte-identical results; the
    counters (and the warm-up wall clock) are what differ.
    """
    from repro.engine import plan_cache
    from repro.harness.runner import run_workload
    from repro.workloads import ssb

    database = E.ssb_database(scale_factor)
    rows = []
    for label, fused in (("reference", False), ("fused morsels", True)):
        # fresh plans and an empty plan cache per mode — results cached
        # by the reference run would make the fused run skip fusion
        plan_cache.invalidate(database)
        queries = ssb.workload(database)
        run = run_workload(
            database, queries, "runtime",
            config=E.FULL_CONFIG.with_morsels(fused),
            users=1,
        )
        summary = run.metrics.morsel_summary()
        rows.append((label, summary))
    lines = [
        "## Fused morsel execution (SSB SF {:g}, single user)".format(
            scale_factor
        ),
        "",
        "| Mode | Fused queries | Fused operators | Chain | Morsels "
        "| Partial merges | Declined |",
        "|------|---------------|-----------------|-------|---------"
        "|----------------|----------|",
    ]
    for label, summary in rows:
        lines.append(
            "| {} | {:.0f} | {:.0f} | {:.1f} | {:.0f} | {:.0f} "
            "| {:.0f} |".format(
                label,
                summary["fused_queries"],
                summary["fused_operators"],
                summary["fused_chain_length"],
                summary["morsels_executed"],
                summary["partial_merges"],
                summary["declined_queries"],
            )
        )
    lines.append("")
    lines.append(
        "Fused pipelines execute scan, join-probe, and aggregate "
        "operators per morsel and merge partial aggregates at the "
        "breaker; results stay byte-identical to the reference engine "
        "(benchmarks/bench_morsels.py gates the speedup)."
    )
    return lines


def procfault_section(scale_factor: float = 1) -> List[str]:
    """Markdown lines for the self-healing pool under process chaos.

    Runs the SSB workload through a :class:`MorselPool` with a seeded
    process-fault schedule (worker crashes, hangs, slow exits, and a
    shm unlink race) and renders the recovery accounting: byte
    identity against the sequential engine, restarts, requeues, and
    the deterministic schedule digest.  Skipped (with a note) on
    platforms without fork or shared memory.
    """
    import multiprocessing

    from repro.engine.execution import execute_functional
    from repro.faults import FaultConfig
    from repro.harness.parallel import MorselPool
    from repro.storage import shm
    from repro.workloads import ssb

    lines = ["## Process faults and the self-healing pool"]
    if not (shm.available()
            and "fork" in multiprocessing.get_all_start_methods()):
        lines.extend(["", "(skipped: needs fork and shared memory)"])
        return lines
    database = E.ssb_database(scale_factor)
    queries = ssb.workload(database)
    reference = {
        query.name: execute_functional(
            query.instantiate(), database).payload.row_tuples()
        for query in queries
    }
    faults = FaultConfig(crash=0.15, hang=0.08, slowexit=0.05,
                         unlinkrace=0.05, hang_seconds=5.0, seed=2)
    with MorselPool(database, queries, jobs=2, faults=faults,
                    heartbeat_seconds=0.4) as pool:
        pool.warm()
        results = pool.run_queries()
        identical = all(
            results[name].payload.row_tuples() == reference[name]
            for name in reference
        )
        summary = pool.process_fault_summary()
        lines.extend([
            "",
            "| Planned faults | Identical | Restarts | Requeues "
            "| Quarantines | Fallbacks | Leaked |",
            "|----------------|-----------|----------|----------"
            "|-------------|-----------|--------|",
            "| {} | {} | {} | {} | {} | {} | {} |".format(
                ", ".join("{}={}".format(k, v)
                          for k, v in sorted(summary.items())) or "none",
                "yes" if identical else "NO",
                pool.counters["worker_restarts"],
                pool.counters["chunk_requeues"],
                pool.counters["chunk_quarantines"],
                pool.fallbacks,
                len(shm.leaked_segments()),
            ),
            "",
            "Schedule digest (seed {}): `{}`".format(
                faults.seed, pool.process_fault_digest),
            "",
            "Killed, hung, and unlink-raced workers are respawned "
            "against the checksummed shared-memory export and their "
            "chunks re-queued; results stay byte-identical "
            "(benchmarks/bench_procfaults.py gates the chaos soak).",
        ])
    return lines


def service_section(scale_factor: float = 0.05) -> List[str]:
    """Markdown lines for steady-state service mode: streaming
    multi-tenant traffic at sustained overload with chaos and
    concurrent append epochs, rendered as the per-class SLO ledger."""
    from repro.harness.service import ServiceConfig, run_service
    from repro.workloads import ssb

    database = ssb.generate(scale_factor, data_scale=0.01)
    service = ServiceConfig(
        duration_seconds=6.0, arrivals="diurnal", rate=600.0,
        tenants_per_class=2, max_inflight=2, deadline_seconds=0.02,
        latency_target_seconds=0.01, hedge_factor=3.0,
        mutation_interval_seconds=2.0, seed=11,
    )
    result = run_service(
        database, workload="ssb", strategy="critical_path",
        service=service, faults="pcie=0.02,heap=0.02,kernel=0.02,seed=7",
    )
    lines = [
        "## Service mode: open-system multi-tenant steady state",
        "",
        "{} arrivals over {:.0f}s simulated (diurnal, {:g}/s mean), "
        "{} append epochs, {} faults injected; conservation {}, "
        "byte-identical {}.".format(
            result.arrivals, service.duration_seconds, service.rate,
            result.epochs, result.faults_injected,
            "holds" if result.conserved() else "VIOLATED",
            "yes" if result.identical else "NO"),
        "",
        "| Class | Arrivals | Completed | Shed | Degraded | Cancelled "
        "| p99 | Target | Attainment |",
        "|-------|----------|-----------|------|----------|-----------"
        "|-----|--------|------------|",
    ]
    for cls in ("premium", "standard", "best_effort"):
        row = result.ledger.get(cls)
        if row is None:
            continue
        lines.append(
            "| {} | {:.0f} | {:.0f} | {:.0f} | {:.0f} | {:.0f} "
            "| {:.4f}s | {:.3f}s | {:.1%} |".format(
                cls, row["arrivals"], row["completed"], row["shed"],
                row["degraded"], row["cancelled"], row["p99"],
                row.get("target", 0.0), row.get("attainment", 0.0)))
    lines.extend([
        "",
        "Fair-share admission sheds best-effort traffic first while "
        "premium queries ride a 4x deadline multiplier and an early "
        "GPU-degradation threshold; every completed query is checked "
        "against the reference engine over its pinned append epoch "
        "(benchmarks/bench_service.py gates the soak).",
    ])
    return lines


def generate_report(fast: bool = True) -> str:
    """Run the headline experiments and render the markdown report."""
    with _pinned_grids():
        data = _collect_measurements(fast=fast)
        fault_lines = fault_attribution_section()
        bus_lines = bus_accounting_section()
        morsel_lines = morsel_section()
        procfault_lines = procfault_section()
        service_lines = service_section()
    lines = [
        "# Reproduction report (regenerated)",
        "",
        "| Figure | Claim | Paper | Measured | Holds |",
        "|--------|-------|-------|----------|-------|",
    ]
    failures = 0
    for claim in CLAIMS:
        value = claim.measure(data)
        holds = claim.holds(value)
        failures += 0 if holds else 1
        lines.append("| {} | {} | {} | {} | {} |".format(
            claim.figure, claim.claim, claim.paper_value,
            claim.render.format(value), "yes" if holds else "NO",
        ))
    lines.append("")
    lines.append("{} of {} claims hold.".format(
        len(CLAIMS) - failures, len(CLAIMS)
    ))
    lines.append("")
    lines.extend(fault_lines)
    lines.append("")
    lines.extend(bus_lines)
    lines.append("")
    lines.extend(morsel_lines)
    lines.append("")
    lines.extend(procfault_lines)
    lines.append("")
    lines.extend(service_lines)
    return "\n".join(lines)
