"""Experiment harness: workload runner and per-figure drivers."""

from repro.harness.parallel import (
    Cell,
    CellOutcome,
    execute_cell,
    resolve_jobs,
    run_cells,
    set_default_jobs,
)
from repro.harness.runner import (
    ValidationError,
    WorkloadResult,
    run_workload,
    validate_results,
)
from repro.harness.service import (
    BEST_EFFORT,
    DEFAULT_CLASSES,
    PREMIUM,
    STANDARD,
    ServiceConfig,
    ServiceResult,
    SLOClass,
    run_service,
)
from repro.harness.tables import ExperimentResult

__all__ = [
    "BEST_EFFORT",
    "Cell",
    "CellOutcome",
    "DEFAULT_CLASSES",
    "ExperimentResult",
    "PREMIUM",
    "STANDARD",
    "SLOClass",
    "ServiceConfig",
    "ServiceResult",
    "ValidationError",
    "WorkloadResult",
    "execute_cell",
    "resolve_jobs",
    "run_cells",
    "run_service",
    "run_workload",
    "set_default_jobs",
    "validate_results",
]
