"""Experiment harness: workload runner and per-figure drivers."""

from repro.harness.runner import (
    ValidationError,
    WorkloadResult,
    run_workload,
    validate_results,
)
from repro.harness.tables import ExperimentResult

__all__ = [
    "ExperimentResult",
    "ValidationError",
    "WorkloadResult",
    "run_workload",
    "validate_results",
]
