"""Run a workload under one strategy on the simulated platform.

Mirrors the paper's methodology (Sec. 6.1): the database is pre-loaded
in host memory, access structures are pre-loaded into the GPU buffer
until it is full (the warm-up runs), then the workload executes and we
measure the makespan, per-query latencies, PCIe transfer times, aborts,
and wasted time.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional

from repro.core import (
    ChoppingExecutor,
    DataPlacementManager,
    PlacementPrefetcher,
    get_strategy,
)
from repro.core.placement.base import PlacementStrategy
from repro.engine.execution import (
    AdmissionController,
    ExecutionContext,
    LifecycleConfig,
    QueryCancelled,
    QueryContext,
    VectorizedExecutor,
    deadline_watchdog,
    execute_functional,
    run_plan_eager,
)
from repro.hardware import HardwareSystem, SystemConfig
from repro.metrics import ExecutionTrace, MetricsCollector
from repro.sim import Environment, Interrupted, Resource
from repro.storage import Database
from repro.workloads.base import WorkloadQuery


@dataclass
class WorkloadResult:
    """Everything one workload run produced."""

    metrics: MetricsCollector
    #: last result payload per query name (for validation)
    results: Dict[str, object]
    strategy: str
    users: int
    #: per-operator timeline; populated when run with ``trace=True``
    trace: Optional["ExecutionTrace"] = None
    #: total faults the injector raised (0 when injection was off)
    faults_injected: int = 0
    #: order-sensitive sha256 of the run's fault schedule, or None when
    #: injection was off — the CI determinism gate compares these
    fault_digest: Optional[str] = None
    #: injected fault counts per class
    fault_classes: Optional[Dict[str, int]] = None
    #: True when the query-lifecycle layer (admission / deadlines /
    #: hedging) was active for this run
    lifecycle_enabled: bool = False

    @property
    def seconds(self) -> float:
        return self.metrics.workload_seconds


def run_workload(
    database: Database,
    queries: List[WorkloadQuery],
    strategy: str,
    config: Optional[SystemConfig] = None,
    users: int = 1,
    repetitions: int = 1,
    warm_cache: bool = True,
    placement_policy: str = "lfu",
    cpu_workers: int = 4,
    gpu_workers: int = 2,
    scheduling: str = "fifo",
    processing_model: str = "operator",
    collect_results: bool = False,
    trace: bool = False,
    validate: bool = False,
    algorithm_selection: bool = True,
    faults=None,
    lifecycle=None,
) -> WorkloadResult:
    """Execute ``queries`` x ``repetitions`` with ``users`` parallel
    sessions under the named placement strategy.

    The total amount of work is fixed; ``users`` only changes how many
    sessions issue it concurrently (the paper's Sec. 6.2.2 setup).

    With ``validate=True`` every SQL query's simulated result is
    cross-checked against the naive reference evaluator after the run;
    a mismatch raises :class:`ValidationError`.

    ``faults`` activates deterministic fault injection: a
    :class:`~repro.faults.FaultConfig`, a spec string
    (``"pcie=0.01,seed=42"`` — see :meth:`FaultConfig.parse`), or None
    (the default, no injection and zero overhead).

    ``lifecycle`` activates the overload-safe query lifecycle: a
    :class:`~repro.engine.execution.lifecycle.LifecycleConfig`, a spec
    string (``"max_inflight=4,policy=shed,deadline=0.5,hedge=3"`` — see
    :meth:`LifecycleConfig.parse`), or None (the default — and a config
    with every feature off is treated exactly like None, the
    zero-overhead path).
    """
    from repro.faults import FaultConfig, FaultInjector

    if users < 1 or repetitions < 1:
        raise ValueError("users and repetitions must be >= 1")
    config = config if config is not None else SystemConfig()
    fault_config = FaultConfig.coerce(faults)
    lifecycle_config = LifecycleConfig.coerce(lifecycle)
    if lifecycle_config is not None and not lifecycle_config.enabled:
        lifecycle_config = None
    env = Environment()
    metrics = MetricsCollector()
    hardware = HardwareSystem(env, config, metrics)
    hardware.gpu_cache.policy = placement_policy
    injector = None
    if fault_config is not None and fault_config.enabled:
        injector = FaultInjector(fault_config, clock=lambda: env.now)
        hardware.install_faults(injector)
    ctx = ExecutionContext(hardware, database)
    ctx.algorithm_selection = algorithm_selection
    if trace:
        ctx.trace = ExecutionTrace()
        if hardware.copy_engine is not None:
            hardware.copy_engine.trace = ctx.trace
    strategy_obj: PlacementStrategy = get_strategy(strategy)

    # -- warm-up: statistics, functional memoisation, cache pre-load ----
    wall_start = perf_counter()
    database.statistics.reset()
    if config.morsels:
        # Fused morsel-driven functional execution (byte-identical to
        # the plain path); counter deltas land in the metrics so the
        # repro report can show fusion coverage next to kernel stats.
        from repro.engine import morsel
        from repro.storage import shm as shm_store

        morsel_before = morsel.snapshot_stats()
        shm_before = dict(shm_store.stats)
        with morsel.active(config.morsel_rows):
            for query in queries:
                execute_functional(query.template_plan(), database)
        metrics.record_morsel_stats(
            {key: value - morsel_before[key]
             for key, value in morsel.snapshot_stats().items()},
            {key: value - shm_before[key]
             for key, value in shm_store.stats.items()},
        )
    else:
        for query in queries:
            execute_functional(query.template_plan(), database)
    metrics.record_phase("numpy", perf_counter() - wall_start)
    placement = DataPlacementManager(
        database,
        caches=[device.cache for device in hardware.gpus],
        policy=placement_policy,
    )
    if warm_cache:
        placement.apply_placement()
        if not strategy_obj.uses_data_placement:
            # Operator-driven data placement: the warm content is a
            # starting point, not pinned — operators insert and evict.
            for device in hardware.gpus:
                for key in device.cache.keys:
                    device.cache.unpin(key)
    elif strategy_obj.uses_data_placement:
        # Data-driven placement needs the manager even for a cold
        # start; an empty cache simply keeps every operator on the CPU.
        placement.apply_placement()
    if hardware.copy_engine is not None and config.prefetch_depth > 0:
        # background prefetch rides the engine's idle h2d windows,
        # driven by the same LFU/LRU ranking the manager uses
        PlacementPrefetcher(
            hardware, placement, depth=config.prefetch_depth
        ).start()
    if config.split:
        # Intra-operator co-processing: gate each query template for
        # chunk-merge byte identity, then hang the split state off the
        # context — the dispatch hook consults it per operator.
        from repro.engine.execution.split import SplitState

        split_state = SplitState(config, ctx.cost_model, strategy_obj)
        split_state.prepare(database, queries, metrics=metrics)
        ctx.split = split_state

    # -- partition the fixed workload over the user sessions -----------
    all_runs: List[WorkloadQuery] = [
        query for _ in range(repetitions) for query in queries
    ]
    sessions = [all_runs[i::users] for i in range(users)]

    if processing_model not in ("operator", "vectorized"):
        raise ValueError(
            "processing_model must be 'operator' or 'vectorized'"
        )
    chopper = None
    vectorizer = None
    if processing_model == "vectorized":
        # vector-at-a-time (Sec. 5.5): pipelines replace the
        # operator-at-a-time executors entirely
        vectorizer = VectorizedExecutor(ctx, strategy_obj)
    elif strategy_obj.executor == "chopping":
        chopper = ChoppingExecutor(
            ctx, strategy_obj, cpu_workers=cpu_workers,
            gpu_workers=gpu_workers, scheduling=scheduling,
            lifecycle=lifecycle_config,
        )
    admission = None
    if strategy_obj.admission_limit is not None:
        admission = Resource(env, capacity=strategy_obj.admission_limit)
    controller = None
    if lifecycle_config is not None and lifecycle_config.admission_enabled:
        controller = AdmissionController(
            env, hardware, lifecycle_config, metrics=metrics
        )

    if validate:
        collect_results = True
    results: Dict[str, object] = {}

    def run_query(user_id: int, query: WorkloadQuery, qctx):
        """Plan + submit + await one query (shared by both paths)."""
        plan_start = perf_counter()
        plan = query.instantiate()
        strategy_obj.prepare_plan(ctx, plan)
        metrics.record_phase("plan", perf_counter() - plan_start)
        if vectorizer is not None:
            result = yield vectorizer.submit(plan, qctx)
        elif chopper is not None:
            result = yield chopper.submit(plan, qctx)
        else:
            result = yield run_plan_eager(ctx, plan, strategy_obj, qctx)
        return result

    def lifecycle_query(user_id: int, query: WorkloadQuery, start: float):
        """One query under the lifecycle layer (admission / deadline)."""
        qctx = QueryContext(
            env, query.name, user=user_id, metrics=metrics,
            deadline_seconds=lifecycle_config.deadline_seconds,
        )
        watchdog = None
        if lifecycle_config.deadlines_enabled:
            # starts before admission: queue time counts toward the
            # deadline, so a query can be cancelled while still queued
            watchdog = env.process(deadline_watchdog(qctx))
            watchdog.defused = True
        decision = "run"
        if controller is not None:
            decision = yield from controller.admit(qctx)
        if decision in ("shed", "cancelled"):
            if watchdog is not None and watchdog.is_alive:
                watchdog.interrupt()
            if decision == "cancelled":
                metrics.record_cancelled_query(
                    query.name, user_id, start, env.now,
                    qctx.cancel_reason or "deadline",
                )
            return
        if decision == "degrade":
            qctx.force_cpu = True
        try:
            result = yield from run_query(user_id, query, qctx)
        except (QueryCancelled, Interrupted):
            result = None
            metrics.record_cancelled_query(
                query.name, user_id, start, env.now,
                qctx.cancel_reason or "cancelled",
            )
        else:
            metrics.record_query(query.name, user_id, start, env.now)
        qctx.finish()
        if watchdog is not None and watchdog.is_alive:
            watchdog.interrupt()
        if controller is not None:
            controller.release()
        if result is not None and collect_results:
            results[query.name] = result.payload

    def session(user_id: int, runs: List[WorkloadQuery]):
        for query in runs:
            # Latency is the response time from submission: time spent
            # queueing behind an admission control gate counts (that is
            # exactly the cost the paper attributes to it, Sec. 6.2.2).
            start = env.now
            if admission is not None:
                request = admission.request()
                yield request
            if lifecycle_config is not None:
                yield from lifecycle_query(user_id, query, start)
                if admission is not None:
                    admission.release(request)
                continue
            result = yield from run_query(user_id, query, None)
            metrics.record_query(query.name, user_id, start, env.now)
            if admission is not None:
                admission.release(request)
            if collect_results:
                results[query.name] = result.payload

    wall_start = perf_counter()
    for user_id, runs in enumerate(sessions):
        if runs:
            env.process(session(user_id, runs))
    env.run()
    # The DES bucket is the event-loop wall time minus the planning
    # slices timed inside the sessions.
    metrics.record_phase(
        "des",
        perf_counter() - wall_start - metrics.phase_seconds.get("plan", 0.0),
    )
    # Makespan ends with the last query (completed or cancelled), not
    # with trailing background prefetch traffic that may still drain
    # after it (identical to env.now when no prefetcher runs).
    ends = [query.end for query in metrics.queries]
    ends.extend(query.end for query in metrics.cancelled_queries)
    metrics.workload_seconds = max(ends, default=env.now)
    if validate:
        wall_start = perf_counter()
        validate_results(database, queries, results)
        metrics.record_phase("validate", perf_counter() - wall_start)
    return WorkloadResult(
        metrics=metrics, results=results, strategy=strategy, users=users,
        trace=ctx.trace,
        faults_injected=injector.total_injected if injector else 0,
        fault_digest=injector.schedule_digest() if injector else None,
        fault_classes=dict(injector.injected) if injector else None,
        lifecycle_enabled=lifecycle_config is not None,
    )


class ValidationError(AssertionError):
    """A simulated query result disagreed with the reference evaluator."""


def validate_results(database: Database, queries: List[WorkloadQuery],
                     results: Dict[str, object]) -> None:
    """Cross-check collected payloads against the reference evaluator.

    Placement, caching, aborts, and fallbacks may change timing — never
    the answer.  Hand-built plans (no SQL) are skipped.
    """
    for query in queries:
        if query.spec is None or query.name not in results:
            continue
        got = sorted(map(canonical_row, results[query.name].row_tuples()))
        want = reference_rows(database, query)
        compare_rows(query.name, got, want)


def reference_rows(database: Database, query: WorkloadQuery):
    """Canonical, sorted reference-engine rows for one SQL query.

    Service mode caches these per (epoch, query) — every completion of
    the same query under the same snapshot checks against one
    evaluation."""
    from repro.engine import execute_reference

    return sorted(
        map(canonical_row, execute_reference(query.spec, database))
    )


def compare_rows(name: str, got, want) -> None:
    """Raise :class:`ValidationError` unless two canonical, sorted row
    lists agree (floats within 1e-9, everything else exactly)."""
    import math

    if len(got) != len(want):
        raise ValidationError(
            "{}: {} rows simulated vs {} rows reference".format(
                name, len(got), len(want)
            )
        )
    for got_row, want_row in zip(got, want):
        for a, b in zip(got_row, want_row):
            if isinstance(a, float) or isinstance(b, float):
                if not math.isclose(float(a), float(b), rel_tol=1e-9,
                                    abs_tol=1e-9):
                    raise ValidationError(
                        "{}: {} != {}".format(name, got_row, want_row)
                    )
            elif a != b:
                raise ValidationError(
                    "{}: {} != {}".format(name, got_row, want_row)
                )


def canonical_row(row):
    """Normalise one result row for comparison (str / float / int)."""
    return tuple(
        value if isinstance(value, str) else (
            float(value) if isinstance(value, float) else int(value)
        )
        for value in row
    )


#: back-compat alias (pre-service-mode name)
_canonical_row = canonical_row


def workload_footprint_bytes(queries: List[WorkloadQuery],
                             database: Database) -> int:
    """Paper-scale memory footprint of a workload (Fig. 16): the total
    size of every base column the workload touches."""
    keys = set()
    for query in queries:
        keys |= query.required_columns()
    return sum(database.column(key).nominal_bytes for key in keys)
