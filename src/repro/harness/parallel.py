"""Parallel experiment-grid execution.

The paper's evaluation (Sec. 6, Figs. 1-25) is a grid of independent
cells — strategy x users x scale factor x repetitions.  Every figure
driver in :mod:`repro.harness.experiments` describes its grid as a list
of declarative :class:`Cell` specs and hands them to :func:`run_cells`,
which executes them either in-process (``jobs=1``, the default) or
fanned out over a :class:`~concurrent.futures.ProcessPoolExecutor`.

Guarantees:

* **Determinism.**  Outcomes are returned in cell order regardless of
  the worker count, and every cell is fully self-describing, so the
  tables built from a parallel run are byte-identical to a sequential
  run.
* **Amortised setup.**  Databases and workload query lists are cached
  per ``(workload, scale_factor, data_scale)`` in each process, so a
  worker builds SSB at scale factor 10 once no matter how many cells it
  executes against it.
* **Zero-copy columns.**  Unless ``REPRO_SHM=0``, the parent exports
  each grid's databases once via :mod:`repro.storage.shm` and workers
  *attach* — mapping the same physical pages read-only instead of
  regenerating (or pickling) gigabytes per process.

:class:`MorselPool` adds **intra-query** parallelism on the same
foundation: persistent workers attach the database from shared memory
and execute fused morsel ranges (:mod:`repro.engine.morsel`), shipping
one merged partial per worker chunk back to the parent, which merges
partials at the pipeline breaker and applies the tail operators.
Results are byte-identical to sequential execution; any worker failure
or unfusable plan falls back to an in-process run.
"""

from __future__ import annotations

import functools
import os
from collections import Counter, deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from time import monotonic
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.hardware import SystemConfig
from repro.harness.runner import run_workload, workload_footprint_bytes
from repro.storage import shm

#: Cell workload names understood by :func:`_cell_workload`.
WORKLOADS = ("ssb", "tpch", "micro_serial", "micro_parallel")

#: Environment variable consulted when no explicit jobs count is given.
JOBS_ENV = "REPRO_JOBS"

#: Set to "0" to disable shared-memory column export to workers.
SHM_ENV = "REPRO_SHM"

_default_jobs: Optional[int] = None


def shm_enabled() -> bool:
    """True when workers should attach databases from shared memory."""
    return (os.environ.get(SHM_ENV, "").strip() != "0"
            and shm.available())


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default worker count (None = env/sequential).

    The CLI and the example drivers call this once so every figure
    driver they invoke picks up ``--jobs`` without threading the value
    through each call site.
    """
    global _default_jobs
    if jobs is not None and int(jobs) < 1:
        raise ValueError("jobs must be >= 1, got {}".format(jobs))
    _default_jobs = jobs


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: explicit > set_default_jobs > $REPRO_JOBS > 1."""
    if jobs is None:
        jobs = _default_jobs
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "")
        if raw.strip():
            try:
                jobs = int(raw)
            except ValueError:
                raise ValueError(
                    "{}={!r} is not an integer".format(JOBS_ENV, raw)
                )
        else:
            jobs = 1
    if int(jobs) < 1:
        raise ValueError("jobs must be >= 1, got {}".format(jobs))
    return int(jobs)


@dataclass(frozen=True)
class Cell:
    """One experiment-grid cell: a declarative ``run_workload`` call.

    Cells are plain picklable data — everything a worker process needs
    to reproduce the run, and nothing tied to live objects of the
    parent process.
    """

    workload: str = "ssb"
    scale_factor: float = 10.0
    strategy: str = "cpu_only"
    #: None uses the experiment module's DATA_SCALE default
    data_scale: Optional[float] = None
    config: Optional[SystemConfig] = None
    users: int = 1
    repetitions: int = 1
    warm_cache: bool = True
    placement_policy: str = "lfu"
    #: restrict the workload to these query names (None = all)
    query_names: Optional[Tuple[str, ...]] = None
    #: "run" executes the workload; "footprint" only sizes it
    measure: str = "run"
    #: deterministic fault injection: a FaultConfig (frozen, picklable)
    #: or a spec string; None runs fault-free
    faults: Optional[object] = None
    #: query-lifecycle layer: a LifecycleConfig (frozen, picklable) or a
    #: spec string; None runs with the layer off (zero overhead)
    lifecycle: Optional[object] = None
    #: cross-check query results against the reference evaluator
    validate: bool = False

    def __post_init__(self):
        if self.workload not in WORKLOADS:
            raise ValueError(
                "unknown cell workload {!r}; expected one of {}".format(
                    self.workload, WORKLOADS
                )
            )
        if self.measure not in ("run", "footprint"):
            raise ValueError("measure must be 'run' or 'footprint'")


@dataclass
class CellOutcome:
    """The measurements one executed cell produced (picklable)."""

    seconds: float = 0.0
    h2d_seconds: float = 0.0
    d2h_seconds: float = 0.0
    h2d_bytes: int = 0
    d2h_bytes: int = 0
    aborts: int = 0
    wasted_seconds: float = 0.0
    cache_hit_rate: float = 0.0
    #: mean latency per query name
    latencies: Dict[str, float] = field(default_factory=dict)
    operators_per_processor: Dict[str, int] = field(default_factory=dict)
    footprint_bytes: int = 0
    #: wall-clock phase breakdown of the producing run
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: fault-injection accounting (all zero / None for fault-free cells)
    faults_injected: int = 0
    fault_digest: Optional[str] = None
    retries: int = 0
    breaker_opens: int = 0
    breaker_half_opens: int = 0
    breaker_closes: int = 0
    breaker_skips: int = 0
    #: copy-engine / bus-accounting measurements (all zero when the
    #: engine is off; queue_seconds is live either way)
    queue_seconds: float = 0.0
    coalesced_transfers: int = 0
    prefetch_transfers: int = 0
    prefetch_hits: int = 0
    overlap_ratio: float = 0.0
    bus_utilization: float = 0.0
    #: query-lifecycle accounting (all zero when the layer is off)
    completed: int = 0
    p50_latency: float = 0.0
    p99_latency: float = 0.0
    admission_waits: int = 0
    admission_wait_seconds: float = 0.0
    sheds: int = 0
    degraded_to_cpu: int = 0
    deadline_misses: int = 0
    cancelled: int = 0
    cancel_seconds: float = 0.0
    hedges: int = 0
    hedge_wins: int = 0
    hedge_losses: int = 0

    def mean_latency(self, query_name: str) -> float:
        return self.latencies.get(query_name, 0.0)


#: (family, scale_factor, data_scale) -> ShmManifest; populated in
#: worker processes by the pool initializer so ``_cell_workload``
#: attaches shared columns instead of regenerating the dataset.
_cell_manifests: Dict[Tuple, object] = {}


def _database_family(workload: str) -> str:
    """Which generated database a cell workload runs against."""
    return "tpch" if workload == "tpch" else "ssb"


def _default_data_scale() -> float:
    from repro.harness import experiments as E
    return E.DATA_SCALE


def _shm_worker_init(manifests: Dict[Tuple, object]) -> None:
    """Pool initializer: receive the parent's shared-column manifests."""
    _cell_manifests.update(manifests)
    # Fork-inherited parent databases would shadow the shared mappings.
    _cell_workload.cache_clear()


@functools.lru_cache(maxsize=64)
def _cell_workload(workload: str, scale_factor: float,
                   data_scale: Optional[float],
                   query_names: Optional[Tuple[str, ...]]):
    """Per-process cache of (database, queries) for one cell shape."""
    # Imported lazily: experiments imports this module at load time.
    from repro.harness import experiments as E
    from repro.workloads import micro, ssb, tpch

    if data_scale is None:
        data_scale = E.DATA_SCALE
    family = _database_family(workload)
    manifest = _cell_manifests.get((family, scale_factor, data_scale))
    if manifest is not None:
        database = shm.attach_database(manifest)
    elif family == "tpch":
        database = E.tpch_database(scale_factor, data_scale)
    else:
        database = E.ssb_database(scale_factor, data_scale)
    if workload == "tpch":
        queries = tpch.workload(database)
    elif workload == "ssb":
        queries = ssb.workload(database)
    elif workload == "micro_serial":
        queries = micro.serial_selection_workload(database)
    else:
        queries = micro.parallel_selection_workload(database)
    if query_names is not None:
        wanted = set(query_names)
        queries = [q for q in queries if q.name in wanted]
    return database, queries


def clear_workload_cache() -> None:
    """Drop the per-process (database, queries) cell cache."""
    _cell_workload.cache_clear()


def execute_cell(cell: Cell) -> CellOutcome:
    """Execute one cell in the current process."""
    database, queries = _cell_workload(
        cell.workload, cell.scale_factor, cell.data_scale, cell.query_names
    )
    footprint = workload_footprint_bytes(queries, database)
    if cell.measure == "footprint":
        return CellOutcome(footprint_bytes=footprint)
    run = run_workload(
        database, queries, cell.strategy,
        config=cell.config,
        users=cell.users,
        repetitions=cell.repetitions,
        warm_cache=cell.warm_cache,
        placement_policy=cell.placement_policy,
        faults=cell.faults,
        lifecycle=cell.lifecycle,
        validate=cell.validate,
    )
    metrics = run.metrics
    transitions = metrics.breaker_transition_counts()
    return CellOutcome(
        seconds=metrics.workload_seconds,
        h2d_seconds=metrics.cpu_to_gpu_seconds,
        d2h_seconds=metrics.gpu_to_cpu_seconds,
        h2d_bytes=metrics.cpu_to_gpu_bytes,
        d2h_bytes=metrics.gpu_to_cpu_bytes,
        aborts=metrics.aborts,
        wasted_seconds=metrics.wasted_seconds,
        cache_hit_rate=metrics.cache_hit_rate,
        latencies=metrics.latencies_by_query(),
        operators_per_processor=dict(metrics.operators_per_processor),
        footprint_bytes=footprint,
        phase_seconds=dict(metrics.phase_seconds),
        faults_injected=run.faults_injected,
        fault_digest=run.fault_digest,
        retries=metrics.retries,
        breaker_opens=transitions.get("open", 0),
        breaker_half_opens=transitions.get("half_open", 0),
        breaker_closes=transitions.get("closed", 0),
        breaker_skips=sum(metrics.breaker_skips.values()),
        queue_seconds=metrics.transfer_queue_seconds,
        coalesced_transfers=metrics.coalesced_transfers,
        prefetch_transfers=metrics.prefetch_transfers,
        prefetch_hits=metrics.prefetch_hits,
        overlap_ratio=metrics.overlap_ratio,
        bus_utilization=metrics.bus_utilization,
        completed=len(metrics.queries),
        p50_latency=metrics.latency_percentile(0.50),
        p99_latency=metrics.latency_percentile(0.99),
        admission_waits=metrics.admission_waits,
        admission_wait_seconds=metrics.admission_wait_seconds,
        sheds=sum(metrics.sheds.values()),
        degraded_to_cpu=sum(metrics.degraded_to_cpu.values()),
        deadline_misses=sum(metrics.deadline_misses.values()),
        cancelled=len(metrics.cancelled_queries),
        cancel_seconds=metrics.cancel_seconds,
        hedges=metrics.hedges_started,
        hedge_wins=metrics.hedge_wins,
        hedge_losses=metrics.hedge_losses,
    )


def run_cells(cells: Iterable[Cell],
              jobs: Optional[int] = None) -> List[CellOutcome]:
    """Execute ``cells`` and return their outcomes *in cell order*.

    ``jobs`` (or the ``--jobs``/``REPRO_JOBS`` default) picks the
    worker-process count; 1 executes in-process.  Cell ordering of the
    result list is independent of the worker count, which is what makes
    parallel figure regeneration byte-identical to sequential runs.
    """
    cells = list(cells)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(cells) <= 1:
        return [execute_cell(cell) for cell in cells]
    workers = min(jobs, len(cells))
    initializer, initargs = None, ()
    if shm_enabled():
        manifests: Dict[Tuple, object] = {}
        for cell in cells:
            database, _ = _cell_workload(
                cell.workload, cell.scale_factor, cell.data_scale, None
            )
            key = (_database_family(cell.workload), cell.scale_factor,
                   cell.data_scale if cell.data_scale is not None
                   else _default_data_scale())
            if key not in manifests:
                manifests[key] = shm.export_database(database)
        initializer, initargs = _shm_worker_init, (manifests,)
    with ProcessPoolExecutor(max_workers=workers, initializer=initializer,
                             initargs=initargs) as pool:
        return list(pool.map(execute_cell, cells))


# ---------------------------------------------------------------------------
# Intra-query morsel pool
# ---------------------------------------------------------------------------

#: per-worker state for the morsel pool (set by the initializer)
_pool_state: Dict[str, object] = {}


def _morsel_worker_init(manifest, workload) -> None:
    """Attach the shared database and build the workload's plans once.

    ``workload`` is ``"ssb"`` / ``"tpch"`` (module lookup) or a tuple of
    ``(name, sql)`` pairs for custom SQL workloads.
    """
    from repro.engine import kernels
    from repro.workloads import ssb, tpch
    from repro.workloads.base import sql_workload

    kernels.enable(True)
    database = shm.attach_database(manifest)
    if workload in ("ssb", "tpch"):
        queries = {"ssb": ssb, "tpch": tpch}[workload].workload(database)
    else:
        queries = sql_workload(database, list(workload))
    _pool_state["database"] = database
    _pool_state["queries"] = {query.name: query for query in queries}
    _pool_state["pipelines"] = {}


def _morsel_chunk(name: str, start: int, stop: int, progress=None):
    """Worker task: fused execution of one chunk of fact-table rows."""
    from repro.engine import morsel

    pipelines = _pool_state["pipelines"]
    pipe = pipelines.get(name)
    if pipe is None:
        query = _pool_state["queries"][name]
        pipe = morsel.build(query.instantiate(), _pool_state["database"])
        pipelines[name] = pipe
    return pipe.run_chunk(start, stop, progress=progress)


def _execute_unlink_race(manifest) -> None:
    """Worker-side shm-unlink-race fault: destroy the shared segment.

    Models a crashing worker whose resource tracker (or a buggy cleanup
    path) unlinks a segment the parent still owns.  Surviving workers
    keep their mappings (POSIX unlink only removes the name), but any
    *respawned* worker fails to attach — exercising the parent's
    re-export recovery path.
    """
    try:
        seg = _shm_module.SharedMemory(name=manifest.shm_name)
        seg.unlink()
    except Exception:
        pass


try:
    from multiprocessing import shared_memory as _shm_module
except ImportError:  # pragma: no cover
    _shm_module = None


def _pool_worker_main(index: int, manifest, workload,
                      task_r, result_w, heartbeat_seconds=None) -> None:
    """Worker process main loop: recv chunk tasks, send partials.

    Process-fault directives ride along with the task they were planned
    for; the hook below is the single injection site, so chaos runs
    depend only on the parent's deterministic plan, never on worker
    scheduling.

    Liveness is signalled two ways: a background heartbeater thread
    beats at a fixed cadence (covering long uninterruptible phases like
    join-build inside the first morsel), and the compute loop beats
    once per morsel.  The injected hang freezes *both* — it models a
    fully stuck process — so the parent's watchdog still fires.
    """
    import threading
    import time

    shm.forget_exports()  # fork-inherited exports belong to the parent
    try:
        _morsel_worker_init(manifest, workload)
    except shm.ShmIntegrityError as exc:
        result_w.send(("init", index, False, "integrity", repr(exc)))
        return
    except FileNotFoundError as exc:
        result_w.send(("init", index, False, "missing", repr(exc)))
        return
    except Exception as exc:  # pragma: no cover - defensive
        result_w.send(("init", index, False, "error", repr(exc)))
        return
    result_w.send(("init", index, True, "", ""))

    send_lock = threading.Lock()
    hb_stop = threading.Event()
    hb_frozen = threading.Event()
    beat_every = (heartbeat_seconds / 4.0
                  if heartbeat_seconds else 0.5)

    def _send(message) -> None:
        with send_lock:
            result_w.send(message)

    def _heartbeater() -> None:
        while not hb_stop.wait(beat_every):
            if hb_frozen.is_set():
                continue
            try:
                _send(("hb", None))
            except (BrokenPipeError, OSError):
                return

    threading.Thread(target=_heartbeater, daemon=True).start()
    while True:
        try:
            msg = task_r.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        task_id, name, start, stop, directive = msg
        if directive is not None:
            if directive.kind == "crash":
                os._exit(11)
            elif directive.kind == "unlinkrace":
                _execute_unlink_race(manifest)
                os._exit(12)
            elif directive.kind == "hang":
                # Freeze all heartbeats; the parent's watchdog kills us.
                hb_frozen.set()
                time.sleep(directive.seconds)
        try:
            partial = _morsel_chunk(
                name, start, stop,
                progress=lambda: _send(("hb", task_id)))
        except Exception as exc:
            _send(("err", task_id, repr(exc)))
            continue
        _send(("ok", task_id, partial))
        if directive is not None and directive.kind == "slowexit":
            time.sleep(directive.seconds)
            os._exit(0)
    hb_stop.set()
    shm.detach_all()


class _ChunkTask:
    """One worker chunk of a query's morsel ranges (parent side)."""

    __slots__ = ("chunk_index", "start", "stop", "directive", "kills")

    def __init__(self, chunk_index, start, stop, directive=None):
        self.chunk_index = chunk_index
        self.start = start
        self.stop = stop
        self.directive = directive
        self.kills = 0

    def take_directive(self):
        """Directive for the next execution (decrements crash repeats)."""
        directive = self.directive
        if directive is None:
            return None
        if directive.kind == "crash" and directive.repeats > 1:
            self.directive = directive.decremented()
        else:
            self.directive = None
        return directive


def _proc_cpu_seconds(pid: int):
    """CPU seconds (user+system) consumed by ``pid``; None off-Linux.

    The hang watchdog's second signal: a worker stuck in a long
    GIL-held numpy phase misses heartbeats but keeps accruing CPU,
    while a genuinely hung (sleeping) worker accrues none.
    """
    try:
        with open("/proc/{}/stat".format(pid), "rb") as handle:
            fields = handle.read().rsplit(b")", 1)[1].split()
        return (int(fields[11]) + int(fields[12])) / _CLOCK_TICKS
    except (OSError, IndexError, ValueError):
        return None


try:
    _CLOCK_TICKS = os.sysconf("SC_CLK_TCK")
except (AttributeError, ValueError, OSError):  # pragma: no cover
    _CLOCK_TICKS = 100


class _Worker:
    """Parent-side handle for one pool worker process."""

    __slots__ = ("index", "process", "conn", "task_w", "ready",
                 "init_failed", "task", "task_id", "last_beat",
                 "last_cpu")

    def __init__(self, index, process, conn, task_w):
        self.index = index
        self.process = process
        self.conn = conn
        self.task_w = task_w
        self.ready = False
        self.init_failed = None  # "integrity" | "missing" | "error"
        self.task = None  # outstanding _ChunkTask
        self.task_id = None
        self.last_beat = 0.0
        self.last_cpu = 0.0

    def close_pipes(self) -> None:
        for pipe in (self.conn, self.task_w):
            try:
                pipe.close()
            except OSError:  # pragma: no cover
                pass


class _PoolTaskError(RuntimeError):
    """A worker reported a query-level error (not a process death)."""


class _QueryRun:
    """Mutable per-query scheduler state."""

    __slots__ = ("name", "pipe", "pending", "done", "failure")

    def __init__(self, name, pipe, tasks):
        self.name = name
        self.pipe = pipe
        self.pending = deque(tasks)
        self.done = []
        self.failure = None


class MorselPool:
    """Self-healing intra-query parallelism over shared-memory columns.

    Persistent worker processes attach ``database`` from a shared
    segment (one export, zero copies) and execute fused morsel ranges
    (:mod:`repro.engine.morsel`).  Each worker merges its chunk's
    partials locally and ships ONE picklable partial back; the parent
    merges partials at the pipeline breaker, replays the nominal-row
    arithmetic, and applies the tail operators.  Results are
    byte-identical to sequential execution.

    The pool owns its workers directly (no ``ProcessPoolExecutor``, which
    condemns the whole pool on one death) and heals around process
    failure:

    * a **crashed** worker's chunk is re-queued to survivors and the
      worker is respawned (shm re-attach via the same manifest);
    * a worker that stops heartbeating past ``heartbeat_seconds`` is
      killed by the **watchdog** and handled like a crash;
    * a chunk that kills ``poison_threshold`` workers is **quarantined**
      — computed in-process for that range only, not the whole query;
    * a respawn that fails to attach (segment unlinked or corrupted)
      triggers a **re-export** under a fresh epoch;
    * after ``max_restarts`` respawns the pool **degrades to
      sequential** in-process execution with the reason recorded —
      never silently.

    Queries whose plans decline fusion (or that report worker-side
    *errors*, as opposed to deaths) still fall back to an in-process
    run — the pool can degrade but never wrongly answer.  Deterministic
    process-fault chaos is driven by a :class:`~repro.faults.FaultConfig`
    with process rates; see :class:`~repro.faults.ProcessFaultInjector`.
    """

    def __init__(self, database, queries, workload: str = "ssb",
                 jobs: Optional[int] = None, faults=None,
                 heartbeat_seconds: Optional[float] = None,
                 max_restarts: int = 16, poison_threshold: int = 2,
                 reap: bool = True):
        from repro.faults import FaultConfig, ProcessFaultInjector

        if workload not in ("ssb", "tpch", "sql"):
            raise ValueError("MorselPool supports 'ssb', 'tpch', and 'sql'")
        self.database = database
        self.workload = workload
        if workload == "sql":
            missing = [q.name for q in queries if q.sql is None]
            if missing:
                raise ValueError(
                    "workload='sql' needs SQL text for {}".format(missing))
            self._workload_spec = tuple((q.name, q.sql) for q in queries)
        else:
            self._workload_spec = workload
        self.jobs = max(resolve_jobs(jobs), 1)
        self._queries = {query.name: query for query in queries}
        self.faults = FaultConfig.coerce(faults)
        self._injector = (ProcessFaultInjector(self.faults)
                          if self.faults is not None
                          and self.faults.process_enabled else None)
        if heartbeat_seconds is None and self._injector is not None:
            heartbeat_seconds = 2.0
        self.heartbeat_seconds = heartbeat_seconds
        self.max_restarts = max_restarts
        self.poison_threshold = max(poison_threshold, 1)
        self.counters: Counter = Counter()
        self.events: List[Dict[str, object]] = []
        self.degraded: Optional[str] = None
        self.fallbacks = 0
        self.orphans_reaped = shm.reap_orphans() if reap else 0
        self._ctx = _pool_context()
        self._manifest = shm.export_database(database)
        self._task_seq = 0
        self._restarts_used = 0
        self._float_gate: Dict[str, bool] = {}
        self._workers: List[_Worker] = [
            self._spawn_worker(i) for i in range(self.jobs)
        ]

    # -- worker lifecycle ------------------------------------------------

    def _spawn_worker(self, index: int) -> _Worker:
        task_r, task_w = self._ctx.Pipe(duplex=False)
        result_r, result_w = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_pool_worker_main,
            args=(index, self._manifest, self._workload_spec,
                  task_r, result_w, self.heartbeat_seconds),
            daemon=True,
        )
        process.start()
        # Close the child's ends in the parent so pipe EOF semantics
        # track the child's life, not ours.
        task_r.close()
        result_w.close()
        worker = _Worker(index, process, result_r, task_w)
        worker.last_beat = monotonic()
        return worker

    def _try_respawn(self, index: int) -> Optional[_Worker]:
        """Respawn one worker within the restart budget (None = over)."""
        if self._restarts_used >= self.max_restarts:
            return None
        self._restarts_used += 1
        self.counters["worker_restarts"] += 1
        worker = self._spawn_worker(index)
        self._workers.append(worker)
        return worker

    def _retire(self, worker: _Worker) -> None:
        if worker in self._workers:
            self._workers.remove(worker)
        if worker.process.is_alive():  # hung: kill it
            worker.process.terminate()
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # pragma: no cover
                worker.process.kill()
                worker.process.join(timeout=1.0)
        else:
            worker.process.join(timeout=1.0)
        worker.close_pipes()

    def _reexport(self) -> None:
        """Export the database again under a fresh epoch.

        Surviving workers keep their (still mapped) old segment; only
        future respawns use the new manifest.
        """
        shm.invalidate(self.database)
        self._manifest = shm.export_database(self.database)
        self.counters["shm_reexports"] += 1

    def _degrade(self, reason: str, query: str) -> None:
        if self.degraded is None:
            self.degraded = reason
            self.counters["pool_degrades"] += 1
            self._record_event("pool_degraded", query, detail=reason)

    def _record_event(self, event: str, query: str, chunk=None,
                      worker=None, detail=None) -> None:
        self.events.append({
            "event": event, "query": query, "chunk": chunk,
            "worker": worker, "detail": detail,
        })

    # -- per-query scheduler ---------------------------------------------

    def _dispatch(self, worker: _Worker, state: _QueryRun,
                  task: _ChunkTask) -> bool:
        self._task_seq += 1
        task_id = self._task_seq
        directive = task.take_directive()
        try:
            worker.task_w.send((task_id, state.name, task.start,
                                task.stop, directive))
        except (BrokenPipeError, OSError):
            state.pending.appendleft(task)
            return False
        worker.task = task
        worker.task_id = task_id
        worker.last_beat = monotonic()
        cpu = _proc_cpu_seconds(worker.process.pid)
        if cpu is not None:
            worker.last_cpu = cpu
        return True

    def _run_inproc(self, state: _QueryRun, task: _ChunkTask) -> None:
        state.done.append(state.pipe.run_chunk(task.start, task.stop))

    def _requeue_or_quarantine(self, state: _QueryRun, worker: _Worker,
                               kind: str) -> None:
        """A dead/hung worker's outstanding chunk goes back to work."""
        task, worker.task, worker.task_id = worker.task, None, None
        if task is None:
            return
        task.kills += 1
        if state.failure is not None:
            return  # query is aborting: drop the chunk
        if task.kills >= self.poison_threshold:
            self.counters["chunk_quarantines"] += 1
            self._record_event("chunk_quarantined", state.name,
                               chunk=task.chunk_index, worker=worker.index,
                               detail=kind)
            self._run_inproc(state, task)
        else:
            self.counters["chunk_requeues"] += 1
            self._record_event("chunk_requeued", state.name,
                               chunk=task.chunk_index, worker=worker.index,
                               detail=kind)
            state.pending.appendleft(task)

    def _handle_death(self, state: _QueryRun, worker: _Worker) -> None:
        self._retire(worker)
        if worker.init_failed is not None:
            kind = worker.init_failed
            self.counters["worker_init_failures"] += 1
            self._record_event("worker_init_failed", state.name,
                               worker=worker.index, detail=kind)
            if kind in ("integrity", "missing"):
                self._reexport()
            # An init failure never counts against the chunk.
            if worker.task is not None:
                task, worker.task = worker.task, None
                state.pending.appendleft(task)
        elif worker.task is not None:
            self.counters["worker_crashes"] += 1
            self._record_event("worker_crashed", state.name,
                               chunk=worker.task.chunk_index,
                               worker=worker.index)
            self._requeue_or_quarantine(state, worker, "crash")
        else:
            # Idle death: an injected slow-exit or a crash between tasks.
            self.counters["worker_slow_exits"] += 1
            self._record_event("worker_exited_idle", state.name,
                               worker=worker.index)
        if self._try_respawn(worker.index) is None and not self._workers:
            self._degrade("restart_cap", state.name)

    def _handle_hang(self, state: _QueryRun, worker: _Worker) -> None:
        self.counters["worker_hangs"] += 1
        self.counters["heartbeat_misses"] += 1
        self._record_event("worker_hung", state.name,
                           chunk=(worker.task.chunk_index
                                  if worker.task else None),
                           worker=worker.index)
        self._retire(worker)
        self._requeue_or_quarantine(state, worker, "hang")
        if self._try_respawn(worker.index) is None and not self._workers:
            self._degrade("restart_cap", state.name)

    def _drain_messages(self, state: _QueryRun, worker: _Worker) -> None:
        while True:
            try:
                if not worker.conn.poll():
                    return
                msg = worker.conn.recv()
            except (EOFError, OSError):
                return  # death is handled via the process sentinel
            kind = msg[0]
            if kind == "init":
                if msg[2]:
                    worker.ready = True
                else:
                    worker.init_failed = msg[3] or "error"
            elif kind == "hb":
                worker.last_beat = monotonic()
            elif kind == "ok":
                worker.last_beat = monotonic()
                if worker.task_id == msg[1]:
                    worker.task, worker.task_id = None, None
                    if state.failure is None:
                        state.done.append(msg[2])
            elif kind == "err":
                if worker.task_id == msg[1]:
                    worker.task, worker.task_id = None, None
                    if state.failure is None:
                        state.failure = msg[2]

    def _pump(self, state: _QueryRun) -> None:
        """One wait-and-handle round of the scheduler event loop."""
        busy = [w for w in self._workers if w.task is not None]
        timeout = None
        if self.heartbeat_seconds is not None and busy:
            deadline = min(w.last_beat for w in busy) + self.heartbeat_seconds
            timeout = max(deadline - monotonic(), 0.0) + 0.02
        waitables = {w.conn: w for w in self._workers}
        sentinels = {w.process.sentinel: w for w in self._workers}
        ready = mp_connection.wait(
            list(waitables) + list(sentinels), timeout)
        for obj in ready:
            worker = waitables.get(obj)
            if worker is not None:
                self._drain_messages(state, worker)
        for worker in list(self._workers):
            if not worker.process.is_alive():
                self._drain_messages(state, worker)  # flush last words
                self._handle_death(state, worker)
        if self.heartbeat_seconds is not None:
            now = monotonic()
            for worker in list(self._workers):
                if (worker.task is None
                        or now - worker.last_beat <= self.heartbeat_seconds):
                    continue
                # Second opinion before the kill: heartbeats can starve
                # behind a long GIL-held numpy phase, but such a worker
                # still accrues CPU.  A hung (sleeping) worker accrues
                # none — only that gets the axe.
                cpu = _proc_cpu_seconds(worker.process.pid)
                if cpu is not None and cpu > worker.last_cpu + 0.01:
                    worker.last_cpu = cpu
                    worker.last_beat = now
                    self.counters["hang_cpu_grants"] += 1
                    continue
                self._handle_hang(state, worker)

    def _run_pooled(self, name: str, pipe, tasks: List[_ChunkTask]):
        """Schedule one query's chunks across the (healing) workers."""
        state = _QueryRun(name, pipe, tasks)
        while True:
            busy = [w for w in self._workers if w.task is not None]
            if not state.pending and not busy:
                break
            if self.degraded is not None and state.failure is None:
                while state.pending:
                    task = state.pending.popleft()
                    self.counters["degraded_chunks"] += 1
                    self._run_inproc(state, task)
                if not busy:
                    break
            elif state.failure is not None:
                state.pending.clear()
                if not busy:
                    break
            else:
                for worker in self._workers:
                    if not state.pending:
                        break
                    if worker.task is None:
                        self._dispatch(worker, state,
                                       state.pending.popleft())
                if state.pending and not self._workers:
                    if self._try_respawn(0) is None:
                        self._degrade("restart_cap", name)
                    continue
            if (any(w.task is not None for w in self._workers)
                    or (state.pending and self._workers)):
                # Also pump when dispatch failed on dead-but-unreaped
                # workers: their sentinels wake the wait immediately.
                self._pump(state)
        if state.failure is not None:
            raise _PoolTaskError(state.failure)
        return state.done

    # -- public API ------------------------------------------------------

    def warm(self, timeout: float = 60.0) -> None:
        """Wait for every worker's attach-and-init ack before timing."""
        state = _QueryRun("<warm>", None, [])
        deadline = monotonic() + timeout
        while (any(not w.ready for w in self._workers)
               and monotonic() < deadline):
            self._pump(state)

    def _run_fallback(self, query):
        from repro.engine.execution.functional import execute_functional

        self.fallbacks += 1
        return execute_functional(query.instantiate(), self.database)

    def run_query(self, name: str):
        """Execute one workload query; returns its root OperatorResult."""
        from repro.engine import morsel
        from repro.engine.execution.functional import execute_functional

        query = self._queries[name]
        plan = query.instantiate()
        try:
            pipe = morsel.build(plan, self.database)
        except morsel.Decline:
            pipe = None
        if pipe is None or not pipe.supports_partials:
            return self._run_fallback(query)
        if pipe.compensated and self._float_gate.get(name) is False:
            return self._run_fallback(query)
        ranges = pipe.ranges()
        per_chunk = -(-len(ranges) // self.jobs)
        groups = [ranges[i:i + per_chunk]
                  for i in range(0, len(ranges), per_chunk)]
        tasks = []
        for chunk_index, group in enumerate(groups):
            directive = None
            if self._injector is not None:
                # Planned in fixed chunk order (never dispatch order) so
                # the schedule digest is a pure function of the seed.
                directive = self._injector.plan_chunk(name, chunk_index)
            tasks.append(_ChunkTask(chunk_index, group[0][0],
                                    group[-1][1], directive))
        if self.degraded is not None:
            self.counters["degraded_chunks"] += len(tasks)
            partials = [pipe.run_chunk(task.start, task.stop)
                        for task in tasks]
        else:
            try:
                partials = self._run_pooled(name, pipe, tasks)
            except _PoolTaskError:
                # A worker *reported* an error (declined mid-run or an
                # engine bug): the parent recomputes alone.
                return self._run_fallback(query)
        acc = pipe.new_accumulator()
        totals = None
        for partial in sorted(partials, key=lambda p: p.index):
            pipe.absorb(acc, partial)
            totals = (partial.chain_counts if totals is None else
                      tuple(a + b for a, b in
                            zip(totals, partial.chain_counts)))
        _, prev_nominal = pipe.replay_nominal(totals)
        result = pipe.run_tail(pipe.finalize(acc, prev_nominal))
        if pipe.compensated and name not in self._float_gate:
            # Compensated float partials merge in chunk order, which can
            # round differently from the one-pass reference.  Gate on
            # byte identity once per query: divergence pins the query to
            # the fallback path forever after.
            reference = execute_functional(query.instantiate(),
                                           self.database)
            identical = (
                result.payload.row_tuples()
                == reference.payload.row_tuples()
                and result.actual_rows == reference.actual_rows
                and result.nominal_rows == reference.nominal_rows
            )
            self._float_gate[name] = identical
            if not identical:
                self.counters["float_gate_declines"] += 1
                morsel.decline_reasons["float_partial_divergence"] += 1
                return reference
        return result

    def run_queries(self, names: Optional[Sequence[str]] = None):
        """Execute queries (all by default); name -> OperatorResult."""
        if names is None:
            names = list(self._queries)
        return {name: self.run_query(name) for name in names}

    # -- accounting ------------------------------------------------------

    @property
    def process_fault_digest(self) -> Optional[str]:
        """Schedule digest of planned process faults (None = no chaos)."""
        if self._injector is None:
            return None
        return self._injector.schedule_digest()

    def process_fault_summary(self) -> Dict[str, int]:
        if self._injector is None:
            return {}
        return self._injector.summary()

    def process_fault_report(self) -> Dict[str, Dict[str, int]]:
        """Per-query planned-fault report (query -> class -> count)."""
        if self._injector is None:
            return {}
        return self._injector.report()

    def record_metrics(self, metrics) -> None:
        """Mirror the pool's self-healing counters into a collector."""
        metrics.record_pool(
            dict(self.counters),
            process_faults=self.process_fault_summary(),
            process_fault_digest=self.process_fault_digest,
            degraded=self.degraded,
            fallbacks=self.fallbacks,
            orphans_reaped=self.orphans_reaped,
        )

    def close(self) -> None:
        """Shut workers down, unlink the export, and leak-check."""
        for worker in self._workers:
            try:
                worker.task_w.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            worker.close_pipes()
        self._workers = []
        shm.invalidate(self.database)
        leaked = shm.leaked_segments()
        if leaked:
            raise RuntimeError(
                "shm segments leaked past pool close: {}".format(leaked))

    def __enter__(self) -> "MorselPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _pool_context():
    """Fork when available (zero-cost attach), spawn otherwise."""
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")
