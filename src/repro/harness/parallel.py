"""Parallel experiment-grid execution.

The paper's evaluation (Sec. 6, Figs. 1-25) is a grid of independent
cells — strategy x users x scale factor x repetitions.  Every figure
driver in :mod:`repro.harness.experiments` describes its grid as a list
of declarative :class:`Cell` specs and hands them to :func:`run_cells`,
which executes them either in-process (``jobs=1``, the default) or
fanned out over a :class:`~concurrent.futures.ProcessPoolExecutor`.

Guarantees:

* **Determinism.**  Outcomes are returned in cell order regardless of
  the worker count, and every cell is fully self-describing, so the
  tables built from a parallel run are byte-identical to a sequential
  run.
* **Amortised setup.**  Databases and workload query lists are cached
  per ``(workload, scale_factor, data_scale)`` in each process, so a
  worker builds SSB at scale factor 10 once no matter how many cells it
  executes against it.
* **Zero-copy columns.**  Unless ``REPRO_SHM=0``, the parent exports
  each grid's databases once via :mod:`repro.storage.shm` and workers
  *attach* — mapping the same physical pages read-only instead of
  regenerating (or pickling) gigabytes per process.

:class:`MorselPool` adds **intra-query** parallelism on the same
foundation: persistent workers attach the database from shared memory
and execute fused morsel ranges (:mod:`repro.engine.morsel`), shipping
one merged partial per worker chunk back to the parent, which merges
partials at the pipeline breaker and applies the tail operators.
Results are byte-identical to sequential execution; any worker failure
or unfusable plan falls back to an in-process run.
"""

from __future__ import annotations

import functools
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.hardware import SystemConfig
from repro.harness.runner import run_workload, workload_footprint_bytes
from repro.storage import shm

#: Cell workload names understood by :func:`_cell_workload`.
WORKLOADS = ("ssb", "tpch", "micro_serial", "micro_parallel")

#: Environment variable consulted when no explicit jobs count is given.
JOBS_ENV = "REPRO_JOBS"

#: Set to "0" to disable shared-memory column export to workers.
SHM_ENV = "REPRO_SHM"

_default_jobs: Optional[int] = None


def shm_enabled() -> bool:
    """True when workers should attach databases from shared memory."""
    return (os.environ.get(SHM_ENV, "").strip() != "0"
            and shm.available())


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default worker count (None = env/sequential).

    The CLI and the example drivers call this once so every figure
    driver they invoke picks up ``--jobs`` without threading the value
    through each call site.
    """
    global _default_jobs
    if jobs is not None and int(jobs) < 1:
        raise ValueError("jobs must be >= 1, got {}".format(jobs))
    _default_jobs = jobs


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: explicit > set_default_jobs > $REPRO_JOBS > 1."""
    if jobs is None:
        jobs = _default_jobs
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "")
        if raw.strip():
            try:
                jobs = int(raw)
            except ValueError:
                raise ValueError(
                    "{}={!r} is not an integer".format(JOBS_ENV, raw)
                )
        else:
            jobs = 1
    if int(jobs) < 1:
        raise ValueError("jobs must be >= 1, got {}".format(jobs))
    return int(jobs)


@dataclass(frozen=True)
class Cell:
    """One experiment-grid cell: a declarative ``run_workload`` call.

    Cells are plain picklable data — everything a worker process needs
    to reproduce the run, and nothing tied to live objects of the
    parent process.
    """

    workload: str = "ssb"
    scale_factor: float = 10.0
    strategy: str = "cpu_only"
    #: None uses the experiment module's DATA_SCALE default
    data_scale: Optional[float] = None
    config: Optional[SystemConfig] = None
    users: int = 1
    repetitions: int = 1
    warm_cache: bool = True
    placement_policy: str = "lfu"
    #: restrict the workload to these query names (None = all)
    query_names: Optional[Tuple[str, ...]] = None
    #: "run" executes the workload; "footprint" only sizes it
    measure: str = "run"
    #: deterministic fault injection: a FaultConfig (frozen, picklable)
    #: or a spec string; None runs fault-free
    faults: Optional[object] = None
    #: query-lifecycle layer: a LifecycleConfig (frozen, picklable) or a
    #: spec string; None runs with the layer off (zero overhead)
    lifecycle: Optional[object] = None
    #: cross-check query results against the reference evaluator
    validate: bool = False

    def __post_init__(self):
        if self.workload not in WORKLOADS:
            raise ValueError(
                "unknown cell workload {!r}; expected one of {}".format(
                    self.workload, WORKLOADS
                )
            )
        if self.measure not in ("run", "footprint"):
            raise ValueError("measure must be 'run' or 'footprint'")


@dataclass
class CellOutcome:
    """The measurements one executed cell produced (picklable)."""

    seconds: float = 0.0
    h2d_seconds: float = 0.0
    d2h_seconds: float = 0.0
    h2d_bytes: int = 0
    d2h_bytes: int = 0
    aborts: int = 0
    wasted_seconds: float = 0.0
    cache_hit_rate: float = 0.0
    #: mean latency per query name
    latencies: Dict[str, float] = field(default_factory=dict)
    operators_per_processor: Dict[str, int] = field(default_factory=dict)
    footprint_bytes: int = 0
    #: wall-clock phase breakdown of the producing run
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: fault-injection accounting (all zero / None for fault-free cells)
    faults_injected: int = 0
    fault_digest: Optional[str] = None
    retries: int = 0
    breaker_opens: int = 0
    breaker_half_opens: int = 0
    breaker_closes: int = 0
    breaker_skips: int = 0
    #: copy-engine / bus-accounting measurements (all zero when the
    #: engine is off; queue_seconds is live either way)
    queue_seconds: float = 0.0
    coalesced_transfers: int = 0
    prefetch_transfers: int = 0
    prefetch_hits: int = 0
    overlap_ratio: float = 0.0
    bus_utilization: float = 0.0
    #: query-lifecycle accounting (all zero when the layer is off)
    completed: int = 0
    p50_latency: float = 0.0
    p99_latency: float = 0.0
    admission_waits: int = 0
    admission_wait_seconds: float = 0.0
    sheds: int = 0
    degraded_to_cpu: int = 0
    deadline_misses: int = 0
    cancelled: int = 0
    cancel_seconds: float = 0.0
    hedges: int = 0
    hedge_wins: int = 0
    hedge_losses: int = 0

    def mean_latency(self, query_name: str) -> float:
        return self.latencies.get(query_name, 0.0)


#: (family, scale_factor, data_scale) -> ShmManifest; populated in
#: worker processes by the pool initializer so ``_cell_workload``
#: attaches shared columns instead of regenerating the dataset.
_cell_manifests: Dict[Tuple, object] = {}


def _database_family(workload: str) -> str:
    """Which generated database a cell workload runs against."""
    return "tpch" if workload == "tpch" else "ssb"


def _default_data_scale() -> float:
    from repro.harness import experiments as E
    return E.DATA_SCALE


def _shm_worker_init(manifests: Dict[Tuple, object]) -> None:
    """Pool initializer: receive the parent's shared-column manifests."""
    _cell_manifests.update(manifests)
    # Fork-inherited parent databases would shadow the shared mappings.
    _cell_workload.cache_clear()


@functools.lru_cache(maxsize=64)
def _cell_workload(workload: str, scale_factor: float,
                   data_scale: Optional[float],
                   query_names: Optional[Tuple[str, ...]]):
    """Per-process cache of (database, queries) for one cell shape."""
    # Imported lazily: experiments imports this module at load time.
    from repro.harness import experiments as E
    from repro.workloads import micro, ssb, tpch

    if data_scale is None:
        data_scale = E.DATA_SCALE
    family = _database_family(workload)
    manifest = _cell_manifests.get((family, scale_factor, data_scale))
    if manifest is not None:
        database = shm.attach_database(manifest)
    elif family == "tpch":
        database = E.tpch_database(scale_factor, data_scale)
    else:
        database = E.ssb_database(scale_factor, data_scale)
    if workload == "tpch":
        queries = tpch.workload(database)
    elif workload == "ssb":
        queries = ssb.workload(database)
    elif workload == "micro_serial":
        queries = micro.serial_selection_workload(database)
    else:
        queries = micro.parallel_selection_workload(database)
    if query_names is not None:
        wanted = set(query_names)
        queries = [q for q in queries if q.name in wanted]
    return database, queries


def clear_workload_cache() -> None:
    """Drop the per-process (database, queries) cell cache."""
    _cell_workload.cache_clear()


def execute_cell(cell: Cell) -> CellOutcome:
    """Execute one cell in the current process."""
    database, queries = _cell_workload(
        cell.workload, cell.scale_factor, cell.data_scale, cell.query_names
    )
    footprint = workload_footprint_bytes(queries, database)
    if cell.measure == "footprint":
        return CellOutcome(footprint_bytes=footprint)
    run = run_workload(
        database, queries, cell.strategy,
        config=cell.config,
        users=cell.users,
        repetitions=cell.repetitions,
        warm_cache=cell.warm_cache,
        placement_policy=cell.placement_policy,
        faults=cell.faults,
        lifecycle=cell.lifecycle,
        validate=cell.validate,
    )
    metrics = run.metrics
    transitions = metrics.breaker_transition_counts()
    return CellOutcome(
        seconds=metrics.workload_seconds,
        h2d_seconds=metrics.cpu_to_gpu_seconds,
        d2h_seconds=metrics.gpu_to_cpu_seconds,
        h2d_bytes=metrics.cpu_to_gpu_bytes,
        d2h_bytes=metrics.gpu_to_cpu_bytes,
        aborts=metrics.aborts,
        wasted_seconds=metrics.wasted_seconds,
        cache_hit_rate=metrics.cache_hit_rate,
        latencies=metrics.latencies_by_query(),
        operators_per_processor=dict(metrics.operators_per_processor),
        footprint_bytes=footprint,
        phase_seconds=dict(metrics.phase_seconds),
        faults_injected=run.faults_injected,
        fault_digest=run.fault_digest,
        retries=metrics.retries,
        breaker_opens=transitions.get("open", 0),
        breaker_half_opens=transitions.get("half_open", 0),
        breaker_closes=transitions.get("closed", 0),
        breaker_skips=sum(metrics.breaker_skips.values()),
        queue_seconds=metrics.transfer_queue_seconds,
        coalesced_transfers=metrics.coalesced_transfers,
        prefetch_transfers=metrics.prefetch_transfers,
        prefetch_hits=metrics.prefetch_hits,
        overlap_ratio=metrics.overlap_ratio,
        bus_utilization=metrics.bus_utilization,
        completed=len(metrics.queries),
        p50_latency=metrics.latency_percentile(0.50),
        p99_latency=metrics.latency_percentile(0.99),
        admission_waits=metrics.admission_waits,
        admission_wait_seconds=metrics.admission_wait_seconds,
        sheds=sum(metrics.sheds.values()),
        degraded_to_cpu=sum(metrics.degraded_to_cpu.values()),
        deadline_misses=sum(metrics.deadline_misses.values()),
        cancelled=len(metrics.cancelled_queries),
        cancel_seconds=metrics.cancel_seconds,
        hedges=metrics.hedges_started,
        hedge_wins=metrics.hedge_wins,
        hedge_losses=metrics.hedge_losses,
    )


def run_cells(cells: Iterable[Cell],
              jobs: Optional[int] = None) -> List[CellOutcome]:
    """Execute ``cells`` and return their outcomes *in cell order*.

    ``jobs`` (or the ``--jobs``/``REPRO_JOBS`` default) picks the
    worker-process count; 1 executes in-process.  Cell ordering of the
    result list is independent of the worker count, which is what makes
    parallel figure regeneration byte-identical to sequential runs.
    """
    cells = list(cells)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(cells) <= 1:
        return [execute_cell(cell) for cell in cells]
    workers = min(jobs, len(cells))
    initializer, initargs = None, ()
    if shm_enabled():
        manifests: Dict[Tuple, object] = {}
        for cell in cells:
            database, _ = _cell_workload(
                cell.workload, cell.scale_factor, cell.data_scale, None
            )
            key = (_database_family(cell.workload), cell.scale_factor,
                   cell.data_scale if cell.data_scale is not None
                   else _default_data_scale())
            if key not in manifests:
                manifests[key] = shm.export_database(database)
        initializer, initargs = _shm_worker_init, (manifests,)
    with ProcessPoolExecutor(max_workers=workers, initializer=initializer,
                             initargs=initargs) as pool:
        return list(pool.map(execute_cell, cells))


# ---------------------------------------------------------------------------
# Intra-query morsel pool
# ---------------------------------------------------------------------------

#: per-worker state for the morsel pool (set by the initializer)
_pool_state: Dict[str, object] = {}


def _morsel_worker_init(manifest, workload: str) -> None:
    """Attach the shared database and build the workload's plans once."""
    from repro.engine import kernels
    from repro.workloads import ssb, tpch

    kernels.enable(True)
    database = shm.attach_database(manifest)
    queries = {"ssb": ssb, "tpch": tpch}[workload].workload(database)
    _pool_state["database"] = database
    _pool_state["queries"] = {query.name: query for query in queries}
    _pool_state["pipelines"] = {}


def _morsel_chunk(name: str, start: int, stop: int):
    """Worker task: fused execution of one chunk of fact-table rows."""
    from repro.engine import morsel

    pipelines = _pool_state["pipelines"]
    pipe = pipelines.get(name)
    if pipe is None:
        query = _pool_state["queries"][name]
        pipe = morsel.build(query.instantiate(), _pool_state["database"])
        pipelines[name] = pipe
    return pipe.run_chunk(start, stop)


def _morsel_ping(token: int) -> int:
    """Warm-up task: forces worker spawn (and the initializer's attach)."""
    import time

    time.sleep(0.01)
    return token


class MorselPool:
    """Intra-query parallelism over shared-memory columns.

    Persistent worker processes attach ``database`` from a shared
    segment (one export, zero copies) and execute fused morsel ranges
    (:mod:`repro.engine.morsel`).  Each worker merges its chunk's
    partials locally and ships ONE picklable partial back; the parent
    merges partials at the pipeline breaker, replays the nominal-row
    arithmetic, and applies the tail operators.  Results are
    byte-identical to sequential execution.

    Queries whose plans decline fusion (or cannot reduce to partials)
    and any worker failure fall back to an in-process run — the pool
    can degrade but never wrongly answer.
    """

    def __init__(self, database, queries, workload: str = "ssb",
                 jobs: Optional[int] = None):
        if workload not in ("ssb", "tpch"):
            raise ValueError("MorselPool supports 'ssb' and 'tpch'")
        self.database = database
        self.jobs = max(resolve_jobs(jobs), 1)
        self._queries = {query.name: query for query in queries}
        manifest = shm.export_database(database)
        self._pool = ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=_morsel_worker_init,
            initargs=(manifest, workload),
        )
        self.fallbacks = 0

    def warm(self) -> None:
        """Spin every worker up (attach + plan build) before timing."""
        list(self._pool.map(_morsel_ping, range(self.jobs)))

    def _run_fallback(self, query):
        from repro.engine.execution.functional import execute_functional

        self.fallbacks += 1
        return execute_functional(query.instantiate(), self.database)

    def run_query(self, name: str):
        """Execute one workload query; returns its root OperatorResult."""
        from repro.engine import morsel

        query = self._queries[name]
        plan = query.instantiate()
        try:
            pipe = morsel.build(plan, self.database)
        except morsel.Decline:
            pipe = None
        if pipe is None or not pipe.supports_partials:
            return self._run_fallback(query)
        ranges = pipe.ranges()
        per_chunk = -(-len(ranges) // self.jobs)
        groups = [ranges[i:i + per_chunk]
                  for i in range(0, len(ranges), per_chunk)]
        try:
            futures = [
                self._pool.submit(_morsel_chunk, name,
                                  group[0][0], group[-1][1])
                for group in groups
            ]
            partials = [future.result() for future in futures]
        except Exception:
            # Worker crashed or declined: the parent recomputes alone.
            return self._run_fallback(query)
        acc = pipe.new_accumulator()
        totals = None
        for partial in sorted(partials, key=lambda p: p.index):
            pipe.absorb(acc, partial)
            totals = (partial.chain_counts if totals is None else
                      tuple(a + b for a, b in
                            zip(totals, partial.chain_counts)))
        _, prev_nominal = pipe.replay_nominal(totals)
        result = pipe.finalize(acc, prev_nominal)
        return pipe.run_tail(result)

    def run_queries(self, names: Optional[Sequence[str]] = None):
        """Execute queries (all by default); name -> OperatorResult."""
        if names is None:
            names = list(self._queries)
        return {name: self.run_query(name) for name in names}

    def close(self) -> None:
        self._pool.shutdown()

    def __enter__(self) -> "MorselPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
